// Experiment E12 (ablations): what breaks when the paper's design choices are
// switched off.
//
//   (a) Offline algorithm, Lemma 4's removal rule -> random candidate removal:
//       schedules stay feasible (flow certificates) but energy degrades and the
//       phase structure can collapse entirely.
//   (b) AVR(m), Fig. 3's max-density peel-off -> plain uniform smear: schedules
//       become INFEASIBLE whenever one job is denser than the average load (a
//       job lands on two processors at once).
//
// These are negative controls: they demonstrate the design choices carry weight,
// not just style.

#include <iostream>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/util/error.hpp"
#include "mpss/util/random.hpp"
#include "mpss/util/stats.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "seeds"});
  const bool quick = args.get_bool("quick", false);
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", quick ? 8 : 20));
  AlphaPower p(2.0);

  exp::banner("E12: ablations of the paper's design choices",
              "Negative controls: Lemma 4's removal rule protects optimality; "
              "Fig. 3's peel-off protects feasibility.");

  std::cout << "(a) job-removal rule in the offline algorithm (laminar workloads):\n";
  RunningStats overhead;
  std::size_t crashed = 0, suboptimal = 0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    Instance instance = generate_laminar({.jobs = 12, .machines = 2, .depth = 3,
                                          .max_work = 8}, seed);
    double exact = optimal_energy(instance, p);
    OptimalOptions ablated;
    ablated.removal_policy = OptimalOptions::RemovalPolicy::kRandomCandidate;
    ablated.ablation_seed = seed;
    try {
      auto result = optimal_schedule(instance, ablated);
      double ratio = result.schedule.energy(p) / exact;
      overhead.add(ratio);
      if (ratio > 1.0 + 1e-9) ++suboptimal;
    } catch (const InternalError&) {
      ++crashed;  // candidate set emptied: the invariant J_i <= J was destroyed
    }
  }
  Table removal({"variant", "suboptimal runs", "collapsed runs", "mean ratio",
                 "worst ratio"});
  removal.row(std::string("Lemma 4 rule (paper)"), 0, 0, 1.0, 1.0);
  removal.row(std::string("random removal (ablated)"), suboptimal, crashed,
              overhead.count() ? overhead.mean() : 0.0,
              overhead.count() ? overhead.max() : 0.0);
  removal.print(std::cout);
  bool removal_ok = suboptimal + crashed >= seeds / 4;

  std::cout << "\n(b) AVR(m) peel-off (instances with one dominant-density job):\n";
  std::size_t infeasible_without_peel = 0, feasible_with_peel = 0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    Xoshiro256 rng(seed);
    // 1 dominant job + 3 light ones per unit window, 2 machines.
    std::vector<Job> jobs{Job{Q(0), Q(1), Q(rng.uniform_int(8, 14))}};
    for (int i = 0; i < 3; ++i) jobs.push_back(Job{Q(0), Q(1), Q(rng.uniform_int(1, 2))});
    Instance instance(jobs, 2);
    if (check_schedule(instance, avr_schedule(instance).schedule).feasible) {
      ++feasible_with_peel;
    }
    auto ablated = avr_schedule(instance, AvrOptions{.enable_peeling = false});
    if (!check_schedule(instance, ablated.schedule).feasible) {
      ++infeasible_without_peel;
    }
  }
  Table peel({"variant", "feasible", "infeasible"});
  peel.row(std::string("with peel-off (paper)"), feasible_with_peel,
           seeds - feasible_with_peel);
  peel.row(std::string("uniform smear (ablated)"), seeds - infeasible_without_peel,
           infeasible_without_peel);
  peel.print(std::cout);
  bool peel_ok = feasible_with_peel == seeds && infeasible_without_peel == seeds;

  exp::verdict(removal_ok && peel_ok,
               "E12 reproduced: ablating either mechanism visibly breaks exactly "
               "the property its correctness proof protects.");
  return removal_ok && peel_ok ? 0 : 1;
}
