// Micro-benchmarks for the BatchSolver service layer (S44): batch throughput
// scaling across worker counts vs the serial solve() loop, and the LRU result
// cache's hit-vs-cold latency, all on the n=64 exact corpus that bench_offline
// uses for its scaling curves.
//
// Every service benchmark runs UseRealTime: the work happens on the pool
// workers, so the benchmark thread's CPU time would measure only the
// submit/collect overhead. Throughput numbers are items (solved instances)
// per second; the 1->8 worker curve shows the pool scaling on multi-core
// hardware (flat on a single-core host).

#include <benchmark/benchmark.h>

#include <vector>

#include "mpss/service/batch_solver.hpp"
#include "mpss/workload/generators.hpp"

namespace {

using namespace mpss;

Instance bench_instance(std::size_t jobs, std::size_t machines, std::uint64_t seed) {
  return generate_uniform({.jobs = jobs, .machines = machines,
                           .horizon = 2 * static_cast<std::int64_t>(jobs),
                           .max_window = 10, .max_work = 8}, seed);
}

std::vector<Instance> exact_corpus() {
  std::vector<Instance> corpus;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    corpus.push_back(bench_instance(64, 4, seed));
  }
  return corpus;
}

/// The pre-service baseline: the corpus through solve() one call at a time,
/// exactly the loop every harness used to hand-roll. The ratio of
/// BM_ServiceBatchThroughput at 8 workers to this is the batch speedup.
void BM_SerialSolveLoop(benchmark::State& state) {
  std::vector<Instance> corpus = exact_corpus();
  for (auto _ : state) {
    for (const Instance& instance : corpus) {
      benchmark::DoNotOptimize(solve(instance));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(corpus.size())));
}
BENCHMARK(BM_SerialSolveLoop)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Batch throughput by worker count. The cache is disabled: repeat iterations
/// re-solve the same corpus, and a warm cache would turn the measurement into
/// BM_ServiceCacheHit.
void BM_ServiceBatchThroughput(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  std::vector<Instance> corpus = exact_corpus();
  BatchSolver service(BatchSolverOptions{
      .threads = workers, .queue_capacity = 0, .cache_capacity = 0});
  for (auto _ : state) {
    std::vector<SolveResult> results = service.solve_many(corpus);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(corpus.size())));
  state.counters["workers"] = static_cast<double>(service.worker_count());
}
BENCHMARK(BM_ServiceBatchThroughput)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

/// Cold-solve latency through the service: cache disabled, every request pays
/// the full exact solve. The denominator of the cache-hit speedup.
void BM_ServiceColdSolve(benchmark::State& state) {
  Instance instance = bench_instance(64, 4, 1);
  BatchSolver service(BatchSolverOptions{
      .threads = 1, .queue_capacity = 0, .cache_capacity = 0});
  for (auto _ : state) {
    Submission submission = service.submit({instance, SolveOptions{}});
    benchmark::DoNotOptimize(submission.future.get());
  }
}
BENCHMARK(BM_ServiceColdSolve)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Cache-hit latency: the same request against a warm cache resolves from the
/// LRU (fingerprint + map lookup + SolveResult copy) without touching an
/// engine. Must be >= 20x faster than BM_ServiceColdSolve.
void BM_ServiceCacheHit(benchmark::State& state) {
  Instance instance = bench_instance(64, 4, 1);
  BatchSolver service(BatchSolverOptions{
      .threads = 1, .queue_capacity = 0, .cache_capacity = 8});
  // Warm the cache with the one cold solve, outside the timed loop.
  (void)service.submit({instance, SolveOptions{}}).future.get();
  for (auto _ : state) {
    Submission submission = service.submit({instance, SolveOptions{}});
    benchmark::DoNotOptimize(submission.future.get());
  }
  BatchSolver::CacheStats stats = service.cache_stats();
  state.counters["cache_hits"] = static_cast<double>(stats.hits);
  state.counters["cache_misses"] = static_cast<double>(stats.misses);
}
BENCHMARK(BM_ServiceCacheHit)->UseRealTime();

}  // namespace
