// Experiment E1 (Theorem 1): the combinatorial algorithm computes optimal
// schedules in polynomial time.
//
// Evidence printed:
//   (a) exact agreement with YDS for m = 1 (both provably optimal),
//   (b) bracketing by the LP baseline for m > 1 (LP upper bound within grid error),
//   (c) every schedule exactly feasible,
//   (d) runtime / flow-computation scaling in n and m (polynomial growth).

#include <cmath>
#include <iostream>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/core/yds.hpp"
#include "mpss/lp/lp_baseline.hpp"
#include "mpss/util/stats.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "seeds"});
  const bool quick = args.get_bool("quick", false);
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", quick ? 3 : 10));

  exp::banner("E1: offline optimality (Theorem 1)",
              "Claim: optimal schedules computable in polynomial time, for any "
              "convex non-decreasing P, via repeated max-flow.");
  AlphaPower p(2.5);

  // (a) YDS oracle at m = 1: per-job speeds must agree exactly.
  bool yds_ok = true;
  RunningStats yds_delta;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    Instance instance = generate_uniform({.jobs = 12, .machines = 1, .horizon = 24,
                                          .max_window = 10, .max_work = 8}, seed);
    auto combinatorial = optimal_schedule(instance);
    auto yds = yds_schedule(instance);
    for (std::size_t k = 0; k < instance.size(); ++k) {
      yds_ok &= combinatorial.speed_of_job(k) == yds.job_speed[k];
    }
    double a = combinatorial.schedule.energy(p);
    double b = yds.schedule.energy(p);
    yds_delta.add(std::abs(a - b) / b);
    yds_ok &= check_schedule(instance, combinatorial.schedule).feasible;
  }
  std::cout << "(a) m=1 oracle: per-job speeds identical to YDS on " << seeds
            << " instances: " << (yds_ok ? "yes" : "NO")
            << " (max rel. energy delta " << yds_delta.max() << ")\n";

  // (b) LP bracketing at m > 1.
  Table lp_table({"seed", "m", "OPT energy", "LP energy (grid 24)", "LP/OPT"});
  bool lp_ok = true;
  for (std::uint64_t seed = 1; seed <= std::min<std::uint64_t>(seeds, 5); ++seed) {
    Instance instance = generate_uniform({.jobs = 6, .machines = 3, .horizon = 12,
                                          .max_window = 6, .max_work = 5}, seed);
    auto opt_result = optimal_schedule(instance);
    double opt = opt_result.schedule.energy(p);
    // Anchor the grid at the known top speed so 24 levels resolve the range well.
    auto lp = lp_baseline(instance, p, 24,
                          opt_result.schedule.max_speed().to_double() * 1.01);
    lp_ok &= lp.status == LpSolution::Status::kOptimal;
    lp_ok &= lp.energy >= opt - 1e-6 && lp.energy <= opt * 1.05;
    lp_table.row(seed, 3, opt, lp.energy, lp.energy / opt);
  }
  std::cout << "\n(b) LP baseline brackets the combinatorial optimum from above:\n";
  lp_table.print(std::cout);

  // (c)+(d) scaling in n and m.
  std::cout << "\n(c,d) runtime scaling (feasible = exact checker verdict):\n";
  Table scale({"n", "m", "phases", "flow calls", "seconds", "feasible"});
  std::vector<std::size_t> sizes = quick ? std::vector<std::size_t>{8, 16, 32}
                                         : std::vector<std::size_t>{8, 16, 32, 64, 96};
  bool feasible_ok = true;
  for (std::size_t n : sizes) {
    for (std::size_t m : {2u, 8u}) {
      Instance instance = generate_uniform(
          {.jobs = n, .machines = m, .horizon = 2 * static_cast<std::int64_t>(n),
           .max_window = 12, .max_work = 9}, 7);
      OptimalResult result{Schedule(1), IntervalDecomposition({}), {}, 0, {}};
      double seconds = exp::timed_seconds([&] { result = optimal_schedule(instance); });
      bool feasible = check_schedule(instance, result.schedule).feasible;
      feasible_ok &= feasible;
      scale.row(n, m, result.phases.size(), result.flow_computations,
                Table::num(seconds, 4), feasible ? std::string("yes") : std::string("NO"));
    }
  }
  scale.print(std::cout);

  exp::verdict(yds_ok && lp_ok && feasible_ok,
               "Theorem 1 reproduced: combinatorial = YDS at m=1, LP-bracketed at "
               "m>1, exact feasibility everywhere, polynomial flow-call growth.");
  return yds_ok && lp_ok && feasible_ok ? 0 : 1;
}
