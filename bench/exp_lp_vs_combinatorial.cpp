// Experiment E8: combinatorial algorithm vs the LP route. The paper's intro says
// of Bingham & Greenstreet's LP approach [6] that "the complexity of their
// algorithm is too high for most practical applications" and offers the
// combinatorial algorithm instead. We time both on the same instances: the LP's
// variable count is n * intervals * grid (cubic-ish growth in n even before
// simplex iterations), while the combinatorial algorithm runs a handful of small
// max-flows.

#include <iostream>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/lp/lp_baseline.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "grid"});
  const bool quick = args.get_bool("quick", false);
  const auto grid = static_cast<std::size_t>(args.get_int("grid", 12));
  AlphaPower p(2.0);

  exp::banner("E8: combinatorial vs LP (intro claim)",
              "Claim: the LP approach [6] is far more expensive than the "
              "combinatorial algorithm; both reach (near-)equal energy.");

  std::vector<std::size_t> sizes = quick ? std::vector<std::size_t>{4, 6, 8}
                                         : std::vector<std::size_t>{4, 6, 8, 10, 12};

  Table table({"n", "combinatorial s", "LP s", "LP/comb time", "LP vars",
               "LP pivots", "energy ratio LP/OPT"});
  bool all_ok = true;
  for (std::size_t n : sizes) {
    Instance instance = generate_uniform(
        {.jobs = n, .machines = 2, .horizon = 2 * static_cast<std::int64_t>(n),
         .max_window = 6, .max_work = 5}, 9);

    double opt_energy_value = 0.0;
    double comb_seconds = exp::timed_seconds(
        [&] { opt_energy_value = optimal_energy(instance, p); });

    LpBaselineResult lp;
    double lp_seconds =
        exp::timed_seconds([&] { lp = lp_baseline(instance, p, grid); });
    all_ok &= lp.status == LpSolution::Status::kOptimal;
    all_ok &= lp.energy >= opt_energy_value - 1e-6;

    table.row(n, Table::num(comb_seconds, 5), Table::num(lp_seconds, 5),
              lp_seconds / std::max(comb_seconds, 1e-9), lp.variables,
              lp.iterations, lp.energy / opt_energy_value);
  }
  table.print(std::cout);

  std::cout << "\ngrid refinement (n = 6): the LP pays for accuracy, the "
               "combinatorial algorithm is exact by construction:\n";
  Table refine({"grid", "LP s", "LP/OPT energy"});
  Instance instance = generate_uniform({.jobs = 6, .machines = 2, .horizon = 12,
                                        .max_window = 6, .max_work = 5}, 9);
  double opt = optimal_energy(instance, p);
  for (std::size_t g : {4u, 8u, 16u, 32u}) {
    LpBaselineResult lp;
    double seconds = exp::timed_seconds([&] { lp = lp_baseline(instance, p, g); });
    all_ok &= lp.status == LpSolution::Status::kOptimal;
    refine.row(g, Table::num(seconds, 5), lp.energy / opt);
  }
  refine.print(std::cout);

  exp::verdict(all_ok,
               "E8 reproduced: LP matches the optimum only in the grid limit and "
               "costs orders of magnitude more time; the combinatorial algorithm "
               "is exact and fast.");
  return all_ok ? 0 : 1;
}
