// Experiment E13 (engineering ablation): exact rational arithmetic vs IEEE
// doubles in the offline algorithm.
//
// DESIGN.md's headline choice is exactness ("the control flow branches on
// F == W/s"). This experiment quantifies what that choice costs and what the
// double-precision fast path gives up: runtime speedup vs energy agreement and
// (tolerance-)feasibility across instance sizes.

#include <cmath>
#include <iostream>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/core/optimal_fast.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick"});
  const bool quick = args.get_bool("quick", false);
  AlphaPower p(2.5);

  exp::banner("E13: exact vs double-precision engines",
              "Ablating DESIGN.md's exact-arithmetic choice: the fast path must "
              "track the exact optimum closely while running much faster.");

  std::vector<std::size_t> sizes = quick ? std::vector<std::size_t>{8, 16, 32}
                                         : std::vector<std::size_t>{8, 16, 32, 64, 96};
  Table table({"n", "m", "exact s", "fast s", "speedup", "rel energy delta",
               "fast violations"});
  bool all_ok = true;
  for (std::size_t n : sizes) {
    for (std::size_t m : {2u, 8u}) {
      Instance instance = generate_uniform(
          {.jobs = n, .machines = m, .horizon = 2 * static_cast<std::int64_t>(n),
           .max_window = 12, .max_work = 9}, 7);
      double exact_energy = 0.0;
      double exact_seconds =
          exp::timed_seconds([&] { exact_energy = optimal_energy(instance, p); });
      FastOptimalResult fast;
      double fast_seconds =
          exp::timed_seconds([&] { fast = optimal_schedule_fast(instance); });
      double delta = std::abs(fast.schedule.energy(p) - exact_energy) / exact_energy;
      std::size_t violations = count_fast_violations(instance, fast.schedule);
      all_ok &= delta < 1e-6 && violations == 0;
      table.row(n, m, Table::num(exact_seconds, 4), Table::num(fast_seconds, 4),
                exact_seconds / std::max(fast_seconds, 1e-9),
                Table::num(delta, 12), violations);
    }
  }
  table.print(std::cout);
  std::cout << "\n(the exact engine buys literal theorem-grade equality tests; "
               "the fast path recovers the same schedules to ~1e-9 relative at a "
               "fraction of the cost on well-conditioned instances)\n";

  exp::verdict(all_ok, "E13 reproduced: the fast path is an order of magnitude "
                       "faster with negligible energy drift and zero tolerance "
                       "violations on the sweep.");
  return all_ok ? 0 : 1;
}
