#pragma once
// Shared helpers for the exp_* experiment binaries. Each binary regenerates one
// table of EXPERIMENTS.md; they all accept --quick (smaller sweeps) and --seeds.

#include <chrono>
#include <iostream>
#include <string>

#include "mpss/util/cli.hpp"
#include "mpss/util/table.hpp"

namespace mpss::exp {

/// Wall-clock seconds for a callable.
template <typename F>
double timed_seconds(F&& body) {
  auto start = std::chrono::steady_clock::now();
  body();
  std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

/// Prints the experiment banner all tables share.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "=== " << id << " ===\n" << claim << "\n\n";
}

inline void verdict(bool ok, const std::string& message) {
  std::cout << "\n[" << (ok ? "PASS" : "FAIL") << "] " << message << "\n";
}

}  // namespace mpss::exp
