// Micro-benchmarks for the TCP solve daemon (S45): loopback round-trip cost on
// top of the S44 service numbers. BM_ServerThroughput's 1->8 connection curve
// is the wire-level sibling of BM_ServiceBatchThroughput's worker curve (same
// n=64 exact corpus); BM_ServerColdSolve vs BM_ServerCacheHit separates the
// engine's cost from the protocol's (a cache hit pays only framing + JSON +
// the LRU lookup, so it bounds the per-request wire overhead from above).
//
// Everything runs UseRealTime: the solves happen on the daemon's pool and the
// benchmark thread only drives sockets.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "mpss/net/client.hpp"
#include "mpss/net/server.hpp"
#include "mpss/workload/generators.hpp"

namespace {

using namespace mpss;

Instance bench_instance(std::size_t jobs, std::size_t machines, std::uint64_t seed) {
  return generate_uniform({.jobs = jobs, .machines = machines,
                           .horizon = 2 * static_cast<std::int64_t>(jobs),
                           .max_window = 10, .max_work = 8}, seed);
}

std::vector<Instance> exact_corpus() {
  std::vector<Instance> corpus;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    corpus.push_back(bench_instance(64, 4, seed));
  }
  return corpus;
}

net::SolveServerOptions server_options(std::size_t cache_capacity) {
  net::SolveServerOptions options;
  options.service.queue_capacity = 0;  // unbounded: measure the wire, not waits
  options.service.cache_capacity = cache_capacity;
  return options;
}

/// Cold solve over loopback: every request pays framing + JSON + a full exact
/// solve. Compare against BM_ServiceColdSolve for the wire's added cost.
void BM_ServerColdSolve(benchmark::State& state) {
  net::SolveServer server(server_options(/*cache_capacity=*/0));
  net::SolveClient client("127.0.0.1", server.port());
  Instance instance = bench_instance(64, 4, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.solve(instance));
  }
  server.shutdown();
}
BENCHMARK(BM_ServerColdSolve)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Cache-hit round trip: the daemon answers from its LRU, so the measurement
/// is the protocol floor (encode + 2 frames + decode + lookup).
void BM_ServerCacheHit(benchmark::State& state) {
  net::SolveServer server(server_options(/*cache_capacity=*/8));
  net::SolveClient client("127.0.0.1", server.port());
  Instance instance = bench_instance(64, 4, 1);
  (void)client.solve(instance);  // warm the cache outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.solve(instance));
  }
  server.shutdown();
}
BENCHMARK(BM_ServerCacheHit)->UseRealTime();

/// Corpus throughput by connection count: N clients pipeline independent
/// slices of the corpus through one daemon (solve_many per slice, one round
/// trip each). Flat-to-rising with connections on multi-core hosts.
void BM_ServerThroughput(benchmark::State& state) {
  const auto connections = static_cast<std::size_t>(state.range(0));
  net::SolveServer server(server_options(/*cache_capacity=*/0));
  std::vector<Instance> corpus = exact_corpus();
  std::vector<net::SolveClient> clients;
  clients.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    clients.emplace_back("127.0.0.1", server.port());
  }
  // Round-robin slices, materialized once: client i solves corpus[i::N].
  std::vector<std::vector<Instance>> slices(connections);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    slices[i % connections].push_back(corpus[i]);
  }
  for (auto _ : state) {
    std::vector<std::thread> drivers;
    drivers.reserve(connections);
    for (std::size_t i = 0; i < connections; ++i) {
      drivers.emplace_back([&, i] {
        if (slices[i].empty()) return;
        std::vector<SolveResult> results = clients[i].solve_many(slices[i]);
        benchmark::DoNotOptimize(results.data());
      });
    }
    for (std::thread& driver : drivers) driver.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(corpus.size())));
  state.counters["connections"] = static_cast<double>(connections);
  server.shutdown();
}
BENCHMARK(BM_ServerThroughput)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
