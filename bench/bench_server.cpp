// Micro-benchmarks for the TCP solve daemon (S45): loopback round-trip cost on
// top of the S44 service numbers. BM_ServerThroughput's 1->8 connection curve
// is the wire-level sibling of BM_ServiceBatchThroughput's worker curve (same
// n=64 exact corpus); BM_ServerColdSolve vs BM_ServerCacheHit separates the
// engine's cost from the protocol's (a cache hit pays only framing + JSON +
// the LRU lookup, so it bounds the per-request wire overhead from above).
//
// Everything runs UseRealTime: the solves happen on the daemon's pool and the
// benchmark thread only drives sockets.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "mpss/net/client.hpp"
#include "mpss/net/server.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/obs/ring_sink.hpp"
#include "mpss/workload/generators.hpp"

namespace {

using namespace mpss;

Instance bench_instance(std::size_t jobs, std::size_t machines, std::uint64_t seed) {
  return generate_uniform({.jobs = jobs, .machines = machines,
                           .horizon = 2 * static_cast<std::int64_t>(jobs),
                           .max_window = 10, .max_work = 8}, seed);
}

std::vector<Instance> exact_corpus() {
  std::vector<Instance> corpus;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    corpus.push_back(bench_instance(64, 4, seed));
  }
  return corpus;
}

net::SolveServerOptions server_options(std::size_t cache_capacity) {
  net::SolveServerOptions options;
  options.service.queue_capacity = 0;  // unbounded: measure the wire, not waits
  options.service.cache_capacity = cache_capacity;
  return options;
}

/// Cold solve over loopback: every request pays framing + JSON + a full exact
/// solve. Compare against BM_ServiceColdSolve for the wire's added cost.
void BM_ServerColdSolve(benchmark::State& state) {
  net::SolveServer server(server_options(/*cache_capacity=*/0));
  net::SolveClient client("127.0.0.1", server.port());
  Instance instance = bench_instance(64, 4, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.solve(instance));
  }
  server.shutdown();
}
BENCHMARK(BM_ServerColdSolve)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Cache-hit round trip: the daemon answers from its LRU, so the measurement
/// is the protocol floor (encode + 2 frames + decode + lookup).
void BM_ServerCacheHit(benchmark::State& state) {
  net::SolveServer server(server_options(/*cache_capacity=*/8));
  net::SolveClient client("127.0.0.1", server.port());
  Instance instance = bench_instance(64, 4, 1);
  (void)client.solve(instance);  // warm the cache outside the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.solve(instance));
  }
  server.shutdown();
}
BENCHMARK(BM_ServerCacheHit)->UseRealTime();

/// Traced serving (S47): same loopback round trips as BM_ServerColdSolve /
/// BM_ServerCacheHit, but with a RingSink attached to the global registry --
/// so the client mints a trace id and opens client.solve spans, the context
/// travels on the wire, and the daemon opens its net.request/service.request/
/// engine span chain per request. The acceptance gate compares these against
/// their untraced siblings (<=10% overhead); the ring is drained outside the
/// timed loop so the measurement is the tracing hot path, not I/O.
void BM_ServerTraced(benchmark::State& state) {
  obs::RingSink ring(1u << 16);
  obs::Registry::global().attach_sink(&ring);
  std::size_t events = 0;
  {
    net::SolveServer server(server_options(/*cache_capacity=*/0));
    net::SolveClient client("127.0.0.1", server.port());
    Instance instance = bench_instance(64, 4, 1);
    // Warm-up lap: the ring allocates its per-thread buffers on each thread's
    // first record, which must not land in the timed region.
    (void)client.solve(instance);
    (void)ring.drain();
    for (auto _ : state) {
      benchmark::DoNotOptimize(client.solve(instance));
      // One solve emits a few thousand engine events; drain between laps
      // (outside the timed region) so the ring never fills and the timed
      // path is always the lock-free record fast path.
      state.PauseTiming();
      events += ring.drain().size();
      state.ResumeTiming();
    }
    server.shutdown();
  }
  obs::Registry::global().attach_sink(nullptr);
  state.counters["events_per_solve"] = benchmark::Counter(
      static_cast<double>(events) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ServerTraced)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Traced cache hit: the protocol-floor sibling of BM_ServerCacheHit. With the
/// engine out of the picture every span open/close and the trace-context JSON
/// member show up directly, so this is the honest upper bound on the relative
/// cost of tracing a request. A cache hit emits ~10 events, so the ring never
/// fills within a run and no in-loop drain is needed.
void BM_ServerTracedCacheHit(benchmark::State& state) {
  obs::RingSink ring(1u << 16);
  obs::Registry::global().attach_sink(&ring);
  {
    net::SolveServer server(server_options(/*cache_capacity=*/8));
    net::SolveClient client("127.0.0.1", server.port());
    Instance instance = bench_instance(64, 4, 1);
    (void)client.solve(instance);  // warm the cache outside the timed loop
    std::size_t lap = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(client.solve(instance));
      // Amortized housekeeping: empty the ring once per 4096 laps so long
      // autoscaled runs never fill it (Pause/Resume is too costly per-lap at
      // this microsecond scale).
      if ((++lap & 0xFFF) == 0) {
        state.PauseTiming();
        (void)ring.drain();
        state.ResumeTiming();
      }
    }
    server.shutdown();
  }
  obs::Registry::global().attach_sink(nullptr);
  (void)ring.drain();
}
BENCHMARK(BM_ServerTracedCacheHit)->UseRealTime();

/// Corpus throughput by connection count: N clients pipeline independent
/// slices of the corpus through one daemon (solve_many per slice, one round
/// trip each). Flat-to-rising with connections on multi-core hosts.
void BM_ServerThroughput(benchmark::State& state) {
  const auto connections = static_cast<std::size_t>(state.range(0));
  net::SolveServer server(server_options(/*cache_capacity=*/0));
  std::vector<Instance> corpus = exact_corpus();
  std::vector<net::SolveClient> clients;
  clients.reserve(connections);
  for (std::size_t i = 0; i < connections; ++i) {
    clients.emplace_back("127.0.0.1", server.port());
  }
  // Round-robin slices, materialized once: client i solves corpus[i::N].
  std::vector<std::vector<Instance>> slices(connections);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    slices[i % connections].push_back(corpus[i]);
  }
  for (auto _ : state) {
    std::vector<std::thread> drivers;
    drivers.reserve(connections);
    for (std::size_t i = 0; i < connections; ++i) {
      drivers.emplace_back([&, i] {
        if (slices[i].empty()) return;
        std::vector<SolveResult> results = clients[i].solve_many(slices[i]);
        benchmark::DoNotOptimize(results.data());
      });
    }
    for (std::thread& driver : drivers) driver.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<std::int64_t>(corpus.size())));
  state.counters["connections"] = static_cast<double>(connections);
  server.shutdown();
}
BENCHMARK(BM_ServerThroughput)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
