// Experiment E6: the AVR lower bound regime. Bansal et al. [2] show AVR's
// analysis is essentially tight: ((2-delta) alpha)^alpha / 2. On the
// expiring-stack family (releases 0..n-1, one common deadline) AVR's speed climbs
// like a harmonic sum while OPT stays flat, so the measured ratio should grow
// with n and with alpha -- without ever crossing the Theorem 3 upper bound.

#include <iostream>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick"});
  const bool quick = args.get_bool("quick", false);

  exp::banner("E6: adversarial inputs for AVR",
              "Claim [2]: AVR's ratio can approach ((2-d) alpha)^alpha / 2; the "
              "expiring-stack family drives the ratio up with n and alpha.");

  std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{4, 8, 16} : std::vector<std::size_t>{4, 8, 16, 32, 64};

  Table table({"n", "alpha", "AVR ratio", "upper bound", "lower-bound ref (d=1)"});
  bool all_ok = true;
  double last_ratio_per_alpha[2] = {0.0, 0.0};
  const double alphas[2] = {2.0, 3.0};
  for (std::size_t n : sizes) {
    for (int a = 0; a < 2; ++a) {
      AlphaPower p(alphas[a]);
      Instance instance = generate_avr_adversary(n, 1);
      double ratio = avr_energy(instance, p) / optimal_energy(instance, p);
      double upper = avr_multi_competitive_bound(alphas[a]);
      all_ok &= ratio <= upper + 1e-9;
      all_ok &= ratio >= last_ratio_per_alpha[a] - 1e-9;  // grows with n
      last_ratio_per_alpha[a] = ratio;
      table.row(n, alphas[a], ratio, upper, avr_lower_bound(alphas[a], 1.0));
    }
  }
  table.print(std::cout);

  std::cout << "\nmulti-processor variant (same stack on m machines):\n";
  Table multi({"n", "m", "AVR ratio (alpha=2)", "bound"});
  for (std::size_t n : {16u, 32u}) {
    for (std::size_t m : {2u, 4u}) {
      AlphaPower p(2.0);
      Instance instance = generate_avr_adversary(n, m);
      double ratio = avr_energy(instance, p) / optimal_energy(instance, p);
      all_ok &= ratio <= avr_multi_competitive_bound(2.0) + 1e-9;
      multi.row(n, m, ratio, avr_multi_competitive_bound(2.0));
    }
  }
  multi.print(std::cout);

  exp::verdict(all_ok,
               "E6 reproduced: ratio grows monotonically with n (toward the "
               "lower-bound regime) and never crosses the Theorem 3 bound.");
  return all_ok ? 0 : 1;
}
