// Experiment E2 (Theorem 2): OA(m) is alpha^alpha-competitive.
//
// Sweeps (alpha, m) over a seed batch of bursty workloads -- the regime where
// OA pays for its lack of clairvoyance -- and reports empirical ratio statistics
// against the proven bound. The (cell, seed) grid fans out through a
// BatchSolver: every ratio is two service requests (OA and exact), and the
// grid's > 256 submissions deliberately exceed the default admission queue so
// the blocking-submit backpressure path sees real traffic.

#include <future>
#include <iostream>
#include <vector>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/service/batch_solver.hpp"
#include "mpss/util/stats.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "seeds"});
  const bool quick = args.get_bool("quick", false);
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", quick ? 4 : 12));

  exp::banner("E2: OA(m) competitiveness (Theorem 2)",
              "Claim: E_OA(m) <= alpha^alpha * E_OPT for every instance; the "
              "multi-processor ratio matches the single-processor one.");

  const std::vector<double> alphas{1.25, 1.5, 2.0, 2.5, 3.0};
  const std::vector<std::size_t> machine_counts{1, 2, 4, 8};

  struct Cell {
    double alpha;
    std::size_t machines;
    RunningStats ratio;
    bool within_bound = true;
  };
  std::vector<Cell> cells;
  for (double alpha : alphas) {
    for (std::size_t m : machine_counts) cells.push_back({alpha, m, {}, true});
  }

  // Per-cell AlphaPower objects with stable addresses: SolveOptions::power is
  // not owned and must outlive every request that references it.
  std::vector<AlphaPower> powers;
  powers.reserve(cells.size());
  for (const Cell& cell : cells) powers.emplace_back(cell.alpha);

  BatchSolver service;
  struct PendingRatio {
    std::size_t cell;
    Submission online;
    Submission opt;
  };
  std::vector<PendingRatio> pending;
  pending.reserve(cells.size() * seeds);
  for (std::size_t index = 0; index < cells.size(); ++index) {
    const Cell& cell = cells[index];
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      Instance instance = generate_surprise(
          {.jobs = 12, .machines = cell.machines, .horizon = 24, .max_work = 6,
           .urgent_window = 3}, seed);
      SolveOptions online;
      online.engine = Engine::kOa;
      online.power = &powers[index];
      SolveOptions opt;
      opt.engine = Engine::kExact;
      opt.power = &powers[index];
      Submission online_run = service.submit({instance, online});
      Submission opt_run = service.submit({std::move(instance), opt});
      pending.push_back({index, std::move(online_run), std::move(opt_run)});
    }
  }
  for (PendingRatio& entry : pending) {
    Cell& cell = cells[entry.cell];
    double bound = oa_competitive_bound(cell.alpha);
    double ratio =
        entry.online.future.get().energy / entry.opt.future.get().energy;
    cell.ratio.add(ratio);
    cell.within_bound &= ratio <= bound + 1e-9 && ratio >= 1.0 - 1e-9;
  }

  Table table({"alpha", "m", "ratio mean", "ratio max", "bound a^a", "inside"});
  bool all_ok = true;
  for (const Cell& cell : cells) {
    all_ok &= cell.within_bound;
    table.row(cell.alpha, cell.machines, cell.ratio.mean(), cell.ratio.max(),
              oa_competitive_bound(cell.alpha),
              cell.within_bound ? std::string("yes") : std::string("NO"));
  }
  table.print(std::cout);

  std::cout << "\nsurprise-arrival stress (single machine, adversarial stack):\n";
  Table stress({"n", "alpha", "OA ratio", "bound"});
  for (std::size_t n : {4u, 8u, 16u}) {
    for (double alpha : {2.0, 3.0}) {
      AlphaPower p(alpha);
      Instance instance = generate_avr_adversary(n, 1);
      double ratio = oa_energy(instance, p) / optimal_energy(instance, p);
      all_ok &= ratio <= oa_competitive_bound(alpha) + 1e-9;
      stress.row(n, alpha, ratio, oa_competitive_bound(alpha));
    }
  }
  stress.print(std::cout);

  exp::verdict(all_ok, "Theorem 2 reproduced: every measured OA(m) ratio lies in "
                       "[1, alpha^alpha], across alpha, m and adversarial inputs.");
  return all_ok ? 0 : 1;
}
