// Experiment E2 (Theorem 2): OA(m) is alpha^alpha-competitive.
//
// Sweeps (alpha, m) over a seed batch of bursty workloads -- the regime where
// OA pays for its lack of clairvoyance -- and reports empirical ratio statistics
// against the proven bound. Cells run in parallel (exact arithmetic, no shared
// state).

#include <iostream>
#include <mutex>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/util/stats.hpp"
#include "mpss/util/thread_pool.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "seeds"});
  const bool quick = args.get_bool("quick", false);
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", quick ? 4 : 12));

  exp::banner("E2: OA(m) competitiveness (Theorem 2)",
              "Claim: E_OA(m) <= alpha^alpha * E_OPT for every instance; the "
              "multi-processor ratio matches the single-processor one.");

  const std::vector<double> alphas{1.25, 1.5, 2.0, 2.5, 3.0};
  const std::vector<std::size_t> machine_counts{1, 2, 4, 8};

  struct Cell {
    double alpha;
    std::size_t machines;
    RunningStats ratio;
    bool within_bound = true;
  };
  std::vector<Cell> cells;
  for (double alpha : alphas) {
    for (std::size_t m : machine_counts) cells.push_back({alpha, m, {}, true});
  }

  parallel_for(cells.size(), [&](std::size_t index) {
    Cell& cell = cells[index];
    AlphaPower p(cell.alpha);
    double bound = oa_competitive_bound(cell.alpha);
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      Instance instance = generate_surprise(
          {.jobs = 12, .machines = cell.machines, .horizon = 24, .max_work = 6,
           .urgent_window = 3}, seed);
      double ratio = oa_energy(instance, p) / optimal_energy(instance, p);
      cell.ratio.add(ratio);
      cell.within_bound &= ratio <= bound + 1e-9 && ratio >= 1.0 - 1e-9;
    }
  });

  Table table({"alpha", "m", "ratio mean", "ratio max", "bound a^a", "inside"});
  bool all_ok = true;
  for (const Cell& cell : cells) {
    all_ok &= cell.within_bound;
    table.row(cell.alpha, cell.machines, cell.ratio.mean(), cell.ratio.max(),
              oa_competitive_bound(cell.alpha),
              cell.within_bound ? std::string("yes") : std::string("NO"));
  }
  table.print(std::cout);

  std::cout << "\nsurprise-arrival stress (single machine, adversarial stack):\n";
  Table stress({"n", "alpha", "OA ratio", "bound"});
  for (std::size_t n : {4u, 8u, 16u}) {
    for (double alpha : {2.0, 3.0}) {
      AlphaPower p(alpha);
      Instance instance = generate_avr_adversary(n, 1);
      double ratio = oa_energy(instance, p) / optimal_energy(instance, p);
      all_ok &= ratio <= oa_competitive_bound(alpha) + 1e-9;
      stress.row(n, alpha, ratio, oa_competitive_bound(alpha));
    }
  }
  stress.print(std::cout);

  exp::verdict(all_ok, "Theorem 2 reproduced: every measured OA(m) ratio lies in "
                       "[1, alpha^alpha], across alpha, m and adversarial inputs.");
  return all_ok ? 0 : 1;
}
