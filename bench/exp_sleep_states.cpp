// Experiment E11 (conclusion / future work): speed scaling + sleep states.
//
// The paper's conclusion points to Irani et al. [9]: with static (leakage) power,
// "even at speed zero a positive amount of energy is consumed", and combining
// speed scaling with power-down is open for multi-processors. We quantify the
// stakes: take the paper's (leakage-oblivious) optimal schedule, and compare
//   always-on accounting        (no sleep available),
//   sleep-enabled accounting    (idle machines sleep for free),
//   race-to-idle at s_crit      (the [9] single-machine recipe applied per slice).

#include <iostream>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/ext/sleep.hpp"
#include "mpss/util/stats.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "seeds", "alpha"});
  const bool quick = args.get_bool("quick", false);
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", quick ? 4 : 10));
  const double alpha = args.get_double("alpha", 3.0);

  exp::banner("E11: sleep states (conclusion / future work, after [9])",
              "Claim: with static power, racing slow slices to the critical speed "
              "and sleeping strictly beats the leakage-oblivious optimum; without "
              "a sleep state it never helps.");

  Table table({"static power", "s_crit", "always-on", "sleep, no race",
               "sleep + race", "race gain"});
  bool all_ok = true;
  for (double static_power : {0.25, 1.0, 4.0}) {
    SleepModel model{alpha, static_power};
    Q floor = critical_speed_rational(model);
    RunningStats always_on, sleep_plain, sleep_raced;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      // Sparse workload: long windows, light work -> slow optimal speeds, lots of
      // leakage exposure.
      Instance instance = generate_uniform({.jobs = 8, .machines = 3, .horizon = 40,
                                            .max_window = 25, .max_work = 4}, seed);
      auto optimal = optimal_schedule(instance);
      Schedule raced = race_to_idle(optimal.schedule, floor);
      if (!check_schedule(instance, raced).feasible) {
        all_ok = false;
        continue;
      }
      double on = energy_always_on(optimal.schedule, model, instance.horizon_start(),
                                   instance.horizon_end());
      double plain = energy_with_sleep(optimal.schedule, model);
      double race = energy_with_sleep(raced, model);
      always_on.add(on);
      sleep_plain.add(plain);
      sleep_raced.add(race);
      all_ok &= race <= plain + 1e-9;  // racing never hurts with sleep
      all_ok &= plain <= on + 1e-9;    // sleeping never hurts
      // And racing never helps when the machine cannot sleep:
      all_ok &= energy_always_on(raced, model, instance.horizon_start(),
                                 instance.horizon_end()) >= on - 1e-9;
    }
    table.row(static_power, Table::num(model.critical_speed(), 3), always_on.mean(),
              sleep_plain.mean(), sleep_raced.mean(),
              Table::num(100.0 * (1.0 - sleep_raced.mean() / sleep_plain.mean()), 1) +
                  "%");
  }
  table.print(std::cout);
  std::cout << "\n(the gap between columns is exactly what a multi-processor "
               "speed-scaling + power-down algorithm -- the paper's open problem "
               "-- stands to win)\n";

  exp::verdict(all_ok, "E11 reproduced: sleep accounting ordered as predicted; "
                       "race-to-idle helps iff a sleep state exists; feasibility "
                       "preserved throughout.");
  return all_ok ? 0 : 1;
}
