// Experiment E14: how tight are the competitive bounds at small instance sizes?
//
// Hill-climbing adversary synthesis (S34) searches for the worst integer
// instances it can find for OA(m) and AVR(m) and compares them against (a) the
// hand-crafted constructions from the literature and (b) the proven upper
// bounds. Found ratios above a bound would falsify the *implementation* -- the
// search doubles as an automated red team.

#include <iostream>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/online/adversary_search.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/service/batch_solver.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "iterations"});
  const bool quick = args.get_bool("quick", false);
  const auto iterations =
      static_cast<std::size_t>(args.get_int("iterations", quick ? 150 : 500));

  exp::banner("E14: adversary synthesis vs proven bounds",
              "Search for worst-case instances; found ratios must stay under the "
              "theorems' bounds and should beat random instances decisively.");

  struct Cell {
    OnlineAlgorithmKind kind;
    double alpha;
    std::size_t machines;
    double found = 0.0;
    double crafted = 0.0;  // the literature-style stack construction
    double bound = 0.0;
  };
  std::vector<Cell> cells;
  for (auto kind : {OnlineAlgorithmKind::kOa, OnlineAlgorithmKind::kAvr}) {
    for (double alpha : {2.0, 3.0}) {
      for (std::size_t machines : {1u, 2u}) {
        cells.push_back(Cell{kind, alpha, machines, 0, 0, 0});
      }
    }
  }

  // Every candidate evaluation routes through one shared BatchSolver: the
  // online and exact solves of a step run concurrently on the workers, and the
  // service's result cache absorbs the instances hill climbing revisits
  // (tie-accepting drift walks back over the same plateau repeatedly). The
  // searches themselves stay sequential -- each step depends on the last.
  BatchSolver service(BatchSolverOptions{
      .threads = 0, .queue_capacity = 256, .cache_capacity = 4096});
  auto service_ratio = [&service](OnlineAlgorithmKind kind,
                                  const Instance& instance, double alpha) {
    AlphaPower p(alpha);
    SolveOptions online;
    online.engine =
        kind == OnlineAlgorithmKind::kOa ? Engine::kOa : Engine::kAvr;
    online.power = &p;
    SolveOptions exact;
    exact.engine = Engine::kExact;
    exact.power = &p;
    Submission online_run = service.submit({instance, online});
    Submission opt_run = service.submit({instance, exact});
    double alg = online_run.future.get().energy;
    double opt = opt_run.future.get().energy;
    if (opt <= 0.0) return 1.0;
    return alg / opt;
  };

  for (Cell& cell : cells) {
    AdversaryConfig config;
    config.jobs = 6;
    config.machines = cell.machines;
    config.horizon = 12;
    config.max_work = 8;
    config.alpha = cell.alpha;
    config.iterations = iterations;
    config.restarts = 3;
    config.evaluator = service_ratio;
    auto result = search_adversary(cell.kind, config, 17);
    cell.found = result.ratio;
    cell.bound = cell.kind == OnlineAlgorithmKind::kOa
                     ? oa_competitive_bound(cell.alpha)
                     : avr_multi_competitive_bound(cell.alpha);
    // Literature-style reference: the expiring stack at the same size.
    cell.crafted =
        service_ratio(cell.kind, generate_avr_adversary(6, cell.machines),
                      cell.alpha);
  }
  BatchSolver::CacheStats cache = service.cache_stats();
  std::cout << "service cache: " << cache.hits << " hits / " << cache.misses
            << " misses (" << cache.evictions << " evictions)\n\n";

  Table table({"algorithm", "alpha", "m", "found ratio", "stack ratio", "bound",
               "under bound"});
  bool all_ok = true;
  for (const Cell& cell : cells) {
    bool ok = cell.found <= cell.bound + 1e-9 && cell.found >= 1.0 - 1e-9;
    all_ok &= ok;
    table.row(cell.kind == OnlineAlgorithmKind::kOa ? std::string("OA(m)")
                                                    : std::string("AVR(m)"),
              cell.alpha, cell.machines, cell.found, cell.crafted, cell.bound,
              ok ? std::string("yes") : std::string("NO"));
  }
  table.print(std::cout);
  std::cout << "\n(at 6 jobs the searched adversaries already exceed the crafted "
               "stack, yet sit far below the asymptotic bounds -- the worst cases "
               "need many jobs, exactly as the lower-bound constructions [2,4] "
               "suggest)\n";

  exp::verdict(all_ok, "E14 reproduced: automated red-teaming never breached a "
                       "proven bound; searched ratios dominate crafted ones.");
  return all_ok ? 0 : 1;
}
