// Experiment E9 (the conclusion's open problem, single-processor evidence):
// Bansal et al.'s BKP algorithm has bound 2(a/(a-1))e^a, which beats OA's a^a for
// large alpha. We (i) tabulate the bound crossover, (ii) measure both algorithms
// on shared workloads for moderate alpha, where OA usually wins in practice --
// exactly why extending BKP to m processors is posed as an open problem rather
// than an obvious improvement.

#include <iostream>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/online/bkp.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/util/stats.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "seeds", "steps"});
  const bool quick = args.get_bool("quick", false);
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", quick ? 4 : 8));
  const auto steps = static_cast<std::size_t>(args.get_int("steps", 96));

  exp::banner("E9: BKP vs OA (conclusion / open problem)",
              "Claim [5]: BKP's bound 2(a/(a-1))e^a crosses below OA's a^a for "
              "large alpha; for moderate alpha OA dominates empirically.");

  std::cout << "(a) bound crossover:\n";
  Table bounds_table({"alpha", "OA bound a^a", "BKP bound", "winner"});
  for (double alpha : {1.5, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0}) {
    double oa_b = oa_competitive_bound(alpha);
    double bkp_b = bkp_competitive_bound(alpha);
    bounds_table.row(alpha, oa_b, bkp_b,
                     oa_b < bkp_b ? std::string("OA") : std::string("BKP"));
  }
  bounds_table.print(std::cout);

  std::cout << "\n(b) measured ratios (m = 1; BKP time-discretized at " << steps
            << " steps/unit):\n";
  Table measured({"alpha", "OA mean", "OA max", "BKP mean", "BKP max",
                  "BKP unfinished (frac)"});
  bool all_ok = true;
  for (double alpha : {2.0, 2.5, 3.0}) {
    AlphaPower p(alpha);
    RunningStats oa_ratio, bkp_ratio, unfinished;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      Instance instance = generate_bursty({.bursts = 3, .jobs_per_burst = 3,
                                           .machines = 1, .horizon = 20,
                                           .burst_window = 5, .max_work = 5}, seed);
      double opt = optimal_energy(instance, p);
      oa_ratio.add(oa_energy(instance, p) / opt);
      auto bkp = bkp_schedule(instance, alpha, steps);
      bkp_ratio.add(bkp.energy / opt);
      unfinished.add(bkp.unfinished_work / instance.total_work().to_double());
    }
    all_ok &= oa_ratio.max() <= oa_competitive_bound(alpha) + 1e-9;
    all_ok &= bkp_ratio.max() <= bkp_competitive_bound(alpha) * 1.05;
    all_ok &= unfinished.max() <= 0.02;
    measured.row(alpha, oa_ratio.mean(), oa_ratio.max(), bkp_ratio.mean(),
                 bkp_ratio.max(), unfinished.max());
  }
  measured.print(std::cout);
  std::cout << "(BKP runs provably-safe higher speeds, so its typical-case ratio "
               "sits well above OA's -- its advantage is purely worst-case, for "
               "large alpha)\n";

  exp::verdict(all_ok,
               "E9 reproduced: bound crossover near alpha ~ 5-6; empirical ratios "
               "respect both bounds; OA wins on typical workloads.");
  return all_ok ? 0 : 1;
}
