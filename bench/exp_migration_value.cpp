// Experiment E7: the value of migration. The paper's contrast: WITH migration the
// offline problem is polynomial (Theorem 1); WITHOUT it, NP-hard [1] with a
// B_alpha-approximation [8]. We measure the energy gap between the migratory
// optimum and (i) the exact non-migratory optimum on small instances, (ii)
// heuristic assignments on larger ones.

#include <iostream>

#include "exp_common.hpp"
#include "mpss/core/metrics.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/nomig/nonmigratory.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/util/stats.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "seeds"});
  const bool quick = args.get_bool("quick", false);
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", quick ? 4 : 10));
  AlphaPower p(2.5);

  exp::banner("E7: value of migration",
              "Claim: migratory optimum (poly-time, Thm 1) lower-bounds every "
              "non-migratory schedule; the gap is the price of pinning. [8]'s "
              "approximation guarantee B_alpha bounds how much a non-migratory "
              "solver can lose.");

  std::cout << "(a) exact non-migratory optimum, tiny instances (m^n enumeration):\n";
  Table exact_table({"seed", "n", "m", "migratory OPT", "pinned OPT", "gap"});
  RunningStats gaps;
  bool all_ok = true;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    Instance instance = generate_bursty({.bursts = 2, .jobs_per_burst = 3,
                                         .machines = 2, .horizon = 10,
                                         .burst_window = 3, .max_work = 5}, seed);
    double migratory = optimal_energy(instance, p);
    auto pinned = nonmigratory_exact(instance, p);
    double gap = pinned.energy / migratory;
    all_ok &= gap >= 1.0 - 1e-9;
    gaps.add(gap);
    exact_table.row(seed, instance.size(), 2, migratory, pinned.energy, gap);
  }
  exact_table.print(std::cout);
  std::cout << "gap: mean " << Table::num(gaps.mean()) << ", max "
            << Table::num(gaps.max()) << ", B_alpha reference "
            << Table::num(nonmigratory_approx_bound(2.5)) << "\n";

  std::cout << "\n(b) heuristics on larger instances:\n";
  Table heur({"seed", "n", "m", "migratory", "greedy", "round-robin",
              "random-best(20)"});
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    Instance instance = generate_bursty({.bursts = 4, .jobs_per_burst = 5,
                                         .machines = 4, .horizon = 32,
                                         .burst_window = 5, .max_work = 7}, seed);
    double migratory = optimal_energy(instance, p);
    double greedy = nonmigratory_greedy(instance, p).energy;
    double round_robin = nonmigratory_round_robin(instance, p).energy;
    double random_best = nonmigratory_random_best(instance, p, seed, 20).energy;
    all_ok &= greedy >= migratory - 1e-9 && round_robin >= migratory - 1e-9 &&
              random_best >= migratory - 1e-9;
    heur.row(seed, instance.size(), 4, migratory, greedy / migratory,
             round_robin / migratory, random_best / migratory);
  }
  heur.print(std::cout);
  std::cout << "(heuristic columns are ratios vs the migratory optimum)\n";

  std::cout << "\n(c) crafted worst case (k*m+... jobs sharing one window):\n";
  Table crafted({"jobs", "machines", "migratory", "pinned", "gap"});
  for (std::size_t m : {2u, 3u}) {
    std::vector<Job> jobs(m + 1, Job{Q(0), Q(1), Q(1)});
    Instance instance(jobs, m);
    double migratory = optimal_energy(instance, p);
    double pinned = nonmigratory_exact(instance, p).energy;
    all_ok &= pinned > migratory;
    crafted.row(m + 1, m, migratory, pinned, pinned / migratory);
  }
  crafted.print(std::cout);

  std::cout << "\n(d) how much migration does the optimum actually use?\n";
  Table usage({"seed", "n", "m", "jobs migrated", "migrations", "preemptions",
               "segments"});
  for (std::uint64_t seed = 1; seed <= std::min<std::uint64_t>(seeds, 6); ++seed) {
    Instance instance = generate_uniform({.jobs = 16, .machines = 4, .horizon = 24,
                                          .max_window = 10, .max_work = 7}, seed);
    auto result = optimal_schedule(instance);
    auto metrics = schedule_metrics(result.schedule);
    usage.row(seed, instance.size(), 4, metrics.migrated_jobs, metrics.migrations,
              metrics.preemptions, metrics.segments);
  }
  usage.print(std::cout);
  std::cout << "(optimal schedules migrate a minority of jobs a handful of times "
               "-- the polynomial-time benefit costs little actual movement)\n";

  exp::verdict(all_ok, "E7 reproduced: migration never hurts, strictly helps on "
                       "contended windows, and heuristic pinning pays a visible "
                       "premium.");
  return all_ok ? 0 : 1;
}
