// Micro-benchmarks for the simplex solver (S4) and the LP baseline (S16). These
// are the denominators of experiment E8's "combinatorial vs LP" comparison.

#include <benchmark/benchmark.h>

#include <cmath>

#include "mpss/lp/lp_baseline.hpp"
#include "mpss/lp/simplex.hpp"
#include "mpss/util/random.hpp"
#include "mpss/workload/generators.hpp"

namespace {

using namespace mpss;

/// Random dense-ish transportation problem with `size` supplies and demands.
LpProblem transportation(std::size_t size, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  LpProblem lp;
  lp.num_vars = size * size;
  lp.objective.resize(lp.num_vars);
  for (double& c : lp.objective) c = rng.uniform(1.0, 10.0);
  std::vector<double> supply(size), demand(size);
  double total = 0.0;
  for (std::size_t i = 0; i < size; ++i) {
    supply[i] = static_cast<double>(rng.uniform_int(5, 20));
    total += supply[i];
  }
  double left = total;
  for (std::size_t j = 0; j + 1 < size; ++j) {
    demand[j] = std::floor(left / static_cast<double>(size - j));
    left -= demand[j];
  }
  demand[size - 1] = left;
  for (std::size_t i = 0; i < size; ++i) {
    std::vector<std::pair<std::size_t, double>> row;
    for (std::size_t j = 0; j < size; ++j) row.emplace_back(i * size + j, 1.0);
    lp.add_row(std::move(row), Relation::kEqual, supply[i]);
  }
  for (std::size_t j = 0; j < size; ++j) {
    std::vector<std::pair<std::size_t, double>> row;
    for (std::size_t i = 0; i < size; ++i) row.emplace_back(i * size + j, 1.0);
    lp.add_row(std::move(row), Relation::kEqual, demand[j]);
  }
  return lp;
}

void BM_SimplexTransportation(benchmark::State& state) {
  auto size = static_cast<std::size_t>(state.range(0));
  LpProblem lp = transportation(size, 3);
  for (auto _ : state) {
    auto solution = solve_lp(lp);
    if (solution.status != LpSolution::Status::kOptimal) state.SkipWithError("not optimal");
    benchmark::DoNotOptimize(solution);
  }
  auto solution = solve_lp(lp);
  state.counters["pivots"] = static_cast<double>(solution.iterations);
  state.counters["degenerate"] = static_cast<double>(solution.degenerate_pivots);
}
BENCHMARK(BM_SimplexTransportation)->Arg(4)->Arg(8)->Arg(12);

void BM_LpBaseline(benchmark::State& state) {
  auto jobs = static_cast<std::size_t>(state.range(0));
  auto grid = static_cast<std::size_t>(state.range(1));
  Instance instance = generate_uniform({.jobs = jobs, .machines = 2,
                                        .horizon = 2 * static_cast<std::int64_t>(jobs),
                                        .max_window = 6, .max_work = 4}, 5);
  AlphaPower p(2.0);
  for (auto _ : state) {
    auto result = lp_baseline(instance, p, grid);
    if (result.status != LpSolution::Status::kOptimal) state.SkipWithError("LP failed");
    benchmark::DoNotOptimize(result);
  }
  auto result = lp_baseline(instance, p, grid);
  state.counters["pivots"] = static_cast<double>(result.stats.simplex_pivots);
  state.counters["degenerate"] =
      static_cast<double>(result.stats.simplex_degenerate_pivots);
  state.counters["lp_vars"] = static_cast<double>(result.variables);
  state.counters["lp_rows"] = static_cast<double>(result.constraints);
}
BENCHMARK(BM_LpBaseline)->Args({4, 8})->Args({6, 8})->Args({6, 16})->Args({8, 16});

}  // namespace
