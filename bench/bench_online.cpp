// Micro-benchmarks for the online algorithms: OA(m) (one offline solve per
// arrival) and AVR(m) (per-unit-interval density balancing), plus BKP.

#include <benchmark/benchmark.h>

#include "mpss/online/avr.hpp"
#include "mpss/online/bkp.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/workload/generators.hpp"

namespace {

using namespace mpss;

Instance bench_instance(std::size_t jobs, std::size_t machines, std::uint64_t seed) {
  return generate_uniform({.jobs = jobs, .machines = machines,
                           .horizon = 2 * static_cast<std::int64_t>(jobs),
                           .max_window = 10, .max_work = 8}, seed);
}

void BM_OaSchedule(benchmark::State& state) {
  Instance instance = bench_instance(static_cast<std::size_t>(state.range(0)), 4, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oa_schedule(instance));
  }
}
BENCHMARK(BM_OaSchedule)->Arg(8)->Arg(16)->Arg(32);

void BM_AvrSchedule(benchmark::State& state) {
  Instance instance = bench_instance(static_cast<std::size_t>(state.range(0)), 4, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(avr_schedule(instance));
  }
}
BENCHMARK(BM_AvrSchedule)->Arg(8)->Arg(32)->Arg(128);

void BM_AvrLongHorizon(benchmark::State& state) {
  // AVR cost scales with the horizon (one decision per unit interval).
  Instance instance = generate_periodic({.tasks = 6, .machines = 4,
                                         .hyperperiods = state.range(0),
                                         .max_work = 5}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(avr_schedule(instance));
  }
}
BENCHMARK(BM_AvrLongHorizon)->Arg(2)->Arg(8)->Arg(32);

void BM_BkpSchedule(benchmark::State& state) {
  Instance instance = bench_instance(12, 1, 4);
  auto steps = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bkp_schedule(instance, 2.0, steps));
  }
}
BENCHMARK(BM_BkpSchedule)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
