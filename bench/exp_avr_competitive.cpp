// Experiment E3 + E5 (Theorem 3): AVR(m) is ((2 alpha)^alpha)/2 + 1-competitive,
// and the two decomposition inequalities its proof rests on hold per instance:
//   (9)  E_AVR(m) <= m^(1-a) * sum_t Delta_t^a + sum_i delta_i^a (d_i - r_i)
//   (10) m^(1-a) * E^1_OPT <= E_OPT(m)

#include <cmath>
#include <future>
#include <iostream>
#include <vector>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/core/yds.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/service/batch_solver.hpp"
#include "mpss/util/stats.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "seeds"});
  const bool quick = args.get_bool("quick", false);
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", quick ? 4 : 12));

  exp::banner("E3+E5: AVR(m) competitiveness (Theorem 3)",
              "Claim: E_AVR(m) <= ((2a)^a)/2 + 1 times optimal; proof "
              "decomposition inequalities (9) and (10) hold per instance.");

  const std::vector<double> alphas{1.5, 2.0, 2.5, 3.0};
  const std::vector<std::size_t> machine_counts{1, 2, 4, 8};

  struct Cell {
    double alpha;
    std::size_t machines;
    RunningStats ratio;
    bool ok = true;
  };
  std::vector<Cell> cells;
  for (double alpha : alphas) {
    for (std::size_t m : machine_counts) cells.push_back({alpha, m, {}, true});
  }

  // The (cell, seed) grid fans out through a BatchSolver: AVR and the exact
  // optimum are service requests; the decomposition inequalities are then
  // checked on the gathered energies (the YDS single-machine reference of
  // inequality (10) is not a facade engine and runs inline).
  std::vector<AlphaPower> powers;  // stable addresses for SolveOptions::power
  powers.reserve(cells.size());
  for (const Cell& cell : cells) powers.emplace_back(cell.alpha);

  BatchSolver service;
  struct PendingCell {
    std::size_t cell;
    Instance instance;
    Submission avr_run;
    Submission opt_run;
  };
  std::vector<PendingCell> pending;
  pending.reserve(cells.size() * seeds);
  for (std::size_t index = 0; index < cells.size(); ++index) {
    const Cell& cell = cells[index];
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      Instance instance = generate_uniform(
          {.jobs = 12, .machines = cell.machines, .horizon = 20,
           .max_window = 9, .max_work = 7}, seed);
      SolveOptions avr_options;
      avr_options.engine = Engine::kAvr;
      avr_options.power = &powers[index];
      SolveOptions opt_options;
      opt_options.engine = Engine::kExact;
      opt_options.power = &powers[index];
      Submission avr_run = service.submit({instance, avr_options});
      Submission opt_run = service.submit({instance, opt_options});
      pending.push_back({index, std::move(instance), std::move(avr_run),
                         std::move(opt_run)});
    }
  }
  for (PendingCell& entry : pending) {
    Cell& cell = cells[entry.cell];
    const Instance& instance = entry.instance;
    AlphaPower p(cell.alpha);
    double bound = avr_multi_competitive_bound(cell.alpha);
    double avr = entry.avr_run.future.get().energy;
    double opt = entry.opt_run.future.get().energy;
    double ratio = avr / opt;
    cell.ratio.add(ratio);
    cell.ok &= ratio >= 1.0 - 1e-9 && ratio <= bound + 1e-9;

    // Inequality (9).
    double m = static_cast<double>(cell.machines);
    double avr1 = 0.0;
    for (const Q& density : avr_density_profile(instance)) {
      avr1 += std::pow(density.to_double(), cell.alpha);
    }
    double per_job = 0.0;
    for (const Job& job : instance.jobs()) {
      if (job.work.sign() > 0) {
        per_job += std::pow(job.density().to_double(), cell.alpha) *
                   job.window().to_double();
      }
    }
    cell.ok &= avr <= std::pow(m, 1.0 - cell.alpha) * avr1 + per_job + 1e-9;

    // Inequality (10).
    double single = yds_schedule(instance.with_machines(1)).schedule.energy(p);
    cell.ok &= std::pow(m, 1.0 - cell.alpha) * single <= opt + 1e-9;
  }

  Table table({"alpha", "m", "ratio mean", "ratio max", "bound (2a)^a/2+1",
               "ratio+ineq (9)(10)"});
  bool all_ok = true;
  for (const Cell& cell : cells) {
    all_ok &= cell.ok;
    table.row(cell.alpha, cell.machines, cell.ratio.mean(), cell.ratio.max(),
              avr_multi_competitive_bound(cell.alpha),
              cell.ok ? std::string("hold") : std::string("VIOLATED"));
  }
  table.print(std::cout);

  exp::verdict(all_ok,
               "Theorem 3 reproduced: AVR(m) ratios inside ((2a)^a)/2 + 1 and both "
               "proof inequalities hold on every sampled instance.");
  return all_ok ? 0 : 1;
}
