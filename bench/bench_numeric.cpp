// Micro-benchmarks for the exact-arithmetic substrate (S1/S2): the cost model
// behind every flow computation in the offline algorithm.

#include <benchmark/benchmark.h>

#include "mpss/util/bigint.hpp"
#include "mpss/util/numeric_counters.hpp"
#include "mpss/util/random.hpp"
#include "mpss/util/rational.hpp"

namespace {

using mpss::BigInt;
using mpss::Q;

// Small-vs-promoted benchmarks: Arg(0) runs word-sized operands through the
// inline-int64 fast path; Arg(1) forces the pre-PR limb-vector path on the SAME
// values via BigInt's test hook, so the pair isolates the representation cost.
constexpr std::int64_t kSmallArg = 0;
constexpr std::int64_t kForcedArg = 1;

class ForceBigGuard {
 public:
  explicit ForceBigGuard(bool force) { BigInt::set_test_force_big(force); }
  ~ForceBigGuard() { BigInt::set_test_force_big(false); }
};

/// Publishes the fast-path hit/promotion distribution of one timed run.
void report_numeric_counters(benchmark::State& state) {
  const mpss::NumericCounters& counters = mpss::numeric_counters();
  state.counters["small_hits"] = static_cast<double>(counters.bigint_small_hits);
  state.counters["promotions"] = static_cast<double>(counters.bigint_promotions);
  state.counters["norm_small"] =
      static_cast<double>(counters.rational_norm_small);
  mpss::publish_numeric_counters();  // reset for the next benchmark
}

BigInt random_bigint(mpss::Xoshiro256& rng, int limbs) {
  BigInt out(1);
  for (int i = 0; i < limbs; ++i) {
    out = out * BigInt(static_cast<std::int64_t>(rng() >> 1)) + BigInt(1);
  }
  return out;
}

void BM_BigIntMultiply(benchmark::State& state) {
  mpss::Xoshiro256 rng(1);
  BigInt a = random_bigint(rng, static_cast<int>(state.range(0)));
  BigInt b = random_bigint(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMultiply)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_BigIntDivmod(benchmark::State& state) {
  mpss::Xoshiro256 rng(2);
  BigInt num = random_bigint(rng, static_cast<int>(2 * state.range(0)));
  BigInt den = random_bigint(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::divmod(num, den));
  }
}
BENCHMARK(BM_BigIntDivmod)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_BigIntGcd(benchmark::State& state) {
  mpss::Xoshiro256 rng(3);
  BigInt a = random_bigint(rng, static_cast<int>(state.range(0)));
  BigInt b = random_bigint(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::gcd(a, b));
  }
}
BENCHMARK(BM_BigIntGcd)->Arg(1)->Arg(4)->Arg(16);

void BM_BigIntToString(benchmark::State& state) {
  mpss::Xoshiro256 rng(4);
  BigInt a = random_bigint(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.to_string());
  }
}
BENCHMARK(BM_BigIntToString)->Arg(4)->Arg(32);

void BM_BigIntWordSizedAdd(benchmark::State& state) {
  ForceBigGuard guard(state.range(0) == kForcedArg);
  mpss::Xoshiro256 rng(11);
  BigInt a(static_cast<std::int64_t>(rng() >> 2));
  BigInt b(static_cast<std::int64_t>(rng() >> 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
  }
  report_numeric_counters(state);
}
BENCHMARK(BM_BigIntWordSizedAdd)->Arg(kSmallArg)->Arg(kForcedArg);

void BM_BigIntWordSizedMul(benchmark::State& state) {
  ForceBigGuard guard(state.range(0) == kForcedArg);
  mpss::Xoshiro256 rng(12);
  BigInt a(static_cast<std::int64_t>(rng() >> 34));
  BigInt b(static_cast<std::int64_t>(rng() >> 34));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  report_numeric_counters(state);
}
BENCHMARK(BM_BigIntWordSizedMul)->Arg(kSmallArg)->Arg(kForcedArg);

void BM_BigIntWordSizedGcd(benchmark::State& state) {
  ForceBigGuard guard(state.range(0) == kForcedArg);
  mpss::Xoshiro256 rng(13);
  BigInt a(static_cast<std::int64_t>(rng() >> 2));
  BigInt b(static_cast<std::int64_t>(rng() >> 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::gcd(a, b));
  }
  report_numeric_counters(state);
}
BENCHMARK(BM_BigIntWordSizedGcd)->Arg(kSmallArg)->Arg(kForcedArg);

void BM_RationalAdd(benchmark::State& state) {
  // Denominator sizes typical of interval arithmetic in the scheduler.
  mpss::Xoshiro256 rng(5);
  Q a(rng.uniform_int(1, 1 << 20), rng.uniform_int(1, 1 << 20));
  Q b(rng.uniform_int(1, 1 << 20), rng.uniform_int(1, 1 << 20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
  }
}
BENCHMARK(BM_RationalAdd);

void BM_RationalCompare(benchmark::State& state) {
  Q a(123456789, 987654321);
  Q b(123456790, 987654321);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
  }
}
BENCHMARK(BM_RationalCompare);

void BM_RationalWordSizedAdd(benchmark::State& state) {
  ForceBigGuard guard(state.range(0) == kForcedArg);
  Q a(123456789, 987654321);
  Q b(987654321, 123456791);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
  }
  report_numeric_counters(state);
}
BENCHMARK(BM_RationalWordSizedAdd)->Arg(kSmallArg)->Arg(kForcedArg);

void BM_RationalWordSizedMul(benchmark::State& state) {
  ForceBigGuard guard(state.range(0) == kForcedArg);
  Q a(123456789, 987654321);
  Q b(-987654321, 123456791);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  report_numeric_counters(state);
}
BENCHMARK(BM_RationalWordSizedMul)->Arg(kSmallArg)->Arg(kForcedArg);

void BM_RationalWordSizedNormalize(benchmark::State& state) {
  // Construction normalizes: gcd + two divisions, all word-sized here.
  ForceBigGuard guard(state.range(0) == kForcedArg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Q(246913578, -1975308642));
  }
  report_numeric_counters(state);
}
BENCHMARK(BM_RationalWordSizedNormalize)->Arg(kSmallArg)->Arg(kForcedArg);

void BM_HarmonicSum(benchmark::State& state) {
  // Worst-case denominator growth: sum of 1/k.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Q sum;
    for (int k = 1; k <= n; ++k) sum += Q(1, k);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_HarmonicSum)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
