// Micro-benchmarks for the exact-arithmetic substrate (S1/S2): the cost model
// behind every flow computation in the offline algorithm.

#include <benchmark/benchmark.h>

#include "mpss/util/bigint.hpp"
#include "mpss/util/random.hpp"
#include "mpss/util/rational.hpp"

namespace {

using mpss::BigInt;
using mpss::Q;

BigInt random_bigint(mpss::Xoshiro256& rng, int limbs) {
  BigInt out(1);
  for (int i = 0; i < limbs; ++i) {
    out = out * BigInt(static_cast<std::int64_t>(rng() >> 1)) + BigInt(1);
  }
  return out;
}

void BM_BigIntMultiply(benchmark::State& state) {
  mpss::Xoshiro256 rng(1);
  BigInt a = random_bigint(rng, static_cast<int>(state.range(0)));
  BigInt b = random_bigint(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMultiply)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_BigIntDivmod(benchmark::State& state) {
  mpss::Xoshiro256 rng(2);
  BigInt num = random_bigint(rng, static_cast<int>(2 * state.range(0)));
  BigInt den = random_bigint(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::divmod(num, den));
  }
}
BENCHMARK(BM_BigIntDivmod)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_BigIntGcd(benchmark::State& state) {
  mpss::Xoshiro256 rng(3);
  BigInt a = random_bigint(rng, static_cast<int>(state.range(0)));
  BigInt b = random_bigint(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::gcd(a, b));
  }
}
BENCHMARK(BM_BigIntGcd)->Arg(1)->Arg(4)->Arg(16);

void BM_BigIntToString(benchmark::State& state) {
  mpss::Xoshiro256 rng(4);
  BigInt a = random_bigint(rng, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.to_string());
  }
}
BENCHMARK(BM_BigIntToString)->Arg(4)->Arg(32);

void BM_RationalAdd(benchmark::State& state) {
  // Denominator sizes typical of interval arithmetic in the scheduler.
  mpss::Xoshiro256 rng(5);
  Q a(rng.uniform_int(1, 1 << 20), rng.uniform_int(1, 1 << 20));
  Q b(rng.uniform_int(1, 1 << 20), rng.uniform_int(1, 1 << 20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a + b);
  }
}
BENCHMARK(BM_RationalAdd);

void BM_RationalCompare(benchmark::State& state) {
  Q a(123456789, 987654321);
  Q b(123456790, 987654321);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a < b);
  }
}
BENCHMARK(BM_RationalCompare);

void BM_HarmonicSum(benchmark::State& state) {
  // Worst-case denominator growth: sum of 1/k.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Q sum;
    for (int k = 1; k <= n; ++k) sum += Q(1, k);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_HarmonicSum)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
