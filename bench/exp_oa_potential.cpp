// Experiment E2b: Theorem 2's potential-function argument, executed.
//
// The proof of Theorem 2 hinges on the invariant E_OA(t) + Phi(t) <= a^a E_OPT(t)
// with the refined two-term potential (see online/potential.hpp). This harness
// replays OA against the exact optimum across workloads and prints the tightest
// slack observed -- a direct numerical witness of the analysis.

#include <iostream>

#include "exp_common.hpp"
#include "mpss/online/potential.hpp"
#include "mpss/util/stats.hpp"
#include "mpss/util/thread_pool.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "seeds"});
  const bool quick = args.get_bool("quick", false);
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", quick ? 3 : 8));

  exp::banner("E2b: the Theorem 2 potential invariant",
              "Claim: E_OA(t) + Phi(t) <= alpha^alpha * E_OPT(t) at all times, "
              "with Phi built from OA's speed sets and OPT's remaining work.");

  struct Cell {
    double alpha;
    std::size_t machines;
    bool holds = true;
    double min_slack = 0.0;
    double final_phi = 0.0;
    std::size_t samples = 0;
  };
  std::vector<Cell> cells;
  for (double alpha : {1.5, 2.0, 3.0}) {
    for (std::size_t m : {1u, 2u, 4u}) cells.push_back({alpha, m, true, 1e300, 0.0, 0});
  }

  parallel_for(cells.size(), [&](std::size_t index) {
    Cell& cell = cells[index];
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      Instance instance = generate_bursty({.bursts = 3, .jobs_per_burst = 3,
                                           .machines = cell.machines, .horizon = 18,
                                           .burst_window = 4, .max_work = 5}, seed);
      auto trace = oa_potential_trace(instance, cell.alpha, 1e-7);
      cell.holds &= trace.invariant_holds;
      cell.samples += trace.samples.size();
      cell.final_phi = std::max(cell.final_phi, std::abs(trace.final_potential));
      for (const auto& sample : trace.samples) {
        cell.min_slack = std::min(cell.min_slack, sample.slack);
      }
    }
  });

  Table table({"alpha", "m", "samples", "min slack", "|final Phi|", "invariant"});
  bool all_ok = true;
  for (const Cell& cell : cells) {
    all_ok &= cell.holds && cell.final_phi < 1e-6;
    table.row(cell.alpha, cell.machines, cell.samples, cell.min_slack, cell.final_phi,
              cell.holds ? std::string("holds") : std::string("VIOLATED"));
  }
  table.print(std::cout);
  std::cout << "\n(min slack >= 0 means the invariant never came closer than that "
               "to breaking; Phi returns to ~0 at the horizon, recovering "
               "Theorem 2 exactly)\n";

  exp::verdict(all_ok, "E2b reproduced: the refined potential's invariant holds at "
                       "every sampled time across alpha, m and seeds.");
  return all_ok ? 0 : 1;
}
