// Micro-benchmarks for the offline algorithms: the paper's combinatorial optimal
// scheduler (Theorem 1) scaling in n and m, plus YDS and the feasibility checker.

#include <benchmark/benchmark.h>

#include "mpss/core/optimal.hpp"
#include "mpss/core/optimal_fast.hpp"
#include "mpss/core/yds.hpp"
#include "mpss/obs/ring_sink.hpp"
#include "mpss/util/numeric_counters.hpp"
#include "mpss/workload/generators.hpp"

namespace {

using namespace mpss;

Instance bench_instance(std::size_t jobs, std::size_t machines, std::uint64_t seed) {
  return generate_uniform({.jobs = jobs, .machines = machines,
                           .horizon = 2 * static_cast<std::int64_t>(jobs),
                           .max_window = 10, .max_work = 8}, seed);
}

/// Publishes an engine's SolveStats as machine-readable benchmark counters
/// (visible in --benchmark_format=json). Harvested from one untimed solve so
/// the timed loop stays untouched.
void report_stats(benchmark::State& state, const mpss::obs::SolveStats& stats) {
  state.counters["phases"] = static_cast<double>(stats.phases);
  state.counters["flow_computations"] = static_cast<double>(stats.flow_computations);
  state.counters["bfs_rounds"] = static_cast<double>(stats.flow_bfs_rounds);
  state.counters["aug_paths"] = static_cast<double>(stats.flow_augmenting_paths);
  state.counters["removals"] = static_cast<double>(stats.candidate_removals);
}

/// Publishes the BigInt/Rational fast-path distribution of one untimed solve:
/// how much of the exact engine's arithmetic stayed inline vs promoted to
/// limb vectors. small_hits >> promotions is the whole point of the fast path.
void report_numeric_profile(benchmark::State& state, const Instance& instance) {
  mpss::publish_numeric_counters();  // drop whatever the timed loop accumulated
  benchmark::DoNotOptimize(optimal_schedule(instance));
  const mpss::NumericCounters& counters = mpss::numeric_counters();
  state.counters["small_hits"] = static_cast<double>(counters.bigint_small_hits);
  state.counters["promotions"] = static_cast<double>(counters.bigint_promotions);
  state.counters["norm_small"] =
      static_cast<double>(counters.rational_norm_small);
  mpss::publish_numeric_counters();
}

void BM_OptimalScheduleByJobs(benchmark::State& state) {
  Instance instance = bench_instance(static_cast<std::size_t>(state.range(0)), 4, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_schedule(instance));
  }
  state.SetComplexityN(state.range(0));
  report_stats(state, optimal_schedule(instance).stats);
  report_numeric_profile(state, instance);
}
BENCHMARK(BM_OptimalScheduleByJobs)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_OptimalScheduleForcedLimbPath(benchmark::State& state) {
  // The pre-fast-path cost model: identical algorithm, every BigInt forced
  // through the limb-vector representation. The ratio of this benchmark to
  // BM_OptimalScheduleByJobs on the same Arg is the end-to-end speedup.
  Instance instance = bench_instance(static_cast<std::size_t>(state.range(0)), 4, 1);
  BigInt::set_test_force_big(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_schedule(instance));
  }
  BigInt::set_test_force_big(false);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OptimalScheduleForcedLimbPath)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_OptimalScheduleByMachines(benchmark::State& state) {
  Instance instance = bench_instance(32, static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_schedule(instance));
  }
}
BENCHMARK(BM_OptimalScheduleByMachines)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_OptimalScheduleRingTraced(benchmark::State& state) {
  // Tracing overhead (S43 budget): same solve as BM_OptimalScheduleByJobs but
  // every event and span lands in a lock-free RingSink. Compare against the
  // untraced run at the same Arg; the delta is the full instrumented-emit cost
  // (span clock reads included). Rings are drained per iteration so a full
  // buffer never silently turns emits into cheap drops.
  Instance instance = bench_instance(static_cast<std::size_t>(state.range(0)), 4, 1);
  mpss::obs::RingSink ring(1 << 16);
  mpss::OptimalOptions options;
  std::size_t events = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_schedule(instance, options, &ring));
    events += ring.drain().size();
  }
  state.counters["events"] =
      static_cast<double>(events) / static_cast<double>(state.iterations());
  state.counters["ring_dropped"] = static_cast<double>(ring.dropped());
}
BENCHMARK(BM_OptimalScheduleRingTraced)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_LaminarDeepPhases(benchmark::State& state) {
  // Laminar instances maximize the number of distinct speed levels (phases).
  Instance instance = generate_laminar({.jobs = static_cast<std::size_t>(state.range(0)),
                                        .machines = 2, .depth = 5, .max_work = 12}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_schedule(instance));
  }
  report_stats(state, optimal_schedule(instance).stats);
  report_numeric_profile(state, instance);
}
BENCHMARK(BM_LaminarDeepPhases)->Arg(16)->Arg(32);

/// Round-heavy workload for the warm-start benchmarks: a deep laminar hierarchy
/// keeps the per-phase Lemma-4 removal chains long at every n (hundreds to
/// thousands of flow rounds) -- the regime the incremental path (DESIGN S42)
/// targets. Shallower hierarchies degenerate to one phase as n grows.
Instance round_heavy_instance(std::size_t jobs) {
  return generate_laminar({.jobs = jobs, .machines = 3, .depth = 7, .max_work = 12}, 3);
}

void BM_OptimalIncrementalRounds(benchmark::State& state) {
  // Exact engine, warm-started (incremental=true, the default) vs rebuild
  // (range(1)==0). Compare bfs_rounds/aug_paths counters between the two
  // variants at the same n for the Dinic-work reduction.
  Instance instance = round_heavy_instance(static_cast<std::size_t>(state.range(0)));
  OptimalOptions options;
  options.incremental = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_schedule(instance, options));
  }
  report_stats(state, optimal_schedule(instance, options).stats);
}
BENCHMARK(BM_OptimalIncrementalRounds)
    ->ArgsProduct({{16, 64}, {0, 1}})
    ->ArgNames({"jobs", "incremental"});

void BM_FastIncrementalRounds(benchmark::State& state) {
  // Same comparison on the double-precision engine, which reaches n=256.
  Instance instance = round_heavy_instance(static_cast<std::size_t>(state.range(0)));
  FastOptimalOptions options;
  options.incremental = state.range(1) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_schedule_fast(instance, options));
  }
  report_stats(state, optimal_schedule_fast(instance, options).stats);
}
BENCHMARK(BM_FastIncrementalRounds)
    ->ArgsProduct({{16, 64, 256}, {0, 1}})
    ->ArgNames({"jobs", "incremental"});

void BM_OptimalScheduleFastByJobs(benchmark::State& state) {
  // The double-precision engine on the same instances as the exact benchmark.
  Instance instance = bench_instance(static_cast<std::size_t>(state.range(0)), 4, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_schedule_fast(instance));
  }
  report_stats(state, optimal_schedule_fast(instance).stats);
}
BENCHMARK(BM_OptimalScheduleFastByJobs)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_Yds(benchmark::State& state) {
  Instance instance = bench_instance(static_cast<std::size_t>(state.range(0)), 1, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(yds_schedule(instance));
  }
}
BENCHMARK(BM_Yds)->Arg(8)->Arg(16)->Arg(32);

void BM_FeasibilityChecker(benchmark::State& state) {
  Instance instance = bench_instance(static_cast<std::size_t>(state.range(0)), 4, 5);
  auto result = optimal_schedule(instance);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_schedule(instance, result.schedule));
  }
}
BENCHMARK(BM_FeasibilityChecker)->Arg(16)->Arg(64);

void BM_EnergyMeasurement(benchmark::State& state) {
  Instance instance = bench_instance(64, 4, 6);
  auto result = optimal_schedule(instance);
  AlphaPower p(2.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(result.schedule.energy(p));
  }
}
BENCHMARK(BM_EnergyMeasurement);

}  // namespace
