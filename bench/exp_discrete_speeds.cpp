// Experiment E10 (extension, refs [12,13] context): discrete speed levels. Real
// processors expose a finite frequency ladder; the two-adjacent-levels
// construction converts our continuous optimum into a ladder-feasible schedule.
// We measure the energy overhead as the ladder coarsens (geometric ratio grows).

#include <iostream>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/ext/discrete_speeds.hpp"
#include "mpss/util/stats.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "seeds"});
  const bool quick = args.get_bool("quick", false);
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", quick ? 4 : 10));
  AlphaPower p(3.0);

  exp::banner("E10: discrete speed levels (Li-Yao style post-processing)",
              "Claim: splitting each slice across the two adjacent ladder levels "
              "preserves feasibility exactly; overhead shrinks as the ladder "
              "densifies.");

  struct Ladder {
    const char* name;
    Q ratio;
    std::size_t levels;
  };
  const Ladder ladders[] = {
      {"coarse (x2.0, 8 levels)", Q(2), 8},
      {"medium (x1.5, 12 levels)", Q(3, 2), 12},
      {"fine (x1.25, 20 levels)", Q(5, 4), 20},
      {"very fine (x1.1, 40 levels)", Q(11, 10), 40},
  };

  Table table({"ladder", "mean overhead", "max overhead", "feasible"});
  bool all_ok = true;
  double previous_mean = std::numeric_limits<double>::infinity();
  for (const Ladder& ladder : ladders) {
    RunningStats overhead;
    bool feasible = true;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      Instance instance = generate_uniform({.jobs = 10, .machines = 3, .horizon = 16,
                                            .max_window = 8, .max_work = 6}, seed);
      auto optimal = optimal_schedule(instance);
      // Top level just above the fastest slice so every ladder covers the range.
      Q top = optimal.schedule.max_speed() * Q(21, 20);
      auto levels = geometric_levels(top, ladder.ratio, ladder.levels);
      Schedule discrete = discretize_speeds(optimal.schedule, levels);
      feasible &= check_schedule(instance, discrete).feasible;
      double continuous_energy = optimal.schedule.energy(p);
      overhead.add(discrete.energy(p) / continuous_energy);
    }
    all_ok &= feasible;
    all_ok &= overhead.min() >= 1.0 - 1e-9;  // discretization never gains energy
    table.row(std::string(ladder.name), overhead.mean(), overhead.max(),
              feasible ? std::string("yes") : std::string("NO"));
    // Densifying the ladder (and keeping its range anchored at the top speed)
    // should reduce average overhead.
    all_ok &= overhead.mean() <= previous_mean + 0.02;
    previous_mean = overhead.mean();
  }
  table.print(std::cout);

  exp::verdict(all_ok, "E10 reproduced: exact feasibility preserved on every "
                       "ladder; overhead decreases monotonically with density.");
  return all_ok ? 0 : 1;
}
