// Experiment E15: the energy/responsiveness trade-off.
//
// The paper's model cares only about deadlines and energy; energy-optimal
// schedules therefore procrastinate -- work is stretched toward deadlines at the
// lowest feasible speeds. This harness replays each strategy's schedule through
// the executor (S35) and tabulates energy ratio vs mean/max flow time, plus the
// effect of race-to-idle (which buys responsiveness *and* sleep-state energy).

#include <iostream>

#include "exp_common.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/ext/sleep.hpp"
#include "mpss/nomig/nonmigratory.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/sim/executor.hpp"
#include "mpss/util/stats.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "seeds"});
  const bool quick = args.get_bool("quick", false);
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", quick ? 4 : 10));
  AlphaPower p(3.0);

  exp::banner("E15: energy vs responsiveness",
              "Energy-optimal schedules procrastinate by design; racing to the "
              "sleep-critical speed recovers responsiveness without violating "
              "anything.");

  struct Row {
    const char* name;
    RunningStats energy_ratio;
    RunningStats mean_flow;
    RunningStats max_flow;
  };
  Row rows[] = {{"OPT (migratory)", {}, {}, {}},
                {"OPT raced to s_crit", {}, {}, {}},
                {"OA(m)", {}, {}, {}},
                {"AVR(m)", {}, {}, {}},
                {"no-migration greedy", {}, {}, {}}};
  bool all_ok = true;

  SleepModel sleep_model{3.0, 1.0};
  Q floor = critical_speed_rational(sleep_model);

  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    Instance instance = generate_uniform({.jobs = 12, .machines = 3, .horizon = 30,
                                          .max_window = 15, .max_work = 6}, seed);
    auto opt = optimal_schedule(instance);
    double e_opt = opt.schedule.energy(p);
    Schedule raced = race_to_idle(opt.schedule, floor);
    auto oa = oa_schedule(instance);
    auto avr = avr_schedule(instance);
    auto greedy = nonmigratory_greedy(instance, p);

    const Schedule* schedules[] = {&opt.schedule, &raced, &oa.schedule,
                                   &avr.schedule, &greedy.schedule};
    for (int i = 0; i < 5; ++i) {
      auto trace = execute_schedule(instance, *schedules[i]);
      all_ok &= trace.consistent();
      rows[i].energy_ratio.add(schedules[i]->energy(p) / e_opt);
      rows[i].mean_flow.add(trace.mean_flow_time());
      rows[i].max_flow.add(trace.max_flow_time().to_double());
    }
  }

  Table table({"strategy", "energy/OPT (mean)", "mean flow time", "max flow time"});
  for (const Row& row : rows) {
    table.row(std::string(row.name), row.energy_ratio.mean(), row.mean_flow.mean(),
              row.max_flow.mean());
  }
  table.print(std::cout);

  // The structural claims: racing shortens flow times vs plain OPT, and all
  // schedules are consistent under execution.
  bool racing_helps = rows[1].mean_flow.mean() <= rows[0].mean_flow.mean() + 1e-9;
  all_ok &= racing_helps;
  std::cout << "\n(racing to s_crit = " << floor
            << " cuts mean flow time while its raw dynamic energy rises -- "
               "worth it exactly when a sleep state exists, see E11)\n";

  exp::verdict(all_ok, "E15 reproduced: all schedules execute consistently; "
                       "energy-optimal strategies procrastinate; race-to-idle "
                       "trades dynamic energy for responsiveness.");
  return all_ok ? 0 : 1;
}
