// Micro-benchmarks for the Dinic max-flow solver (S3) across capacity types:
// int64 (raw solver speed), double, and exact rationals (as used inside the
// offline optimal algorithm).

#include <benchmark/benchmark.h>

#include "mpss/flow/dinic.hpp"
#include "mpss/flow/push_relabel.hpp"
#include "mpss/util/arena.hpp"
#include "mpss/util/random.hpp"

namespace {

using mpss::FlowNetwork;
using mpss::Q;

/// Builds the bipartite job-interval style network the scheduler uses:
/// source -> J jobs -> I intervals -> sink, each job connected to a random
/// subset of intervals (contiguous runs, like activity windows). `Net` is either
/// FlowNetwork (Dinic) or PushRelabelNetwork -- they share the builder interface.
template <typename Net, typename MakeCap>
Net scheduler_shaped_network(std::size_t jobs, std::size_t intervals,
                             MakeCap make_cap, std::uint64_t seed) {
  mpss::Xoshiro256 rng(seed);
  Net net;
  auto source = net.add_node();
  auto job0 = net.add_nodes(jobs);
  auto interval0 = net.add_nodes(intervals);
  auto sink = net.add_node();
  for (std::size_t k = 0; k < jobs; ++k) {
    net.add_edge(source, job0 + k, make_cap(rng.uniform_int(1, 10)));
    std::size_t first = rng.below(intervals);
    std::size_t span = 1 + rng.below(intervals - first);
    for (std::size_t j = first; j < first + span; ++j) {
      net.add_edge(job0 + k, interval0 + j, make_cap(rng.uniform_int(1, 4)));
    }
  }
  for (std::size_t j = 0; j < intervals; ++j) {
    net.add_edge(interval0 + j, sink, make_cap(rng.uniform_int(2, 12)));
  }
  (void)sink;
  return net;
}

void BM_DinicInt64(benchmark::State& state) {
  auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto net = scheduler_shaped_network<FlowNetwork<std::int64_t>>(
        jobs, 2 * jobs, [](std::int64_t v) { return v; }, 7);
    state.ResumeTiming();
    benchmark::DoNotOptimize(net.max_flow(0, net.node_count() - 1));
  }
  // Kernel work counters from one untimed run (deterministic network).
  auto net = scheduler_shaped_network<FlowNetwork<std::int64_t>>(
      jobs, 2 * jobs, [](std::int64_t v) { return v; }, 7);
  net.max_flow(0, net.node_count() - 1);
  state.counters["bfs_rounds"] = static_cast<double>(net.kernel_stats().bfs_rounds);
  state.counters["aug_paths"] =
      static_cast<double>(net.kernel_stats().augmenting_paths);
}
BENCHMARK(BM_DinicInt64)->Arg(16)->Arg(64)->Arg(256);

void BM_DinicDouble(benchmark::State& state) {
  auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto net = scheduler_shaped_network<FlowNetwork<double>>(
        jobs, 2 * jobs, [](std::int64_t v) { return static_cast<double>(v); }, 7);
    state.ResumeTiming();
    benchmark::DoNotOptimize(net.max_flow(0, net.node_count() - 1));
  }
}
BENCHMARK(BM_DinicDouble)->Arg(16)->Arg(64)->Arg(256);

void BM_DinicRational(benchmark::State& state) {
  auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    // Denominators mimic interval lengths: small and varied.
    mpss::Xoshiro256 den_rng(11);
    auto net = scheduler_shaped_network<FlowNetwork<Q>>(
        jobs, 2 * jobs,
        [&den_rng](std::int64_t v) { return Q(v, den_rng.uniform_int(1, 6)); }, 7);
    state.ResumeTiming();
    benchmark::DoNotOptimize(net.max_flow(0, net.node_count() - 1));
  }
}
BENCHMARK(BM_DinicRational)->Arg(16)->Arg(64)->Arg(128);

void BM_DinicLayeredUnitCaps(benchmark::State& state) {
  // Classic hard-ish shape: layered graph with unit capacities.
  auto width = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kLayers = 12;
  for (auto _ : state) {
    state.PauseTiming();
    FlowNetwork<std::int64_t> net;
    auto s = net.add_node();
    auto t = net.add_node();
    std::vector<std::size_t> previous, current;
    for (std::size_t i = 0; i < width; ++i) previous.push_back(net.add_node());
    for (std::size_t i = 0; i < width; ++i) net.add_edge(s, previous[i], 1);
    for (std::size_t l = 1; l < kLayers; ++l) {
      current.clear();
      for (std::size_t i = 0; i < width; ++i) current.push_back(net.add_node());
      for (std::size_t i = 0; i < width; ++i) {
        net.add_edge(previous[i], current[i], 1);
        net.add_edge(previous[i], current[(i + 1) % width], 1);
      }
      previous = current;
    }
    for (std::size_t i = 0; i < width; ++i) net.add_edge(previous[i], t, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(net.max_flow(s, t));
  }
}
BENCHMARK(BM_DinicLayeredUnitCaps)->Arg(16)->Arg(64);

void BM_FlowCsrSteadyStateInt64(benchmark::State& state) {
  // The S46 hot path in isolation: the network is built, CSR-frozen, and
  // arena-backed once; every iteration re-solves on the cached layout. This is
  // the shape the incremental engine sees on warm rounds -- no adjacency
  // rebuild, no scratch allocation -- so the delta against BM_DinicInt64
  // (which constructs per solve) is the cache-residency win.
  auto jobs = static_cast<std::size_t>(state.range(0));
  mpss::ScopedArena scratch;
  auto net = scheduler_shaped_network<FlowNetwork<std::int64_t>>(
      jobs, 2 * jobs, [](std::int64_t v) { return v; }, 7);
  net.set_scratch_arena(scratch.get());
  const std::size_t sink = net.node_count() - 1;
  benchmark::DoNotOptimize(net.max_flow(0, sink));  // freeze + warm the arena
  const std::uint64_t warm_fallbacks = scratch->stats().fallback_allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.max_flow(0, sink));
  }
  state.counters["arena_bytes"] =
      static_cast<double>(scratch->stats().capacity_bytes);
  // Steady state must not touch the heap; a nonzero delta here is a regression.
  state.counters["fallback_allocs"] =
      static_cast<double>(scratch->stats().fallback_allocs - warm_fallbacks);
}
BENCHMARK(BM_FlowCsrSteadyStateInt64)->Arg(16)->Arg(64)->Arg(256);

void BM_FlowCsrSteadyStateRational(benchmark::State& state) {
  // Same steady-state shape over exact rationals: stresses the fused in-place
  // Rational primitives (sub_assign/add_assign/min_in_place) on the
  // bottleneck-and-augment walk instead of temporary-allocating operators.
  auto jobs = static_cast<std::size_t>(state.range(0));
  mpss::Xoshiro256 den_rng(11);
  mpss::ScopedArena scratch;
  auto net = scheduler_shaped_network<FlowNetwork<Q>>(
      jobs, 2 * jobs,
      [&den_rng](std::int64_t v) { return Q(v, den_rng.uniform_int(1, 6)); }, 7);
  net.set_scratch_arena(scratch.get());
  const std::size_t sink = net.node_count() - 1;
  benchmark::DoNotOptimize(net.max_flow(0, sink));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.max_flow(0, sink));
  }
  state.counters["arena_bytes"] =
      static_cast<double>(scratch->stats().capacity_bytes);
}
BENCHMARK(BM_FlowCsrSteadyStateRational)->Arg(16)->Arg(64)->Arg(128);

void BM_FlowCsrFreeze(benchmark::State& state) {
  // Cost of one CSR rebuild (counting sort + span carving) after a topology
  // thaw, isolated from the solve: this is the price each set_scratch_arena()
  // or add_edge() burst pays on the next solve.
  auto jobs = static_cast<std::size_t>(state.range(0));
  mpss::ScopedArena scratch;
  auto net = scheduler_shaped_network<FlowNetwork<std::int64_t>>(
      jobs, 2 * jobs, [](std::int64_t v) { return v; }, 7);
  const std::size_t sink = net.node_count() - 1;
  for (auto _ : state) {
    // Rewind-and-recarve, exactly the engines' per-solve discipline: the thaw
    // invalidates the old spans, the rewound arena serves the new ones.
    scratch->reset();
    net.set_scratch_arena(scratch.get());
    benchmark::DoNotOptimize(net.max_flow(0, sink));
  }
}
BENCHMARK(BM_FlowCsrFreeze)->Arg(16)->Arg(64)->Arg(256);

void BM_PushRelabelInt64(benchmark::State& state) {
  auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto net = scheduler_shaped_network<mpss::PushRelabelNetwork<std::int64_t>>(
        jobs, 2 * jobs, [](std::int64_t v) { return v; }, 7);
    state.ResumeTiming();
    benchmark::DoNotOptimize(net.max_flow(0, net.node_count() - 1));
  }
  auto net = scheduler_shaped_network<mpss::PushRelabelNetwork<std::int64_t>>(
      jobs, 2 * jobs, [](std::int64_t v) { return v; }, 7);
  net.max_flow(0, net.node_count() - 1);
  state.counters["pushes"] = static_cast<double>(net.kernel_stats().pushes);
  state.counters["relabels"] = static_cast<double>(net.kernel_stats().relabels);
}
BENCHMARK(BM_PushRelabelInt64)->Arg(16)->Arg(64)->Arg(256);

void BM_PushRelabelRational(benchmark::State& state) {
  auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    mpss::Xoshiro256 den_rng(11);
    auto net = scheduler_shaped_network<mpss::PushRelabelNetwork<Q>>(
        jobs, 2 * jobs,
        [&den_rng](std::int64_t v) { return Q(v, den_rng.uniform_int(1, 6)); }, 7);
    state.ResumeTiming();
    benchmark::DoNotOptimize(net.max_flow(0, net.node_count() - 1));
  }
}
BENCHMARK(BM_PushRelabelRational)->Arg(16)->Arg(64)->Arg(128);

}  // namespace
