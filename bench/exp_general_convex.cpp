// Experiment E16: one schedule, every convex power function (the Section 2
// guarantee the paper highlights over prior work restricted to s^alpha).
//
// The combinatorial algorithm never evaluates P; its output minimizes energy for
// EVERY convex non-decreasing power function simultaneously (the S'_OPT
// tie-breaking argument). Evidence: the SAME schedule, measured under four very
// different convex P, always lands inside [independent lower bound, LP upper
// bound] computed per power function.

#include <iostream>

#include "exp_common.hpp"
#include "mpss/core/lower_bounds.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/lp/lp_baseline.hpp"
#include "mpss/workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"quick", "seeds"});
  const bool quick = args.get_bool("quick", false);
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", quick ? 3 : 6));

  exp::banner("E16: optimality for general convex power functions",
              "Claim (Sec. 2): the computed schedule is optimal for every convex "
              "non-decreasing P at once -- P never enters the algorithm.");

  AlphaPower square(2.0);
  AlphaPower nearly_linear(1.1);
  CubicPlusLeakagePower cmos(1.0, 0.5, 0.0);
  PiecewiseLinearPower piecewise({{0, 0}, {1, 1}, {2, 4}, {4, 16}, {8, 64}});
  const PowerFunction* functions[] = {&square, &nearly_linear, &cmos, &piecewise};

  Table table({"seed", "P", "lower bound", "schedule energy", "LP upper (grid 24)",
               "inside"});
  bool all_ok = true;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    Instance instance = generate_uniform({.jobs = 6, .machines = 2, .horizon = 12,
                                          .max_window = 6, .max_work = 5}, seed);
    auto result = optimal_schedule(instance);  // ONE schedule for all P below
    double top = result.schedule.max_speed().to_double() * 1.01;
    for (const PowerFunction* p : functions) {
      double energy = result.schedule.energy(*p);
      double lower = density_lower_bound(instance, *p);
      auto lp = lp_baseline(instance, *p, 24, top);
      bool inside = lp.status == LpSolution::Status::kOptimal &&
                    energy >= lower - 1e-9 && energy <= lp.energy + 1e-6;
      all_ok &= inside;
      table.row(seed, p->name(), lower, energy, lp.energy,
                inside ? std::string("yes") : std::string("NO"));
    }
  }
  table.print(std::cout);
  std::cout << "\n(the schedule column was computed ONCE per seed; each row "
               "re-measures it under a different convex P)\n";

  exp::verdict(all_ok,
               "E16 reproduced: a single power-function-oblivious schedule sits "
               "inside the [lower bound, LP optimum] bracket for every convex P "
               "tested.");
  return all_ok ? 0 : 1;
}
