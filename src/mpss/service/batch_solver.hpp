#pragma once
// Concurrent batch-solve service (S44, see DESIGN.md).
//
// The solve() facade is synchronous and single-instance. Every batch-shaped
// caller in the repo -- the experiment sweeps, the adversary search, the bench
// harnesses -- had grown its own ThreadPool loop around it. BatchSolver is the
// shared service those loops port to:
//
//   * a fixed pool of workers pumping a bounded, priority-ordered admission
//     queue (backpressure: try_submit reports kQueueFull, submit blocks);
//   * per-request soft deadlines and cooperative cancellation, delivered to
//     the engines through SolveOptions::cancel and surfaced as
//     SolveStatus::kDeadlineExceeded / kCancelled -- never as exceptions;
//   * an LRU result cache keyed by the canonical (instance, options)
//     fingerprint (service/fingerprint.hpp), so sweeps that revisit a cell
//     (the adversary search re-scoring a mutated-then-reverted instance, a
//     bench's repeat iterations) pay one solve;
//   * telemetry through the obs Registry: service.cache_{hits,misses,
//     evictions} counters, the service.queue_wait_us histogram, and one
//     "service.request" span + "service.done" counter event per request.
//
// Results come back as std::future<SolveResult>; solve_many() is the one-shot
// wrapper that submits a span of instances and returns results in input order.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "mpss/solve.hpp"
#include "mpss/util/cancel.hpp"
#include "mpss/util/thread_pool.hpp"

namespace mpss {

/// One unit of service work: an instance, the solve knobs, and the service-
/// level scheduling hints (neither affects the solve's result -- the cache
/// deliberately ignores them).
struct SolveRequest {
  Instance instance;
  SolveOptions options;

  /// Soft deadline: once passed, the solve is abandoned at the next engine
  /// checkpoint and resolves with status kDeadlineExceeded. The default never
  /// fires. When set, the service installs its own CancelToken carrying this
  /// deadline for the duration of the run; a caller-provided `options.cancel`
  /// token is still honoured up to dispatch (a request cancelled while queued
  /// never runs) -- to compose mid-run cancellation WITH a deadline, put the
  /// deadline on your own token via CancelToken::set_deadline instead.
  CancelToken::Clock::time_point deadline = CancelToken::Clock::time_point::max();

  /// Admission-queue priority: higher runs first; ties dispatch FIFO.
  int priority = 0;

  /// Distributed-tracing context (0/0 = untraced): the worker that executes
  /// this request installs {trace_id, parent_span} as its trace context, so
  /// the service.request span -- opened on the worker thread -- parents under
  /// the submitter's span (the daemon's net.request) across the thread hop,
  /// and every event of the solve carries the trace id. `parent_span` is a
  /// span id of THIS process (cross-process parents stay in net/ -- the
  /// server resolves the wire header into its own net.request span first).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

/// How an admission attempt ended.
enum class SubmitStatus {
  kAccepted,   // queued; the submission's future will resolve
  kQueueFull,  // try_submit only: bounded queue at capacity, request dropped
  kShutdown,   // service is shutting down, request dropped
};

/// Stable lowercase name ("accepted", "queue_full", "shutdown").
[[nodiscard]] const char* submit_status_name(SubmitStatus status);

/// Outcome of submit()/try_submit(). The future is valid only when accepted.
struct Submission {
  SubmitStatus status = SubmitStatus::kShutdown;
  std::future<SolveResult> future;

  [[nodiscard]] bool accepted() const { return status == SubmitStatus::kAccepted; }
};

struct BatchSolverOptions {
  /// Worker threads; 0 means hardware_concurrency (at least 1).
  std::size_t threads = 0;
  /// Admission-queue capacity; 0 means unbounded (try_submit never reports
  /// kQueueFull and submit never blocks).
  std::size_t queue_capacity = 256;
  /// LRU result-cache entries; 0 disables caching entirely.
  std::size_t cache_capacity = 128;
};

/// Thread-pool-backed solve service. Construction starts the workers;
/// destruction (or shutdown()) stops admission, drains every queued request,
/// and joins -- no accepted future is ever abandoned.
class BatchSolver {
 public:
  explicit BatchSolver(BatchSolverOptions options = BatchSolverOptions{});
  ~BatchSolver();

  BatchSolver(const BatchSolver&) = delete;
  BatchSolver& operator=(const BatchSolver&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return pool_.size(); }

  /// Queues a request, blocking while the bounded queue is full (the
  /// backpressure path for producers that must not drop work). Returns
  /// kShutdown without queuing when the service is stopping.
  [[nodiscard]] Submission submit(SolveRequest request);

  /// Non-blocking admission: kQueueFull instead of waiting when the bounded
  /// queue is at capacity.
  [[nodiscard]] Submission try_submit(SolveRequest request);

  /// Instance-first conveniences: the common "solve this value under these
  /// knobs" shape without spelling out a SolveRequest (service hints take
  /// their defaults: no deadline, priority 0).
  [[nodiscard]] Submission submit(Instance instance,
                                  SolveOptions options = SolveOptions{});
  [[nodiscard]] Submission try_submit(Instance instance,
                                      SolveOptions options = SolveOptions{});

  /// Solves every instance under the same options and returns the results in
  /// input order (the one-shot batch API). Blocks until all are done.
  [[nodiscard]] std::vector<SolveResult> solve_many(
      std::span<const Instance> instances,
      const SolveOptions& options = SolveOptions{});

  /// Monotonic mirror of the service.cache_* Registry counters, scoped to
  /// this instance (tests assert on these; dashboards read the Registry).
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] CacheStats cache_stats() const;

  /// Requests currently queued (excludes in-flight solves). Advisory: the
  /// value may be stale by the time the caller acts on it.
  [[nodiscard]] std::size_t queue_depth() const;

  /// Stops admission (further submits report kShutdown), drains the queue,
  /// and joins the workers. Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Pending;
  class Impl;

  void worker_loop();
  Submission admit(SolveRequest&& request, bool blocking);
  void execute(Pending request, std::uint64_t queue_wait_us);

  std::unique_ptr<Impl> impl_;
  ThreadPool pool_;  // declared last: workers must die before the state they use
};

/// One-shot convenience: spins up a BatchSolver (with `threads` workers; 0 =
/// hardware concurrency), solves every instance under `options`, and returns
/// the results in input order.
[[nodiscard]] std::vector<SolveResult> solve_many(
    std::span<const Instance> instances,
    const SolveOptions& options = SolveOptions{}, std::size_t threads = 0);

}  // namespace mpss
