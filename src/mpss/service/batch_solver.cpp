#include "mpss/service/batch_solver.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <list>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "mpss/obs/registry.hpp"
#include "mpss/obs/span.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/service/fingerprint.hpp"

namespace mpss {

const char* submit_status_name(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue_full";
    case SubmitStatus::kShutdown: return "shutdown";
  }
  return "unknown";
}

/// One admitted request waiting in (or popped from) the queue.
struct BatchSolver::Pending {
  int priority = 0;
  std::uint64_t seq = 0;  // admission order; the FIFO tiebreak within a priority
  SolveRequest request;
  std::promise<SolveResult> promise;
  CancelToken::Clock::time_point enqueued{};

  /// Max-heap order: higher priority first, then lower seq (older) first.
  [[nodiscard]] bool heap_before(const Pending& other) const {
    if (priority != other.priority) return priority < other.priority;
    return seq > other.seq;
  }
};

class BatchSolver::Impl {
 public:
  explicit Impl(const BatchSolverOptions& options) : options_(options) {}

  BatchSolverOptions options_;

  mutable std::mutex queue_mutex_;
  std::condition_variable work_available_;
  std::condition_variable space_available_;
  std::vector<Pending> queue_;  // heap ordered by Pending::heap_before
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;

  // LRU cache: most recent at the list front; the map indexes list nodes.
  mutable std::mutex cache_mutex_;
  std::list<std::pair<std::uint64_t, SolveResult>> lru_;
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t, SolveResult>>::iterator>
      cache_index_;
  CacheStats cache_stats_;

  [[nodiscard]] std::optional<SolveResult> cache_get(std::uint64_t key) {
    std::scoped_lock lock(cache_mutex_);
    auto it = cache_index_.find(key);
    if (it == cache_index_.end()) {
      ++cache_stats_.misses;
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++cache_stats_.hits;
    return it->second->second;
  }

  void cache_put(std::uint64_t key, const SolveResult& result,
                 std::uint64_t* evicted) {
    std::scoped_lock lock(cache_mutex_);
    auto it = cache_index_.find(key);
    if (it != cache_index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return;  // a concurrent miss on the same key beat us to the insert
    }
    lru_.emplace_front(key, result);
    cache_index_.emplace(key, lru_.begin());
    while (lru_.size() > options_.cache_capacity) {
      cache_index_.erase(lru_.back().first);
      lru_.pop_back();
      ++cache_stats_.evictions;
      ++*evicted;
    }
  }
};

BatchSolver::BatchSolver(BatchSolverOptions options)
    : impl_(std::make_unique<Impl>(options)), pool_(options.threads) {
  // Each pool worker runs one pump loop for the service's lifetime. The loops
  // block on the service's own condition variable, never on other pool tasks,
  // honouring ThreadPool's no-task-interdependence contract.
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    pool_.submit([this] { worker_loop(); });
  }
}

BatchSolver::~BatchSolver() {
  shutdown();
  try {
    pool_.wait_idle();
  } catch (...) {
    // A pump loop died outside a solve (a library bug); its queued promises
    // surface std::future_errc::broken_promise to their waiters, which is the
    // loudest thing a destructor can safely do.
  }
}

void BatchSolver::shutdown() {
  {
    std::scoped_lock lock(impl_->queue_mutex_);
    if (impl_->stopping_) return;
    impl_->stopping_ = true;
  }
  impl_->work_available_.notify_all();
  impl_->space_available_.notify_all();
  pool_.wait_idle();  // pump loops drain the queue, then exit
}

Submission BatchSolver::admit(SolveRequest&& request, bool blocking) {
  Submission submission;
  {
    std::unique_lock lock(impl_->queue_mutex_);
    const std::size_t capacity = impl_->options_.queue_capacity;
    if (blocking && capacity != 0) {
      impl_->space_available_.wait(lock, [&] {
        return impl_->stopping_ || impl_->queue_.size() < capacity;
      });
    }
    if (impl_->stopping_) {
      submission.status = SubmitStatus::kShutdown;
      return submission;
    }
    if (capacity != 0 && impl_->queue_.size() >= capacity) {
      submission.status = SubmitStatus::kQueueFull;
      obs::Registry::global().add("service.rejected_full");
      return submission;
    }
    Pending pending{request.priority, impl_->next_seq_++, std::move(request),
                    std::promise<SolveResult>{}, CancelToken::Clock::now()};
    submission.status = SubmitStatus::kAccepted;
    submission.future = pending.promise.get_future();
    impl_->queue_.push_back(std::move(pending));
    std::push_heap(impl_->queue_.begin(), impl_->queue_.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.heap_before(b);
                   });
    obs::Registry::global().add("service.submitted");
  }
  impl_->work_available_.notify_one();
  return submission;
}

Submission BatchSolver::submit(SolveRequest request) {
  return admit(std::move(request), /*blocking=*/true);
}

Submission BatchSolver::try_submit(SolveRequest request) {
  return admit(std::move(request), /*blocking=*/false);
}

Submission BatchSolver::submit(Instance instance, SolveOptions options) {
  return submit(SolveRequest{std::move(instance), std::move(options)});
}

Submission BatchSolver::try_submit(Instance instance, SolveOptions options) {
  return try_submit(SolveRequest{std::move(instance), std::move(options)});
}

void BatchSolver::worker_loop() {
  // One Registry histogram lookup per worker, not per request (the lookup
  // takes the registry mutex; record() on the result is lock-free).
  obs::Histogram& queue_wait_us =
      obs::Registry::global().histogram("service.queue_wait_us");
  for (;;) {
    std::optional<Pending> pending;
    {
      std::unique_lock lock(impl_->queue_mutex_);
      impl_->work_available_.wait(
          lock, [&] { return impl_->stopping_ || !impl_->queue_.empty(); });
      if (impl_->queue_.empty()) return;  // stopping, queue drained
      std::pop_heap(impl_->queue_.begin(), impl_->queue_.end(),
                    [](const Pending& a, const Pending& b) {
                      return a.heap_before(b);
                    });
      pending.emplace(std::move(impl_->queue_.back()));
      impl_->queue_.pop_back();
    }
    impl_->space_available_.notify_one();
    auto wait_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            CancelToken::Clock::now() - pending->enqueued)
            .count());
    queue_wait_us.record(wait_us);
    // The per-request counter event carries the same wait, so offline tools
    // (mpss_trace's service table, --prom) can rebuild the distribution from
    // a trace file alone.
    obs::emit(nullptr, obs::EventKind::kCounter, "service.queue_wait", wait_us);
    execute(std::move(*pending), wait_us);
  }
}

namespace {

/// Stamps the service-side request telemetry into a result's counters, the
/// channel solve() results already use for engine telemetry. The daemon reads
/// these to build its completion-log records.
void annotate(SolveResult& result, std::uint64_t queue_wait_us, bool cache_hit) {
  result.stats.counters.set("service.queue_wait_us", queue_wait_us);
  result.stats.counters.set("service.cache_hit", cache_hit ? 1 : 0);
}

}  // namespace

void BatchSolver::execute(Pending pending, std::uint64_t queue_wait_us) {
  const SolveRequest& request = pending.request;
  // Adopt the submitter's trace context: service.request becomes a root span
  // on this worker whose parent is the submitter's span in this process (the
  // daemon's net.request), and everything the engines emit below carries the
  // trace id. An untraced request installs the empty context, which is the
  // worker's resting state anyway.
  obs::TraceContextScope trace_scope(
      obs::TraceContext{request.trace_id, request.parent_span, 0});
  obs::SpanScope request_span(nullptr, "service.request");

  std::optional<std::uint64_t> key;
  if (impl_->options_.cache_capacity != 0) {
    key = solve_fingerprint(request.instance, request.options);
  }
  if (key) {
    if (std::optional<SolveResult> cached = impl_->cache_get(*key)) {
      obs::Registry::global().add("service.cache_hits");
      obs::emit(nullptr, obs::EventKind::kCounter, "service.cache_hit", *key);
      obs::emit(nullptr, obs::EventKind::kCounter, "service.done",
                static_cast<std::uint64_t>(cached->status), /*b=*/1,
                request_span.elapsed_seconds());
      annotate(*cached, queue_wait_us, /*cache_hit=*/true);
      pending.promise.set_value(std::move(*cached));
      return;
    }
    obs::Registry::global().add("service.cache_misses");
    obs::emit(nullptr, obs::EventKind::kCounter, "service.cache_miss", *key);
  }

  SolveOptions run_options = request.options;
  CancelToken deadline_token;
  if (request.deadline != CancelToken::Clock::time_point::max()) {
    deadline_token.set_deadline(request.deadline);
    // A caller token that fired while the request was queued still wins: honour
    // it now, before the deadline token replaces it for the run.
    if (run_options.cancel != nullptr && run_options.cancel->cancel_requested()) {
      SolveResult cancelled;
      cancelled.status = SolveStatus::kCancelled;
      cancelled.error_detail = "solve abandoned: cancellation requested";
      obs::emit(nullptr, obs::EventKind::kCounter, "service.done",
                static_cast<std::uint64_t>(cancelled.status), /*b=*/0,
                request_span.elapsed_seconds());
      annotate(cancelled, queue_wait_us, /*cache_hit=*/false);
      pending.promise.set_value(std::move(cancelled));
      return;
    }
    run_options.cancel = &deadline_token;
  }

  SolveResult result;
  try {
    result = solve(request.instance, run_options);
  } catch (...) {
    // solve() only throws InternalError (a library bug); hand it to the waiter.
    pending.promise.set_exception(std::current_exception());
    return;
  }
  obs::emit(nullptr, obs::EventKind::kCounter, "service.done",
            static_cast<std::uint64_t>(result.status), /*b=*/0,
            request_span.elapsed_seconds());
  // Steady-state memory telemetry (S46): a request whose engine ran entirely
  // out of this worker's pooled scratch arena -- capacity present, zero
  // fallback heap blocks -- counts as arena-warm. After each worker's first
  // request the warm fraction should sit at 1; a drift downwards means the
  // workload outgrew the pooled capacity.
  if (result.stats.counters.value("mem.arena_bytes") != 0 &&
      result.stats.counters.value("mem.fallback_allocs") == 0) {
    obs::Registry::global().add("service.arena_warm_solves");
  }
  if (key && result.ok()) {
    std::uint64_t evicted = 0;
    impl_->cache_put(*key, result, &evicted);
    if (evicted != 0) {
      obs::Registry::global().add("service.cache_evictions", evicted);
      obs::emit(nullptr, obs::EventKind::kCounter, "service.cache_evict", *key,
                evicted);
    }
  }
  // Annotate AFTER cache_put so the cached copy stays clean -- a later hit
  // gets ITS queue wait stamped, not this request's.
  annotate(result, queue_wait_us, /*cache_hit=*/false);
  pending.promise.set_value(std::move(result));
}

std::vector<SolveResult> BatchSolver::solve_many(
    std::span<const Instance> instances, const SolveOptions& options) {
  std::vector<Submission> submissions;
  submissions.reserve(instances.size());
  for (const Instance& instance : instances) {
    SolveRequest request{instance, options};
    Submission submission = submit(std::move(request));
    if (!submission.accepted()) {
      throw std::logic_error(
          std::string("BatchSolver::solve_many: submit returned ") +
          submit_status_name(submission.status));
    }
    submissions.push_back(std::move(submission));
  }
  std::vector<SolveResult> results;
  results.reserve(submissions.size());
  for (Submission& submission : submissions) {
    results.push_back(submission.future.get());
  }
  return results;
}

BatchSolver::CacheStats BatchSolver::cache_stats() const {
  std::scoped_lock lock(impl_->cache_mutex_);
  return impl_->cache_stats_;
}

std::size_t BatchSolver::queue_depth() const {
  std::scoped_lock lock(impl_->queue_mutex_);
  return impl_->queue_.size();
}

std::vector<SolveResult> solve_many(std::span<const Instance> instances,
                                    const SolveOptions& options,
                                    std::size_t threads) {
  BatchSolverOptions service;
  service.threads = threads;
  service.queue_capacity = 0;  // one-shot: admit the whole span up front
  BatchSolver solver(service);
  return solver.solve_many(instances, options);
}

}  // namespace mpss
