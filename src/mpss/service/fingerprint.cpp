#include "mpss/service/fingerprint.hpp"

#include "mpss/util/fnv.hpp"

namespace mpss {

std::optional<std::uint64_t> solve_fingerprint(const Instance& instance,
                                               const SolveOptions& options) {
  // The power that actually measures the result: an explicit options.power
  // overrides the instance's spec (mirroring solve()'s resolution). Only a
  // custom PowerFunction without a stable identity makes the pair uncacheable;
  // a spec always has one.
  std::uint64_t power_fp;
  if (options.power == nullptr) {
    power_fp = instance.power().fingerprint();
  } else {
    power_fp = options.power->fingerprint();
    if (power_fp == 0) return std::nullopt;  // no stable identity: uncacheable
  }

  std::uint64_t state = fnv_mix(kFnvOffset, std::uint64_t{0x5eab});
  state = fnv_mix(state, static_cast<std::uint64_t>(options.engine));
  state = fnv_mix(state, power_fp);

  // Engine knobs that shape the result. Knobs of engines other than the
  // selected one are folded in too -- simpler, and distinct options structs
  // simply hash apart.
  state = fnv_mix(state, static_cast<std::uint64_t>(options.exact.removal_policy));
  state = fnv_mix(state, options.exact.ablation_seed);
  state = fnv_mix(state, static_cast<std::uint64_t>(options.exact.incremental));
  state = fnv_mix(state, options.fast_epsilon);
  state = fnv_mix(state, static_cast<std::uint64_t>(options.fast_incremental));
  state = fnv_mix(state, static_cast<std::uint64_t>(options.avr.enable_peeling));
  state = fnv_mix(state, static_cast<std::uint64_t>(options.lp_grid));
  state = fnv_mix(state, options.lp_max_speed_hint);

  // The instance's own value fingerprint folds in machines, the power spec,
  // and every job rational (core/job.cpp) -- the codec-shared identity.
  state = fnv_mix(state, instance.fingerprint());
  return state;
}

}  // namespace mpss
