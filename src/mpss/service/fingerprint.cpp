#include "mpss/service/fingerprint.hpp"

#include "mpss/util/fnv.hpp"

namespace mpss {
namespace {

std::uint64_t mix_q(std::uint64_t state, const Q& value) {
  // BigInt::hash() is representation-independent (limb decomposition), and Q's
  // invariant keeps num/den canonical, so this is a value hash of the rational.
  state = fnv_mix(state, static_cast<std::uint64_t>(value.num().hash()));
  return fnv_mix(state, static_cast<std::uint64_t>(value.den().hash()));
}

}  // namespace

std::optional<std::uint64_t> solve_fingerprint(const Instance& instance,
                                               const SolveOptions& options) {
  std::uint64_t power_fp;
  if (options.power == nullptr) {
    power_fp = 0;  // the facade default P(s) = s^3 -- a fixed, known function
  } else {
    power_fp = options.power->fingerprint();
    if (power_fp == 0) return std::nullopt;  // no stable identity: uncacheable
  }

  std::uint64_t state = fnv_mix(kFnvOffset, std::uint64_t{0x5eab});
  state = fnv_mix(state, static_cast<std::uint64_t>(options.engine));
  state = fnv_mix(state, power_fp);
  state = fnv_mix(state, static_cast<std::uint64_t>(instance.machines()));

  // Engine knobs that shape the result. Knobs of engines other than the
  // selected one are folded in too -- simpler, and distinct options structs
  // simply hash apart.
  state = fnv_mix(state, static_cast<std::uint64_t>(options.exact.removal_policy));
  state = fnv_mix(state, options.exact.ablation_seed);
  state = fnv_mix(state, static_cast<std::uint64_t>(options.exact.incremental));
  state = fnv_mix(state, options.fast_epsilon);
  state = fnv_mix(state, static_cast<std::uint64_t>(options.fast_incremental));
  state = fnv_mix(state, static_cast<std::uint64_t>(options.avr.enable_peeling));
  state = fnv_mix(state, static_cast<std::uint64_t>(options.lp_grid));
  state = fnv_mix(state, options.lp_max_speed_hint);

  state = fnv_mix(state, static_cast<std::uint64_t>(instance.size()));
  for (const Job& job : instance.jobs()) {
    state = mix_q(state, job.release);
    state = mix_q(state, job.deadline);
    state = mix_q(state, job.work);
  }
  return state;
}

}  // namespace mpss
