#pragma once
// Canonical (instance, options) fingerprint for the BatchSolver result cache
// (S44, see DESIGN.md).
//
// Two solve() calls with equal fingerprints must produce equal results, so the
// fingerprint folds in everything a result depends on: the normalized jobs
// (mpss::Q is kept canonical -- den > 0, gcd 1 -- so hashing num/den is
// representation-independent), the machine count, the engine, the power
// function's value identity, and every engine knob that shapes the output.
// Execution context that does NOT change the result -- the trace sink, the
// cancel token -- is deliberately excluded.

#include <cstdint>
#include <optional>

#include "mpss/core/job.hpp"
#include "mpss/solve.hpp"

namespace mpss {

/// FNV-1a fingerprint of the solve, or nullopt when the pair has no stable
/// value identity (a custom PowerFunction whose fingerprint() returns 0) --
/// the cache skips such requests rather than risk a false hit.
[[nodiscard]] std::optional<std::uint64_t> solve_fingerprint(
    const Instance& instance, const SolveOptions& options);

}  // namespace mpss
