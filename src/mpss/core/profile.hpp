#pragma once
// Exact piecewise-constant step functions over time (substrate S36).
//
// Speed profiles are the natural lens on speed-scaling schedules: the aggregate
// speed of AVR(m) at time t is exactly the total active density Delta_t (the
// quantity Theorem 3's proof integrates), and comparing aggregate profiles of
// OPT/OA/AVR makes their different procrastination styles visible. Everything is
// exact (Q breakpoints and values), so profile identities can be asserted with
// equality in tests.

#include <cstddef>
#include <string>
#include <vector>

#include "mpss/core/schedule.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// A right-continuous piecewise-constant function of time with bounded support:
/// value 0 before the first breakpoint and after the last. Stored canonically
/// (strictly increasing breakpoints, no two consecutive equal values).
class StepFunction {
 public:
  /// The zero function.
  StepFunction() = default;

  /// From (time, value) steps: the function takes `value` from this breakpoint to
  /// the next, and 0 after `end`. Steps must have strictly increasing times, all
  /// before `end`. Throws std::invalid_argument otherwise.
  StepFunction(std::vector<std::pair<Q, Q>> steps, Q end);

  /// Value at time t (0 outside the support).
  [[nodiscard]] Q at(const Q& t) const;

  /// Integral over all time (sum of value * segment length).
  [[nodiscard]] Q integral() const;

  /// Integral of pow(value, alpha) in double (the energy of a one-machine
  /// schedule following this speed profile).
  [[nodiscard]] double power_integral(double alpha) const;

  /// Maximum value attained (0 for the zero function).
  [[nodiscard]] Q maximum() const;

  /// Pointwise sum.
  [[nodiscard]] StepFunction plus(const StepFunction& other) const;

  /// Breakpoints (including the end of the support), for iteration/plotting.
  [[nodiscard]] const std::vector<Q>& breakpoints() const { return points_; }
  /// values()[i] holds on [breakpoints()[i], breakpoints()[i+1]).
  [[nodiscard]] const std::vector<Q>& values() const { return values_; }

  /// "t0:v0 t1:v1 ... tn" textual form (tests, debugging).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const StepFunction&, const StepFunction&) = default;

 private:
  void canonicalize();

  std::vector<Q> points_;  // size = values_.size() + 1 (or both empty)
  std::vector<Q> values_;
};

/// Speed profile of one machine of the schedule (0 while idle).
[[nodiscard]] StepFunction machine_speed_profile(const Schedule& schedule,
                                                 std::size_t machine);

/// Aggregate speed profile: sum of all machine speeds over time.
[[nodiscard]] StepFunction aggregate_speed_profile(const Schedule& schedule);

/// Number of busy machines over time.
[[nodiscard]] StepFunction parallelism_profile(const Schedule& schedule);

}  // namespace mpss
