#pragma once
// McNaughton wrap-around packing (substrate S7, see DESIGN.md).
//
// Both the Lemma 2 construction and AVR(m) (Fig. 3 of the paper) build, within one
// interval, a *sequential* working schedule (a concatenation of per-job execution
// chunks) and split it across the reserved processors by assigning time window
// [(mu-1)*|I_j|, mu*|I_j|) of the sequence to processor mu. A chunk split across
// the boundary runs at the *end* of processor mu and the *beginning* of mu+1;
// because each chunk is at most |I_j| long, the two pieces never overlap in time,
// so the no-simultaneous-execution constraint survives the wrap.

#include <cstddef>
#include <span>

#include "mpss/core/schedule.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// One job's execution chunk within an interval.
struct Chunk {
  std::size_t job;
  Q duration;  // processing time inside the interval; must be <= interval length
};

/// Packs `chunks` (a sequential working schedule, in order) into the time window
/// [start, start + length) on machines [first_machine, first_machine + machine_count)
/// of `schedule`, all at the given constant `speed`.
///
/// Requirements (checked): every chunk duration in (0, length], and the total
/// duration at most machine_count * length. Chunks of zero duration are skipped.
void mcnaughton_pack(Schedule& schedule, const Q& start, const Q& length,
                     std::size_t first_machine, std::size_t machine_count,
                     const Q& speed, std::span<const Chunk> chunks);

}  // namespace mpss
