#include "mpss/core/power.hpp"

#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "mpss/util/error.hpp"
#include "mpss/util/fnv.hpp"

namespace mpss {

AlphaPower::AlphaPower(double alpha) : alpha_(alpha) {
  check_arg(alpha > 1.0, "AlphaPower: alpha must be > 1");
}

double AlphaPower::power(double speed) const { return std::pow(speed, alpha_); }

std::string AlphaPower::name() const {
  std::ostringstream os;
  os << "s^" << alpha_;
  return os.str();
}

std::uint64_t AlphaPower::fingerprint() const {
  return fnv_mix(fnv_mix(kFnvOffset, std::uint64_t{1}), alpha_);
}

PiecewiseLinearPower::PiecewiseLinearPower(std::vector<Point> points)
    : points_(std::move(points)) {
  check_arg(points_.size() >= 2, "PiecewiseLinearPower: need >= 2 breakpoints");
  double previous_slope = -1.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    check_arg(points_[i].speed > points_[i - 1].speed,
              "PiecewiseLinearPower: speeds must strictly increase");
    check_arg(points_[i].power >= points_[i - 1].power,
              "PiecewiseLinearPower: powers must be non-decreasing");
    double slope = (points_[i].power - points_[i - 1].power) /
                   (points_[i].speed - points_[i - 1].speed);
    check_arg(slope >= previous_slope - 1e-12,
              "PiecewiseLinearPower: slopes must be non-decreasing (convexity)");
    previous_slope = slope;
  }
}

double PiecewiseLinearPower::power(double speed) const {
  if (speed <= points_.front().speed) return points_.front().power;
  std::size_t hi = 1;
  while (hi + 1 < points_.size() && points_[hi].speed < speed) ++hi;
  const Point& a = points_[hi - 1];
  const Point& b = points_[hi];
  double t = (speed - a.speed) / (b.speed - a.speed);
  return a.power + t * (b.power - a.power);  // extrapolates for speed > last point
}

std::string PiecewiseLinearPower::name() const {
  std::ostringstream os;
  os << "piecewise[" << points_.size() << "]";
  return os.str();
}

std::uint64_t PiecewiseLinearPower::fingerprint() const {
  std::uint64_t state = fnv_mix(kFnvOffset, std::uint64_t{2});
  state = fnv_mix(state, static_cast<std::uint64_t>(points_.size()));
  for (const Point& point : points_) {
    state = fnv_mix(state, point.speed);
    state = fnv_mix(state, point.power);
  }
  return state;
}

CubicPlusLeakagePower::CubicPlusLeakagePower(double cubic, double linear, double constant)
    : cubic_(cubic), linear_(linear), constant_(constant) {
  check_arg(cubic >= 0 && linear >= 0 && constant >= 0,
            "CubicPlusLeakagePower: coefficients must be non-negative");
}

double CubicPlusLeakagePower::power(double speed) const {
  return cubic_ * speed * speed * speed + linear_ * speed + constant_;
}

std::string CubicPlusLeakagePower::name() const {
  std::ostringstream os;
  os << cubic_ << "*s^3+" << linear_ << "*s+" << constant_;
  return os.str();
}

std::uint64_t CubicPlusLeakagePower::fingerprint() const {
  std::uint64_t state = fnv_mix(kFnvOffset, std::uint64_t{3});
  state = fnv_mix(state, cubic_);
  state = fnv_mix(state, linear_);
  return fnv_mix(state, constant_);
}

PowerSpec PowerSpec::alpha(double alpha) {
  (void)AlphaPower(alpha);  // validate now, not at solve time
  PowerSpec spec;
  spec.kind_ = Kind::kAlpha;
  spec.params_[0] = alpha;
  return spec;
}

PowerSpec PowerSpec::piecewise(std::vector<PiecewiseLinearPower::Point> points) {
  (void)PiecewiseLinearPower(points);
  PowerSpec spec;
  spec.kind_ = Kind::kPiecewise;
  spec.points_ = std::move(points);
  return spec;
}

PowerSpec PowerSpec::cubic_leakage(double cubic, double linear, double constant) {
  (void)CubicPlusLeakagePower(cubic, linear, constant);
  PowerSpec spec;
  spec.kind_ = Kind::kCubicLeakage;
  spec.params_[0] = cubic;
  spec.params_[1] = linear;
  spec.params_[2] = constant;
  return spec;
}

std::unique_ptr<PowerFunction> PowerSpec::instantiate() const {
  switch (kind_) {
    case Kind::kDefault: return std::make_unique<AlphaPower>(3.0);
    case Kind::kAlpha: return std::make_unique<AlphaPower>(params_[0]);
    case Kind::kPiecewise: return std::make_unique<PiecewiseLinearPower>(points_);
    case Kind::kCubicLeakage:
      return std::make_unique<CubicPlusLeakagePower>(params_[0], params_[1],
                                                     params_[2]);
  }
  throw std::invalid_argument("PowerSpec: unknown kind");
}

std::string PowerSpec::name() const { return instantiate()->name(); }

std::uint64_t PowerSpec::fingerprint() const {
  // kDefault delegates to AlphaPower(3)'s fingerprint: equal functions, equal
  // identity, regardless of how the spec was spelled.
  return instantiate()->fingerprint();
}

const char* PowerSpec::kind_name(Kind kind) {
  switch (kind) {
    case Kind::kDefault: return "default";
    case Kind::kAlpha: return "alpha";
    case Kind::kPiecewise: return "piecewise";
    case Kind::kCubicLeakage: return "cubic_leakage";
  }
  return "unknown";
}

PowerSpec::Kind PowerSpec::kind_from_name(const std::string& name) {
  if (name == "default") return Kind::kDefault;
  if (name == "alpha") return Kind::kAlpha;
  if (name == "piecewise") return Kind::kPiecewise;
  if (name == "cubic_leakage") return Kind::kCubicLeakage;
  throw std::invalid_argument("PowerSpec: unknown kind '" + name + "'");
}

bool operator==(const PowerSpec& lhs, const PowerSpec& rhs) {
  if (lhs.kind_ != rhs.kind_) return false;
  switch (lhs.kind_) {
    case PowerSpec::Kind::kDefault: return true;
    case PowerSpec::Kind::kAlpha: return lhs.params_[0] == rhs.params_[0];
    case PowerSpec::Kind::kPiecewise: return lhs.points_ == rhs.points_;
    case PowerSpec::Kind::kCubicLeakage:
      return lhs.params_[0] == rhs.params_[0] && lhs.params_[1] == rhs.params_[1] &&
             lhs.params_[2] == rhs.params_[2];
  }
  return false;
}

}  // namespace mpss
