#include "mpss/core/power.hpp"

#include <cmath>
#include <cstdint>
#include <sstream>

#include "mpss/util/error.hpp"
#include "mpss/util/fnv.hpp"

namespace mpss {

AlphaPower::AlphaPower(double alpha) : alpha_(alpha) {
  check_arg(alpha > 1.0, "AlphaPower: alpha must be > 1");
}

double AlphaPower::power(double speed) const { return std::pow(speed, alpha_); }

std::string AlphaPower::name() const {
  std::ostringstream os;
  os << "s^" << alpha_;
  return os.str();
}

std::uint64_t AlphaPower::fingerprint() const {
  return fnv_mix(fnv_mix(kFnvOffset, std::uint64_t{1}), alpha_);
}

PiecewiseLinearPower::PiecewiseLinearPower(std::vector<Point> points)
    : points_(std::move(points)) {
  check_arg(points_.size() >= 2, "PiecewiseLinearPower: need >= 2 breakpoints");
  double previous_slope = -1.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    check_arg(points_[i].speed > points_[i - 1].speed,
              "PiecewiseLinearPower: speeds must strictly increase");
    check_arg(points_[i].power >= points_[i - 1].power,
              "PiecewiseLinearPower: powers must be non-decreasing");
    double slope = (points_[i].power - points_[i - 1].power) /
                   (points_[i].speed - points_[i - 1].speed);
    check_arg(slope >= previous_slope - 1e-12,
              "PiecewiseLinearPower: slopes must be non-decreasing (convexity)");
    previous_slope = slope;
  }
}

double PiecewiseLinearPower::power(double speed) const {
  if (speed <= points_.front().speed) return points_.front().power;
  std::size_t hi = 1;
  while (hi + 1 < points_.size() && points_[hi].speed < speed) ++hi;
  const Point& a = points_[hi - 1];
  const Point& b = points_[hi];
  double t = (speed - a.speed) / (b.speed - a.speed);
  return a.power + t * (b.power - a.power);  // extrapolates for speed > last point
}

std::string PiecewiseLinearPower::name() const {
  std::ostringstream os;
  os << "piecewise[" << points_.size() << "]";
  return os.str();
}

std::uint64_t PiecewiseLinearPower::fingerprint() const {
  std::uint64_t state = fnv_mix(kFnvOffset, std::uint64_t{2});
  state = fnv_mix(state, static_cast<std::uint64_t>(points_.size()));
  for (const Point& point : points_) {
    state = fnv_mix(state, point.speed);
    state = fnv_mix(state, point.power);
  }
  return state;
}

CubicPlusLeakagePower::CubicPlusLeakagePower(double cubic, double linear, double constant)
    : cubic_(cubic), linear_(linear), constant_(constant) {
  check_arg(cubic >= 0 && linear >= 0 && constant >= 0,
            "CubicPlusLeakagePower: coefficients must be non-negative");
}

double CubicPlusLeakagePower::power(double speed) const {
  return cubic_ * speed * speed * speed + linear_ * speed + constant_;
}

std::string CubicPlusLeakagePower::name() const {
  std::ostringstream os;
  os << cubic_ << "*s^3+" << linear_ << "*s+" << constant_;
  return os.str();
}

std::uint64_t CubicPlusLeakagePower::fingerprint() const {
  std::uint64_t state = fnv_mix(kFnvOffset, std::uint64_t{3});
  state = fnv_mix(state, cubic_);
  state = fnv_mix(state, linear_);
  return fnv_mix(state, constant_);
}

}  // namespace mpss
