#pragma once
// Schedule metrics: how much preemption and migration a schedule actually uses.
//
// The paper's headline is that *allowing* migration makes the offline problem
// polynomial -- but it never quantifies how much migration optimal schedules
// perform. These metrics answer that empirically (exp_migration_value reports
// them next to the energy gaps).

#include <cstddef>
#include <vector>

#include "mpss/core/schedule.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

struct ScheduleMetrics {
  /// Number of jobs with at least one slice.
  std::size_t scheduled_jobs = 0;
  /// Total execution segments after merging back-to-back slices of the same job
  /// on the same machine at the same speed (i.e. visible dispatcher actions).
  std::size_t segments = 0;
  /// Preemptions: times a job stops while unfinished and resumes later
  /// (segments - scheduled_jobs, counting each job's extra segments).
  std::size_t preemptions = 0;
  /// Migrations: times a job resumes on a *different* machine than it last ran on
  /// (a subset of preemptions, plus immediate machine switches).
  std::size_t migrations = 0;
  /// Jobs that use more than one machine over their lifetime.
  std::size_t migrated_jobs = 0;
  /// Total busy machine-time.
  Q busy_time;
  /// Busy time of the busiest machine.
  Q peak_machine_time;
};

/// Computes the metrics. Slices are first normalized by merging slices of the
/// same job that are adjacent in time on the same machine at the same speed, so
/// artifacts of how a schedule was assembled do not inflate the counts.
[[nodiscard]] ScheduleMetrics schedule_metrics(const Schedule& schedule);

}  // namespace mpss
