#pragma once
// The Yao-Demers-Shenker single-processor optimal algorithm [15] (substrate S9).
//
// Classic critical-interval peeling: repeatedly find the interval [t, t') of
// maximum intensity g = W(t, t') / (t' - t), where W(t, t') is the total work of
// jobs whose windows lie inside [t, t']; schedule those jobs EDF at speed g inside
// the interval; contract the interval out of the timeline and recurse on the rest.
//
// Role in this repo: (a) the m = 1 baseline the paper builds on, (b) an *oracle*
// for the multi-processor algorithm -- for m = 1 both must produce schedules of
// identical energy, (c) the per-machine engine of the non-migratory baselines.

#include <cstddef>
#include <vector>

#include "mpss/core/job.hpp"
#include "mpss/core/schedule.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// Output of YDS. The schedule occupies one machine; `job_speed[k]` is the constant
/// speed of job k (0 for zero-work jobs); `iterations` counts critical intervals.
struct YdsResult {
  Schedule schedule;
  std::vector<Q> job_speed;
  std::size_t iterations = 0;
};

/// Computes the energy-optimal single-processor schedule. The instance's machine
/// count must be 1 (throws std::invalid_argument otherwise, to catch callers that
/// meant optimal_schedule).
[[nodiscard]] YdsResult yds_schedule(const Instance& instance);

/// Feasibly schedules `jobs` on ONE machine at constant speed `speed` using
/// earliest-deadline-first, restricted to windows [release, deadline). The caller
/// guarantees feasibility (for every [x, y]: contained work <= speed * (y - x));
/// violations raise InternalError. Job indices in the returned slices refer to
/// positions in `jobs`. Exposed for reuse (YDS, non-migratory baselines) and
/// direct testing.
[[nodiscard]] std::vector<Slice> edf_at_constant_speed(const std::vector<Job>& jobs,
                                                       const Q& speed);

}  // namespace mpss
