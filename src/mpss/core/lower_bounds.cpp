#include "mpss/core/lower_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "mpss/core/intervals.hpp"
#include "mpss/core/yds.hpp"

namespace mpss {

double density_lower_bound(const Instance& instance, const PowerFunction& p) {
  double total = 0.0;
  for (const Job& job : instance.jobs()) {
    if (job.work.sign() > 0) {
      total += p.power(job.density().to_double()) * job.window().to_double();
    }
  }
  return total;
}

double aggregation_lower_bound(const Instance& instance, double alpha) {
  if (instance.jobs().empty()) return 0.0;
  AlphaPower p(alpha);
  double single = yds_schedule(instance.with_machines(1)).schedule.energy(p);
  return std::pow(static_cast<double>(instance.machines()), 1.0 - alpha) * single;
}

double interval_load_lower_bound(const Instance& instance, const PowerFunction& p) {
  IntervalDecomposition intervals(instance.jobs());
  const std::size_t count = intervals.count();
  if (count == 0) return 0.0;
  const double m = static_cast<double>(instance.machines());
  double best = 0.0;
  for (std::size_t a = 0; a < count; ++a) {
    for (std::size_t b = a; b < count; ++b) {
      const Q& lo = intervals.start(a);
      const Q& hi = intervals.end(b);
      Q contained;
      for (const Job& job : instance.jobs()) {
        if (lo <= job.release && job.deadline <= hi) contained += job.work;
      }
      if (contained.is_zero()) continue;
      double span = (hi - lo).to_double();
      double average_speed = contained.to_double() / (m * span);
      best = std::max(best, m * span * p.power(average_speed));
    }
  }
  return best;
}

double best_lower_bound(const Instance& instance, const PowerFunction& p,
                        double alpha) {
  double best = std::max(density_lower_bound(instance, p),
                         interval_load_lower_bound(instance, p));
  if (alpha > 1.0) best = std::max(best, aggregation_lower_bound(instance, alpha));
  return best;
}

}  // namespace mpss
