#include "mpss/core/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "mpss/util/error.hpp"

namespace mpss {

Schedule::Schedule(std::size_t machines) : machines_(machines) {
  check_arg(machines >= 1, "Schedule: machine count must be >= 1");
}

std::size_t Schedule::slice_count() const {
  std::size_t total = 0;
  for (const auto& machine : machines_) total += machine.size();
  return total;
}

void Schedule::add(std::size_t machine, Slice slice) {
  check_arg(machine < machines_.size(), "Schedule::add: machine index out of range");
  check_arg(slice.start < slice.end, "Schedule::add: slice needs start < end");
  check_arg(slice.speed.sign() > 0, "Schedule::add: slice speed must be positive");
  machines_[machine].push_back(std::move(slice));
  sorted_ = false;
}

void Schedule::ensure_sorted() const {
  if (sorted_) return;
  for (auto& machine : machines_) {
    std::sort(machine.begin(), machine.end(),
              [](const Slice& a, const Slice& b) { return a.start < b.start; });
  }
  sorted_ = true;
}

std::span<const Slice> Schedule::machine(std::size_t index) const {
  check_arg(index < machines_.size(), "Schedule::machine: index out of range");
  ensure_sorted();
  return machines_[index];
}

std::vector<Slice> Schedule::slices_of(std::size_t job) const {
  std::vector<Slice> out;
  for (const auto& machine : machines_) {
    for (const Slice& slice : machine) {
      if (slice.job == job) out.push_back(slice);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Slice& a, const Slice& b) { return a.start < b.start; });
  return out;
}

Q Schedule::work_on(std::size_t job) const {
  Q total;
  for (const auto& machine : machines_) {
    for (const Slice& slice : machine) {
      if (slice.job == job) total += slice.work();
    }
  }
  return total;
}

Q Schedule::work_on_in(std::size_t job, const Q& t0, const Q& t1) const {
  Q total;
  for (const auto& machine : machines_) {
    for (const Slice& slice : machine) {
      if (slice.job != job) continue;
      const Q& lo = max(slice.start, t0);
      const Q& hi = min(slice.end, t1);
      if (lo < hi) total += slice.speed * (hi - lo);
    }
  }
  return total;
}

Schedule Schedule::clipped(const Q& t0, const Q& t1) const {
  Schedule out(machines_.size());
  for (std::size_t machine = 0; machine < machines_.size(); ++machine) {
    for (const Slice& slice : machines_[machine]) {
      Q lo = max(slice.start, t0);
      Q hi = min(slice.end, t1);
      if (lo < hi) out.add(machine, Slice{std::move(lo), std::move(hi), slice.speed, slice.job});
    }
  }
  return out;
}

void Schedule::merge(const Schedule& other) {
  check_arg(other.machines_.size() == machines_.size(),
            "Schedule::merge: machine counts differ");
  for (std::size_t machine = 0; machine < machines_.size(); ++machine) {
    for (const Slice& slice : other.machines_[machine]) {
      machines_[machine].push_back(slice);
    }
  }
  sorted_ = false;
}

double Schedule::energy(const PowerFunction& p) const {
  double total = 0.0;
  for (const auto& machine : machines_) {
    for (const Slice& slice : machine) {
      total += p.power(slice.speed.to_double()) * slice.duration().to_double();
    }
  }
  return total;
}

double Schedule::energy_with_idle(const PowerFunction& p, const Q& t0, const Q& t1) const {
  check_arg(t0 <= t1, "Schedule::energy_with_idle: t0 must be <= t1");
  double idle_power = p.power(0.0);
  double busy_energy = 0.0;
  Q busy_time;
  for (const auto& machine : machines_) {
    for (const Slice& slice : machine) {
      busy_energy += p.power(slice.speed.to_double()) * slice.duration().to_double();
      busy_time += slice.duration();
    }
  }
  Q horizon = (t1 - t0) * Q(static_cast<std::int64_t>(machines_.size()));
  return busy_energy + idle_power * (horizon - busy_time).to_double();
}

std::vector<Q> Schedule::speeds_at(const Q& t) const {
  std::vector<Q> speeds(machines_.size(), Q(0));
  for (std::size_t machine = 0; machine < machines_.size(); ++machine) {
    for (const Slice& slice : machines_[machine]) {
      if (slice.start <= t && t < slice.end) {
        speeds[machine] = slice.speed;
        break;
      }
    }
  }
  return speeds;
}

Q Schedule::max_speed() const {
  Q best(0);
  for (const auto& machine : machines_) {
    for (const Slice& slice : machine) best = max(best, slice.speed);
  }
  return best;
}

void FeasibilityReport::fail(std::string message) {
  feasible = false;
  if (violations.size() < kMaxViolations) violations.push_back(std::move(message));
}

FeasibilityReport check_schedule(const Instance& instance, const Schedule& schedule) {
  FeasibilityReport report;
  if (schedule.machines() > instance.machines()) {
    std::ostringstream os;
    os << "schedule uses " << schedule.machines() << " machines but instance has "
       << instance.machines();
    report.fail(os.str());
  }

  // Per-machine: window containment, job validity, machine-local overlap.
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    auto slices = schedule.machine(machine);
    for (std::size_t i = 0; i < slices.size(); ++i) {
      const Slice& slice = slices[i];
      if (slice.job >= instance.size()) {
        std::ostringstream os;
        os << "machine " << machine << ": slice references unknown job " << slice.job;
        report.fail(os.str());
        continue;
      }
      const Job& job = instance.job(slice.job);
      if (slice.start < job.release || job.deadline < slice.end) {
        std::ostringstream os;
        os << "job " << slice.job << " runs in [" << slice.start << "," << slice.end
           << ") outside its window [" << job.release << "," << job.deadline << ")";
        report.fail(os.str());
      }
      if (i + 1 < slices.size() && slices[i + 1].start < slice.end) {
        std::ostringstream os;
        os << "machine " << machine << ": slices overlap at t=" << slices[i + 1].start;
        report.fail(os.str());
      }
    }
  }

  // Per-job: exact work completion and no simultaneous execution on two machines.
  for (std::size_t job_index = 0; job_index < instance.size(); ++job_index) {
    const Job& job = instance.job(job_index);
    Q done = schedule.work_on(job_index);
    if (done != job.work) {
      std::ostringstream os;
      os << "job " << job_index << " received work " << done << " != required "
         << job.work;
      report.fail(os.str());
    }
    auto slices = schedule.slices_of(job_index);
    for (std::size_t i = 0; i + 1 < slices.size(); ++i) {
      if (slices[i + 1].start < slices[i].end) {
        std::ostringstream os;
        os << "job " << job_index << " runs on two machines simultaneously at t="
           << slices[i + 1].start;
        report.fail(os.str());
      }
    }
  }
  return report;
}

std::size_t count_violations(const Instance& instance, const Schedule& schedule) {
  return check_schedule(instance, schedule).violations.size();
}

}  // namespace mpss
