#pragma once
// Schedule normal forms (the transformations behind Lemmas 2 and 6 of the paper,
// packaged as reusable operations on arbitrary feasible schedules).
//
// lemma2_normal_form: within every atomic interval, rebuild the schedule as the
// paper's Lemma 2 does -- concatenate per-job execution chunks grouped by speed
// into a sequential working schedule and McNaughton-wrap it -- so that every
// processor runs at ONE constant speed inside every atomic interval, and faster
// groups occupy lower machine indices (which, for common-release instances, is
// exactly Lemma 6's sorted form). Feasibility and energy are preserved exactly.
//
// Precondition (from Lemma 1, which Lemma 2 builds on): within any single atomic
// interval, each job runs at one constant speed. Every schedule this library
// produces satisfies it; arbitrary hand-built schedules may not, in which case
// std::invalid_argument is thrown.

#include "mpss/core/job.hpp"
#include "mpss/core/schedule.hpp"

namespace mpss {

/// Rearranges `schedule` into the Lemma 2 / Lemma 6 normal form described above.
/// The result completes exactly the same work per job per interval at the same
/// speeds (hence identical energy under every power function) and passes
/// check_schedule whenever the input does.
[[nodiscard]] Schedule lemma2_normal_form(const Instance& instance,
                                          const Schedule& schedule);

/// True iff every processor uses at most one speed within every atomic interval
/// of the instance (the Lemma 2 property). Exposed for tests and diagnostics.
[[nodiscard]] bool has_constant_interval_speeds(const Instance& instance,
                                                const Schedule& schedule);

}  // namespace mpss
