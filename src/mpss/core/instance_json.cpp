#include "mpss/core/instance_json.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "mpss/util/error.hpp"

namespace mpss {
namespace {

Q q_from_json(const json::Value& value, const char* field) {
  if (!value.is_string()) {
    throw std::invalid_argument(std::string("instance_from_json: ") + field +
                                " must be a rational string (\"a\" or \"a/b\")");
  }
  try {
    return Q::from_string(value.as_string());
  } catch (const std::domain_error& error) {  // zero denominator
    throw std::invalid_argument(std::string("instance_from_json: bad ") + field +
                                ": " + error.what());
  }
}

}  // namespace

json::Value power_spec_to_json_value(const PowerSpec& spec) {
  json::Value out;
  out.set("kind", PowerSpec::kind_name(spec.kind()));
  switch (spec.kind()) {
    case PowerSpec::Kind::kDefault: break;
    case PowerSpec::Kind::kAlpha:
      out.set("alpha", spec.alpha_value());
      break;
    case PowerSpec::Kind::kPiecewise: {
      json::Array points;
      points.reserve(spec.points().size());
      for (const PiecewiseLinearPower::Point& point : spec.points()) {
        points.push_back(json::Array{json::Value(point.speed),
                                     json::Value(point.power)});
      }
      out.set("points", std::move(points));
      break;
    }
    case PowerSpec::Kind::kCubicLeakage:
      out.set("cubic", spec.cubic());
      out.set("linear", spec.linear());
      out.set("constant", spec.constant());
      break;
  }
  return out;
}

PowerSpec power_spec_from_json_value(const json::Value& value) {
  PowerSpec::Kind kind = PowerSpec::kind_from_name(value.at("kind").as_string());
  switch (kind) {
    case PowerSpec::Kind::kDefault: return PowerSpec{};
    case PowerSpec::Kind::kAlpha:
      return PowerSpec::alpha(value.at("alpha").as_double());
    case PowerSpec::Kind::kPiecewise: {
      std::vector<PiecewiseLinearPower::Point> points;
      for (const json::Value& element : value.at("points").as_array()) {
        const json::Array& pair = element.as_array();
        check_arg(pair.size() == 2,
                  "power_spec_from_json: points must be [speed, power] pairs");
        points.push_back({pair[0].as_double(), pair[1].as_double()});
      }
      return PowerSpec::piecewise(std::move(points));
    }
    case PowerSpec::Kind::kCubicLeakage:
      return PowerSpec::cubic_leakage(value.at("cubic").as_double(),
                                      value.at("linear").as_double(),
                                      value.at("constant").as_double());
  }
  throw std::invalid_argument("power_spec_from_json: unknown kind");
}

json::Value instance_to_json_value(const Instance& instance) {
  json::Value out;
  out.set("mpss_instance", kInstanceJsonVersion);
  out.set("machines", instance.machines());
  out.set("power", power_spec_to_json_value(instance.power()));
  json::Array jobs;
  jobs.reserve(instance.size());
  for (const Job& job : instance.jobs()) {
    jobs.push_back(json::Array{json::Value(job.release.to_string()),
                               json::Value(job.deadline.to_string()),
                               json::Value(job.work.to_string())});
  }
  out.set("jobs", std::move(jobs));
  return out;
}

Instance instance_from_json_value(const json::Value& value) {
  double version = value.at("mpss_instance").as_double();
  check_arg(version == static_cast<double>(kInstanceJsonVersion),
            "instance_from_json: unsupported mpss_instance version");
  double machines_raw = value.at("machines").as_double();
  // Bound BEFORE casting: double -> size_t on a value past the integer range
  // (an attacker's "machines": 1e300, or inf) is undefined behavior, so the
  // old `raw == cast(raw)` round-trip check was itself the bug. 2^53 is where
  // doubles stop holding integers exactly; no instance is near that.
  constexpr double kMaxMachines = 9007199254740992.0;  // 2^53
  check_arg(machines_raw >= 1.0 && machines_raw <= kMaxMachines &&
                machines_raw == std::floor(machines_raw),
            "instance_from_json: machines must be a positive integer");
  auto machines = static_cast<std::size_t>(machines_raw);

  PowerSpec power;  // "power" is optional on input; absent means the default
  if (const json::Value* spec = value.find("power")) {
    power = power_spec_from_json_value(*spec);
  }

  std::vector<Job> jobs;
  const json::Array& rows = value.at("jobs").as_array();
  jobs.reserve(rows.size());
  for (const json::Value& row : rows) {
    const json::Array& fields = row.as_array();
    check_arg(fields.size() == 3,
              "instance_from_json: jobs must be [release, deadline, work] triples");
    jobs.push_back(Job{q_from_json(fields[0], "release"),
                       q_from_json(fields[1], "deadline"),
                       q_from_json(fields[2], "work")});
  }
  return Instance(std::move(jobs), machines, std::move(power));
}

std::string instance_to_json(const Instance& instance) {
  return json::serialize(instance_to_json_value(instance));
}

Instance instance_from_json(std::string_view text) {
  return instance_from_json_value(json::parse(text));
}

}  // namespace mpss
