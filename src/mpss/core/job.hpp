#pragma once
// Job and problem-instance model (substrate S5, see DESIGN.md).
//
// The paper's setting: n jobs, job J_i = (r_i, d_i, w_i), m identical variable-speed
// processors, preemption + migration allowed, no job ever on two processors at once.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mpss/core/power.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// One job: must receive `work` units of processing inside [release, deadline).
struct Job {
  Q release;
  Q deadline;
  Q work;

  [[nodiscard]] Q window() const { return deadline - release; }

  /// Density delta_i = w_i / (d_i - r_i), the job's average required speed if it
  /// were spread over its whole window (the quantity AVR balances).
  [[nodiscard]] Q density() const { return work / window(); }

  friend bool operator==(const Job&, const Job&) = default;
};

/// A problem instance: the job sequence sigma = J_1, ..., J_n, the number of
/// processors m, and the power spec energy is measured under (S45). Jobs are
/// addressed by their index in `jobs`. An Instance is a first-class value: it
/// has equality, a stable fingerprint, and a canonical serialized form
/// (core/instance_json.hpp), so the same object is the currency of solve(),
/// the BatchSolver cache, the corpus files, and the wire protocol.
class Instance {
 public:
  /// Validates: machines >= 1; every job has release < deadline and work >= 0.
  /// Throws std::invalid_argument on violation. The default power spec is the
  /// library's P(s) = s^3.
  Instance(std::vector<Job> jobs, std::size_t machines,
           PowerSpec power = PowerSpec{});

  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }
  [[nodiscard]] const Job& job(std::size_t index) const { return jobs_.at(index); }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] std::size_t machines() const { return machines_; }

  [[nodiscard]] Q total_work() const;

  /// Earliest release over all jobs (0 when empty).
  [[nodiscard]] Q horizon_start() const;
  /// Latest deadline over all jobs (0 when empty).
  [[nodiscard]] Q horizon_end() const;

  /// True when every release and deadline is an integer (required by AVR(m), which
  /// operates on unit intervals).
  [[nodiscard]] bool has_integral_times() const;

  /// Returns a copy with all times and works multiplied by the smallest positive
  /// integer that makes every release/deadline integral. Energy scales by a known
  /// factor, but competitive *ratios* are invariant under this rescaling.
  [[nodiscard]] Instance scaled_to_integral_times() const;

  /// Returns a copy with a different machine count (same jobs, same power).
  [[nodiscard]] Instance with_machines(std::size_t machines) const;

  /// The power spec energy is measured under. solve() instantiates it unless
  /// the caller overrides with an explicit SolveOptions::power.
  [[nodiscard]] const PowerSpec& power() const { return power_; }

  /// Returns a copy with a different power spec (same jobs, same machines).
  [[nodiscard]] Instance with_power(PowerSpec power) const;

  /// Stable FNV-1a value fingerprint over machines, power spec, and the jobs'
  /// exact rationals (representation-independent: Q is kept canonical). Equal
  /// instances fingerprint equally across processes and releases; the result
  /// cache and the wire protocol key on it.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Human-readable one-line summary ("n=12 m=4 horizon=[0,30)").
  [[nodiscard]] std::string summary() const;

  friend bool operator==(const Instance& lhs, const Instance& rhs) {
    return lhs.machines_ == rhs.machines_ && lhs.jobs_ == rhs.jobs_ &&
           lhs.power_ == rhs.power_;
  }

 private:
  std::vector<Job> jobs_;
  std::size_t machines_;
  PowerSpec power_;
};

}  // namespace mpss
