#pragma once
// Job and problem-instance model (substrate S5, see DESIGN.md).
//
// The paper's setting: n jobs, job J_i = (r_i, d_i, w_i), m identical variable-speed
// processors, preemption + migration allowed, no job ever on two processors at once.

#include <cstddef>
#include <string>
#include <vector>

#include "mpss/util/rational.hpp"

namespace mpss {

/// One job: must receive `work` units of processing inside [release, deadline).
struct Job {
  Q release;
  Q deadline;
  Q work;

  [[nodiscard]] Q window() const { return deadline - release; }

  /// Density delta_i = w_i / (d_i - r_i), the job's average required speed if it
  /// were spread over its whole window (the quantity AVR balances).
  [[nodiscard]] Q density() const { return work / window(); }

  friend bool operator==(const Job&, const Job&) = default;
};

/// A problem instance: the job sequence sigma = J_1, ..., J_n plus the number of
/// processors m. Jobs are addressed by their index in `jobs`.
class Instance {
 public:
  /// Validates: machines >= 1; every job has release < deadline and work >= 0.
  /// Throws std::invalid_argument on violation.
  Instance(std::vector<Job> jobs, std::size_t machines);

  [[nodiscard]] const std::vector<Job>& jobs() const { return jobs_; }
  [[nodiscard]] const Job& job(std::size_t index) const { return jobs_.at(index); }
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] std::size_t machines() const { return machines_; }

  [[nodiscard]] Q total_work() const;

  /// Earliest release over all jobs (0 when empty).
  [[nodiscard]] Q horizon_start() const;
  /// Latest deadline over all jobs (0 when empty).
  [[nodiscard]] Q horizon_end() const;

  /// True when every release and deadline is an integer (required by AVR(m), which
  /// operates on unit intervals).
  [[nodiscard]] bool has_integral_times() const;

  /// Returns a copy with all times and works multiplied by the smallest positive
  /// integer that makes every release/deadline integral. Energy scales by a known
  /// factor, but competitive *ratios* are invariant under this rescaling.
  [[nodiscard]] Instance scaled_to_integral_times() const;

  /// Returns a copy with a different machine count (same jobs).
  [[nodiscard]] Instance with_machines(std::size_t machines) const;

  /// Human-readable one-line summary ("n=12 m=4 horizon=[0,30)").
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Job> jobs_;
  std::size_t machines_;
};

}  // namespace mpss
