#pragma once
// Closed-form energy lower bounds. The competitive analyses in Section 3 compare
// online energies against these quantities; the tests use them as independent
// certificates that optimal_schedule() really is optimal (no feasible schedule
// can beat a valid lower bound, so OPT must lie between the bound and every
// heuristic).

#include "mpss/core/job.hpp"
#include "mpss/core/power.hpp"

// All bounds below assume P(0) = 0 (no static power), matching the paper's model
// and Schedule::energy(); they compare Jensen-averaged speeds against per-window
// averages that count idle time as speed zero.

namespace mpss {

/// Per-job density bound: sum_i P(delta_i) * (d_i - r_i). Each job alone needs at
/// least this much energy (run at its density over its whole window; convexity
/// makes any other profile for the same work dearer). Used inside Theorem 3's
/// proof ("the minimum energy required to process J_i if no other jobs were
/// present").
[[nodiscard]] double density_lower_bound(const Instance& instance,
                                         const PowerFunction& p);

/// Aggregated-speed bound for P(s) = s^alpha: m^(1-alpha) * E^1_OPT(sigma), where
/// E^1_OPT is the optimal single-processor energy (inequality (10) in the paper).
/// Computes E^1_OPT via YDS.
[[nodiscard]] double aggregation_lower_bound(const Instance& instance, double alpha);

/// Interval-load bound: for every atomic interval I_j, the jobs whose windows lie
/// inside [tau_a, tau_b] must be processed within it on at most m machines, so by
/// convexity the energy over that span is at least
/// m * |span| * P(W(span) / (m * |span|)). Returns the best such bound over all
/// spans of atomic-interval endpoints.
[[nodiscard]] double interval_load_lower_bound(const Instance& instance,
                                               const PowerFunction& p);

/// The largest of the above bounds (using alpha only when the caller has one;
/// pass alpha <= 1 to skip the aggregation bound).
[[nodiscard]] double best_lower_bound(const Instance& instance, const PowerFunction& p,
                                      double alpha);

}  // namespace mpss
