#pragma once
// Power functions P(s) (substrate, see DESIGN.md).
//
// The paper's offline algorithm works for any convex non-decreasing P; the online
// analyses use P(s) = s^alpha with alpha > 1. Schedules are computed exactly
// (speeds are rationals chosen independently of P's values -- only convexity and
// monotonicity matter), and P is evaluated in double only when *measuring* energy.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mpss {

/// Convex non-decreasing power function interface. Implementations must satisfy
/// P(s) >= 0, P non-decreasing and convex on s >= 0; the library relies on these
/// properties but cannot verify them for arbitrary callables.
class PowerFunction {
 public:
  virtual ~PowerFunction() = default;

  /// Power drawn at speed `speed` (speed >= 0).
  [[nodiscard]] virtual double power(double speed) const = 0;

  /// Descriptive name for tables ("s^3", "piecewise[4]").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Stable value-identity fingerprint for result caching (BatchSolver keys
  /// solve results on it). Two instances with equal fingerprints must define
  /// the same function. The default 0 means "no stable identity" -- the cache
  /// skips such power functions rather than risk a false hit. The built-in
  /// implementations hash their defining parameters.
  [[nodiscard]] virtual std::uint64_t fingerprint() const { return 0; }
};

/// P(s) = s^alpha, alpha > 1: the family used throughout Section 3 of the paper
/// (generalizing the cube-root rule alpha = 3).
class AlphaPower final : public PowerFunction {
 public:
  /// Throws std::invalid_argument unless alpha > 1.
  explicit AlphaPower(double alpha);

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double power(double speed) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t fingerprint() const override;

 private:
  double alpha_;
};

/// Convex piecewise-linear power function given as breakpoints
/// (speed_0, power_0), ..., strictly increasing in speed. Evaluation extrapolates
/// the last segment beyond the final breakpoint. Used to exercise the offline
/// algorithm's "general convex non-decreasing P" claim.
class PiecewiseLinearPower final : public PowerFunction {
 public:
  struct Point {
    double speed;
    double power;

    friend bool operator==(const Point&, const Point&) = default;
  };

  /// Throws std::invalid_argument unless there are >= 2 points, speeds strictly
  /// increase, powers are non-decreasing, and slopes are non-decreasing (convex).
  explicit PiecewiseLinearPower(std::vector<Point> points);

  [[nodiscard]] double power(double speed) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t fingerprint() const override;

 private:
  std::vector<Point> points_;
};

/// P(s) = a*s^3 + b*s + c with a,b,c >= 0: a classic CMOS-flavoured model
/// (dynamic cubic term + leakage-ish linear/constant terms); convex and
/// non-decreasing for s >= 0.
class CubicPlusLeakagePower final : public PowerFunction {
 public:
  CubicPlusLeakagePower(double cubic, double linear, double constant);

  [[nodiscard]] double power(double speed) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t fingerprint() const override;

 private:
  double cubic_, linear_, constant_;
};

/// Serializable *description* of a power function -- the value-type counterpart
/// of the PowerFunction interface (S45, see DESIGN.md). A PowerFunction is a
/// callable with identity by pointer; a PowerSpec is plain data with identity
/// by value, so it can live inside an Instance, travel over the wire protocol,
/// and key the result cache. Every spec instantiates to one of the built-in
/// PowerFunction implementations; arbitrary user callables stay possible
/// through SolveOptions::power, which overrides the instance's spec.
class PowerSpec {
 public:
  enum class Kind {
    kDefault,       // P(s) = s^3, the library default
    kAlpha,         // AlphaPower(alpha)
    kPiecewise,     // PiecewiseLinearPower(points)
    kCubicLeakage,  // CubicPlusLeakagePower(cubic, linear, constant)
  };

  /// The default spec: P(s) = s^3.
  PowerSpec() = default;

  /// Factories validate eagerly by constructing the underlying PowerFunction
  /// once, so an invalid spec throws std::invalid_argument at creation, not at
  /// solve time (the same messages as the PowerFunction constructors).
  [[nodiscard]] static PowerSpec alpha(double alpha);
  [[nodiscard]] static PowerSpec piecewise(
      std::vector<PiecewiseLinearPower::Point> points);
  [[nodiscard]] static PowerSpec cubic_leakage(double cubic, double linear,
                                               double constant);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_default() const { return kind_ == Kind::kDefault; }

  /// Parameter accessors; meaningful only for the matching kind.
  [[nodiscard]] double alpha_value() const { return params_[0]; }
  [[nodiscard]] double cubic() const { return params_[0]; }
  [[nodiscard]] double linear() const { return params_[1]; }
  [[nodiscard]] double constant() const { return params_[2]; }
  [[nodiscard]] const std::vector<PiecewiseLinearPower::Point>& points() const {
    return points_;
  }

  /// Builds the described PowerFunction (kDefault -> AlphaPower(3)).
  [[nodiscard]] std::unique_ptr<PowerFunction> instantiate() const;

  /// Same naming as the instantiated function ("s^3", "piecewise[4]").
  [[nodiscard]] std::string name() const;

  /// Stable value-identity fingerprint; never 0 (a spec always has a stable
  /// identity -- that is its reason to exist). kDefault and alpha(3) fingerprint
  /// identically: they describe the same function.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Stable kind name ("default", "alpha", "piecewise", "cubic_leakage") and
  /// its inverse (nullptr-free: throws std::invalid_argument on unknown names);
  /// the JSON codec's tags.
  [[nodiscard]] static const char* kind_name(Kind kind);
  [[nodiscard]] static Kind kind_from_name(const std::string& name);

  friend bool operator==(const PowerSpec& lhs, const PowerSpec& rhs);

 private:
  Kind kind_ = Kind::kDefault;
  double params_[3] = {0.0, 0.0, 0.0};
  std::vector<PiecewiseLinearPower::Point> points_;
};

}  // namespace mpss
