#include "mpss/core/job.hpp"

#include <sstream>
#include <utility>

#include "mpss/util/error.hpp"
#include "mpss/util/fnv.hpp"

namespace mpss {

Instance::Instance(std::vector<Job> jobs, std::size_t machines, PowerSpec power)
    : jobs_(std::move(jobs)), machines_(machines), power_(std::move(power)) {
  check_arg(machines_ >= 1, "Instance: machine count must be >= 1");
  for (const Job& job : jobs_) {
    check_arg(job.release < job.deadline, "Instance: job needs release < deadline");
    check_arg(job.work.sign() >= 0, "Instance: job work must be non-negative");
  }
}

Q Instance::total_work() const {
  Q total;
  for (const Job& job : jobs_) total += job.work;
  return total;
}

Q Instance::horizon_start() const {
  if (jobs_.empty()) return Q(0);
  Q start = jobs_.front().release;
  for (const Job& job : jobs_) start = min(start, job.release);
  return start;
}

Q Instance::horizon_end() const {
  if (jobs_.empty()) return Q(0);
  Q end = jobs_.front().deadline;
  for (const Job& job : jobs_) end = max(end, job.deadline);
  return end;
}

bool Instance::has_integral_times() const {
  for (const Job& job : jobs_) {
    if (!job.release.is_integer() || !job.deadline.is_integer()) return false;
  }
  return true;
}

Instance Instance::scaled_to_integral_times() const {
  // Scale factor = lcm of all time denominators.
  BigInt scale(1);
  for (const Job& job : jobs_) {
    for (const BigInt* den : {&job.release.den(), &job.deadline.den()}) {
      BigInt g = BigInt::gcd(scale, *den);
      scale = scale / g * *den;
    }
  }
  if (scale.is_one()) return *this;
  Q factor{scale};
  std::vector<Job> scaled;
  scaled.reserve(jobs_.size());
  for (const Job& job : jobs_) {
    scaled.push_back(Job{job.release * factor, job.deadline * factor, job.work * factor});
  }
  return Instance(std::move(scaled), machines_, power_);
}

Instance Instance::with_machines(std::size_t machines) const {
  return Instance(jobs_, machines, power_);
}

Instance Instance::with_power(PowerSpec power) const {
  return Instance(jobs_, machines_, std::move(power));
}

std::uint64_t Instance::fingerprint() const {
  std::uint64_t state = fnv_mix(kFnvOffset, std::uint64_t{0x1257a9ce});
  state = fnv_mix(state, static_cast<std::uint64_t>(machines_));
  state = fnv_mix(state, power_.fingerprint());
  state = fnv_mix(state, static_cast<std::uint64_t>(jobs_.size()));
  auto mix_q = [&state](const Q& value) {
    // BigInt::hash() is representation-independent (limb decomposition) and Q
    // is kept canonical, so this hashes the rational's value, not its storage.
    state = fnv_mix(state, static_cast<std::uint64_t>(value.num().hash()));
    state = fnv_mix(state, static_cast<std::uint64_t>(value.den().hash()));
  };
  for (const Job& job : jobs_) {
    mix_q(job.release);
    mix_q(job.deadline);
    mix_q(job.work);
  }
  return state;
}

std::string Instance::summary() const {
  std::ostringstream os;
  os << "n=" << jobs_.size() << " m=" << machines_ << " horizon=[" << horizon_start()
     << "," << horizon_end() << ") W=" << total_work();
  return os.str();
}

}  // namespace mpss
