#pragma once
// Canonical JSON form of a problem Instance (S45, see DESIGN.md).
//
// One codec serves every consumer that needs an instance as text: the wire
// protocol (net/protocol.hpp), the corpus generator (tools/make_corpus), and
// the trace import/export layer (workload/traces.hpp). The encoding is
// exact-rational-safe: every time and work travels as a Q string ("a" or
// "a/b"), never as a double, so parse(serialize(x)) == x bit for bit. Power
// spec parameters are doubles serialized at max_digits10, which round-trips
// every finite double exactly.
//
// Canonical document (compact, fixed member order):
//
//   {"mpss_instance":1,
//    "machines":2,
//    "power":{"kind":"alpha","alpha":3},
//    "jobs":[["0","1/2","2/3"], ...]}      // [release, deadline, work]
//
// Power kinds: {"kind":"default"}, {"kind":"alpha","alpha":A},
// {"kind":"piecewise","points":[[s,p],...]},
// {"kind":"cubic_leakage","cubic":A,"linear":B,"constant":C}.

#include <string>
#include <string_view>

#include "mpss/core/job.hpp"
#include "mpss/util/json.hpp"

namespace mpss {

/// Version tag stamped into (and demanded from) every document.
inline constexpr int kInstanceJsonVersion = 1;

/// Document-model forms, for embedding an instance in a larger document (the
/// wire protocol's requests).
[[nodiscard]] json::Value instance_to_json_value(const Instance& instance);
[[nodiscard]] Instance instance_from_json_value(const json::Value& value);

/// PowerSpec fragment codec (shared with the protocol's options payloads).
[[nodiscard]] json::Value power_spec_to_json_value(const PowerSpec& spec);
[[nodiscard]] PowerSpec power_spec_from_json_value(const json::Value& value);

/// Text forms. instance_from_json throws std::invalid_argument on malformed
/// JSON, wrong/missing version, bad rationals, or an instance that fails
/// Instance's own validation.
[[nodiscard]] std::string instance_to_json(const Instance& instance);
[[nodiscard]] Instance instance_from_json(std::string_view text);

}  // namespace mpss
