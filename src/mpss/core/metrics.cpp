#include "mpss/core/metrics.hpp"

#include <algorithm>
#include <map>

namespace mpss {
namespace {

struct Segment {
  Q start;
  Q end;
  Q speed;
  std::size_t machine;
};

}  // namespace

ScheduleMetrics schedule_metrics(const Schedule& schedule) {
  ScheduleMetrics metrics;

  // Gather per-job segments across machines, then merge time-adjacent pieces on
  // the same machine at the same speed.
  std::map<std::size_t, std::vector<Segment>> per_job;
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    Q machine_busy;
    for (const Slice& slice : schedule.machine(machine)) {
      per_job[slice.job].push_back(Segment{slice.start, slice.end, slice.speed, machine});
      machine_busy += slice.duration();
    }
    metrics.busy_time += machine_busy;
    metrics.peak_machine_time = max(metrics.peak_machine_time, machine_busy);
  }

  for (auto& [job, segments] : per_job) {
    (void)job;
    std::sort(segments.begin(), segments.end(),
              [](const Segment& a, const Segment& b) { return a.start < b.start; });
    std::vector<Segment> merged;
    for (Segment& segment : segments) {
      if (!merged.empty() && merged.back().machine == segment.machine &&
          merged.back().speed == segment.speed && merged.back().end == segment.start) {
        merged.back().end = segment.end;
      } else {
        merged.push_back(segment);
      }
    }
    ++metrics.scheduled_jobs;
    metrics.segments += merged.size();
    metrics.preemptions += merged.size() - 1;
    bool migrated = false;
    for (std::size_t i = 1; i < merged.size(); ++i) {
      if (merged[i].machine != merged[i - 1].machine) {
        ++metrics.migrations;
        migrated = true;
      }
    }
    if (migrated) ++metrics.migrated_jobs;
  }
  return metrics;
}

}  // namespace mpss
