#include "mpss/core/profile.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "mpss/util/error.hpp"

namespace mpss {

StepFunction::StepFunction(std::vector<std::pair<Q, Q>> steps, Q end) {
  if (steps.empty()) {
    check_arg(true, "");  // zero function; `end` irrelevant
    return;
  }
  points_.reserve(steps.size() + 1);
  values_.reserve(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    check_arg(i == 0 || points_.back() < steps[i].first,
              "StepFunction: breakpoints must strictly increase");
    points_.push_back(std::move(steps[i].first));
    values_.push_back(std::move(steps[i].second));
  }
  check_arg(points_.back() < end, "StepFunction: end must follow the last step");
  points_.push_back(std::move(end));
  canonicalize();
}

void StepFunction::canonicalize() {
  // Merge equal neighbouring segments (segments are contiguous by construction),
  // then strip zero-valued segments at both ends.
  std::vector<Q> points;
  std::vector<Q> values;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (!values.empty() && values.back() == values_[i]) continue;  // extend
    points.push_back(points_[i]);
    values.push_back(values_[i]);
  }
  if (!values.empty()) points.push_back(points_.back());
  while (!values.empty() && values.front().is_zero()) {
    values.erase(values.begin());
    points.erase(points.begin());
  }
  while (!values.empty() && values.back().is_zero()) {
    values.pop_back();
    points.pop_back();
  }
  if (values.empty()) points.clear();
  points_ = std::move(points);
  values_ = std::move(values);
}

Q StepFunction::at(const Q& t) const {
  if (points_.empty() || t < points_.front() || !(t < points_.back())) return Q(0);
  auto it = std::upper_bound(points_.begin(), points_.end(), t);
  return values_[static_cast<std::size_t>(it - points_.begin()) - 1];
}

Q StepFunction::integral() const {
  Q total;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    total += values_[i] * (points_[i + 1] - points_[i]);
  }
  return total;
}

double StepFunction::power_integral(double alpha) const {
  double total = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    total += std::pow(values_[i].to_double(), alpha) *
             (points_[i + 1] - points_[i]).to_double();
  }
  return total;
}

Q StepFunction::maximum() const {
  Q best(0);
  for (const Q& value : values_) best = max(best, value);
  return best;
}

StepFunction StepFunction::plus(const StepFunction& other) const {
  if (points_.empty()) return other;
  if (other.points_.empty()) return *this;
  std::vector<Q> merged;
  merged.reserve(points_.size() + other.points_.size());
  std::merge(points_.begin(), points_.end(), other.points_.begin(),
             other.points_.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

  StepFunction out;
  for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
    out.points_.push_back(merged[i]);
    out.values_.push_back(at(merged[i]) + other.at(merged[i]));
  }
  out.points_.push_back(merged.back());
  out.canonicalize();
  return out;
}

std::string StepFunction::to_string() const {
  if (points_.empty()) return "(zero)";
  std::ostringstream os;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    os << points_[i] << ":" << values_[i] << " ";
  }
  os << points_.back();
  return os.str();
}

StepFunction machine_speed_profile(const Schedule& schedule, std::size_t machine) {
  auto slices = schedule.machine(machine);  // sorted, validated non-overlap later
  std::vector<std::pair<Q, Q>> steps;
  Q end;
  for (const Slice& slice : slices) {
    if (!steps.empty() && end < slice.start) {
      steps.emplace_back(end, Q(0));  // idle gap
    }
    steps.emplace_back(slice.start, slice.speed);
    end = slice.end;
  }
  if (steps.empty()) return StepFunction();
  return StepFunction(std::move(steps), std::move(end));
}

StepFunction aggregate_speed_profile(const Schedule& schedule) {
  StepFunction total;
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    total = total.plus(machine_speed_profile(schedule, machine));
  }
  return total;
}

StepFunction parallelism_profile(const Schedule& schedule) {
  StepFunction total;
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    auto slices = schedule.machine(machine);
    std::vector<std::pair<Q, Q>> steps;
    Q end;
    for (const Slice& slice : slices) {
      if (!steps.empty() && end < slice.start) steps.emplace_back(end, Q(0));
      steps.emplace_back(slice.start, Q(1));
      end = slice.end;
    }
    if (steps.empty()) continue;
    total = total.plus(StepFunction(std::move(steps), std::move(end)));
  }
  return total;
}

}  // namespace mpss
