#pragma once
// Interval decomposition of the scheduling horizon (substrate S5).
//
// The paper partitions the horizon along the sorted set of release times and
// deadlines, I = {r_i, d_i}, into atomic intervals I_j = [tau_j, tau_{j+1}).
// Within an atomic interval the set of active jobs is constant, which is what both
// the flow network of Section 2 and the structural lemmas rely on.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mpss/core/job.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// Sorted, deduplicated time points plus derived atomic intervals and the
/// job-activity predicate. Optionally includes extra time points (OA(m) adds the
/// current time t0 when re-planning mid-horizon).
class IntervalDecomposition {
 public:
  /// Builds the decomposition from all job release times and deadlines plus
  /// `extra_points`. Jobs with zero window never occur (Instance validates r < d).
  explicit IntervalDecomposition(std::span<const Job> jobs,
                                 std::span<const Q> extra_points = {});

  /// Number of atomic intervals (|I| - 1, possibly 0 when there are no jobs).
  [[nodiscard]] std::size_t count() const {
    return points_.empty() ? 0 : points_.size() - 1;
  }

  [[nodiscard]] const std::vector<Q>& points() const { return points_; }

  [[nodiscard]] const Q& start(std::size_t j) const { return points_.at(j); }
  [[nodiscard]] const Q& end(std::size_t j) const { return points_.at(j + 1); }
  [[nodiscard]] Q length(std::size_t j) const { return end(j) - start(j); }

  /// True iff I_j is contained in [job.release, job.deadline) -- the job is
  /// "active" in I_j in the paper's terminology. Because interval endpoints come
  /// from the same point set, containment reduces to two comparisons.
  [[nodiscard]] bool active(const Job& job, std::size_t j) const {
    return job.release <= start(j) && end(j) <= job.deadline;
  }

  /// Index of the atomic interval containing time `t`; throws
  /// std::invalid_argument when t is outside [horizon start, horizon end).
  [[nodiscard]] std::size_t interval_of(const Q& t) const;

 private:
  std::vector<Q> points_;
};

/// Dense 2D bit matrix in 64-bit words, rows packed contiguously. The offline
/// engines keep job activity as one ActiveBitmap with a row per atomic interval
/// and a column per job, so the per-round "how many candidates are active in
/// I_j" recount collapses into word-ANDs with the candidate mask plus popcounts
/// (replacing the former vector<vector<bool>> matrix walk).
class ActiveBitmap {
 public:
  ActiveBitmap() = default;
  ActiveBitmap(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  /// Words per row (= words_for(cols())); the width masks must have.
  [[nodiscard]] std::size_t row_words() const { return row_words_; }

  void set(std::size_t row, std::size_t col);
  [[nodiscard]] bool test(std::size_t row, std::size_t col) const;

  /// Number of set bits in `row`.
  [[nodiscard]] std::size_t row_popcount(std::size_t row) const;

  /// Number of set bits in `row & mask`; `mask` must hold row_words() words.
  [[nodiscard]] std::size_t row_and_popcount(
      std::size_t row, std::span<const std::uint64_t> mask) const;

  /// Words needed for a `bits`-wide standalone mask (candidate sets).
  [[nodiscard]] static std::size_t words_for(std::size_t bits) {
    return (bits + 63) / 64;
  }
  static void mask_set(std::span<std::uint64_t> mask, std::size_t bit) {
    mask[bit / 64] |= std::uint64_t{1} << (bit % 64);
  }
  static void mask_clear(std::span<std::uint64_t> mask, std::size_t bit) {
    mask[bit / 64] &= ~(std::uint64_t{1} << (bit % 64));
  }
  [[nodiscard]] static bool mask_test(std::span<const std::uint64_t> mask,
                                      std::size_t bit) {
    return (mask[bit / 64] >> (bit % 64)) & 1;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t row_words_ = 0;
  std::vector<std::uint64_t> words_;
};

/// The offline engines' activity matrix: row j, column k set iff job k is
/// active in atomic interval I_j (IntervalDecomposition::active).
[[nodiscard]] ActiveBitmap make_active_bitmap(std::span<const Job> jobs,
                                              const IntervalDecomposition& intervals);

}  // namespace mpss
