#pragma once
// Interval decomposition of the scheduling horizon (substrate S5).
//
// The paper partitions the horizon along the sorted set of release times and
// deadlines, I = {r_i, d_i}, into atomic intervals I_j = [tau_j, tau_{j+1}).
// Within an atomic interval the set of active jobs is constant, which is what both
// the flow network of Section 2 and the structural lemmas rely on.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "mpss/core/job.hpp"
#include "mpss/util/bitmap.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// Sorted, deduplicated time points plus derived atomic intervals and the
/// job-activity predicate. Optionally includes extra time points (OA(m) adds the
/// current time t0 when re-planning mid-horizon).
class IntervalDecomposition {
 public:
  /// Builds the decomposition from all job release times and deadlines plus
  /// `extra_points`. Jobs with zero window never occur (Instance validates r < d).
  explicit IntervalDecomposition(std::span<const Job> jobs,
                                 std::span<const Q> extra_points = {});

  /// Number of atomic intervals (|I| - 1, possibly 0 when there are no jobs).
  [[nodiscard]] std::size_t count() const {
    return points_.empty() ? 0 : points_.size() - 1;
  }

  [[nodiscard]] const std::vector<Q>& points() const { return points_; }

  [[nodiscard]] const Q& start(std::size_t j) const { return points_.at(j); }
  [[nodiscard]] const Q& end(std::size_t j) const { return points_.at(j + 1); }
  [[nodiscard]] Q length(std::size_t j) const { return end(j) - start(j); }

  /// True iff I_j is contained in [job.release, job.deadline) -- the job is
  /// "active" in I_j in the paper's terminology. Because interval endpoints come
  /// from the same point set, containment reduces to two comparisons.
  [[nodiscard]] bool active(const Job& job, std::size_t j) const {
    return job.release <= start(j) && end(j) <= job.deadline;
  }

  /// Index of the atomic interval containing time `t`; throws
  /// std::invalid_argument when t is outside [horizon start, horizon end).
  [[nodiscard]] std::size_t interval_of(const Q& t) const;

 private:
  std::vector<Q> points_;
};

// ActiveBitmap (the engines' activity matrix type) moved to util/bitmap.hpp
// so the flow kernel's min-cut can return one without core<->flow coupling;
// this header keeps exporting it for its historical users.

/// The offline engines' activity matrix: row j, column k set iff job k is
/// active in atomic interval I_j (IntervalDecomposition::active).
[[nodiscard]] ActiveBitmap make_active_bitmap(std::span<const Job> jobs,
                                              const IntervalDecomposition& intervals);

}  // namespace mpss
