#pragma once
// The paper's primary contribution (Section 2): a strongly combinatorial,
// polynomial-time algorithm computing energy-optimal multi-processor schedules
// with migration, for any convex non-decreasing power function.
//
// Outline (Fig. 2 of the paper). The optimal schedule processes each job at one
// constant speed (Lemma 1); grouping jobs by speed partitions them into sets
// J_1, ..., J_p with s_1 > ... > s_p. Phase i recovers J_i:
//
//   * maintain a candidate set J (initially all remaining jobs); in every round,
//     reserve m_j = min(n_j, m - sum_{l<i} m_lj) processors per atomic interval
//     (Lemma 3), set s = W / P (total work over reserved processing time), and ask
//     a max-flow network G(J, m, s) whether J can be feasibly scheduled at uniform
//     speed s on the reservation;
//   * if the max-flow value reaches W/s, J is exactly J_i (Lemma 5); otherwise an
//     unsaturated sink edge exposes a job that provably does not belong to J_i
//     (Lemma 4) -- remove it and repeat.
//
// The flow on edge (u_k, v_j) is the processing time of job k inside interval I_j;
// each interval's sequential working schedule is McNaughton-wrapped onto the
// reserved processors. Phases claim the lowest-numbered free processors, so faster
// sets sit on lower machine indices (the Lemma 6 normal form).
//
// All arithmetic is exact (mpss::Q), making the "flow value == W/s" test literal.
//
// Note the power function does not appear: the optimal *schedule* is the same for
// every convex non-decreasing P (the algorithm minimizes speeds lexicographically);
// P only enters when measuring the energy of the result.

#include <cstddef>
#include <vector>

#include "mpss/core/intervals.hpp"
#include "mpss/core/job.hpp"
#include "mpss/core/schedule.hpp"
#include "mpss/obs/stats.hpp"
#include "mpss/util/cancel.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// Diagnostics for one phase of the algorithm.
struct PhaseInfo {
  /// Job indices (into the instance) forming J_i.
  std::vector<std::size_t> jobs;
  /// The uniform speed s_i of this set.
  Q speed;
  /// m_ij: processors reserved in each atomic interval (indexed like the
  /// decomposition's intervals).
  std::vector<std::size_t> machines_per_interval;
  /// Max-flow computations spent identifying this set (1 + number of removals).
  std::size_t rounds = 0;
};

/// Output of the offline algorithm: the schedule plus the full phase structure
/// (which the structural property tests and the OA(m) analysis hooks inspect).
struct OptimalResult {
  /// job_phase value for jobs that belong to no phase (zero work).
  static constexpr std::size_t kNoPhase = static_cast<std::size_t>(-1);

  Schedule schedule;
  IntervalDecomposition intervals;
  std::vector<PhaseInfo> phases;
  /// Total max-flow computations (sum of phase rounds).
  std::size_t flow_computations = 0;
  /// Telemetry: phase/round/removal counts plus flow-kernel work and wall time.
  /// `stats.flow_computations` mirrors the field above; `stats.phases` equals
  /// `phases.size()`.
  obs::SolveStats stats;
  /// Index into `phases` per job (kNoPhase for zero-work jobs), filled once by
  /// optimal_schedule() so speed_of_job is O(1) instead of a phase scan.
  std::vector<std::size_t> job_phase;

  /// Speed at which `job` is processed. Returns 0 for zero-work jobs (which
  /// belong to no phase) and for indices the instance does not contain.
  [[nodiscard]] Q speed_of_job(std::size_t job) const;

  /// Number of distinct speed levels p.
  [[nodiscard]] std::size_t level_count() const { return phases.size(); }
};

/// Ablation knobs (experiment E12). The paper's Lemma 4 licenses removing only a
/// job whose edge into an *unsaturated* interval vertex carries slack; the
/// ablated policy removes an arbitrary candidate instead, demonstrating why the
/// principled rule matters (wrong sets J_i -> higher energy, or broken phase
/// structure). Production callers use the default.
struct OptimalOptions {
  enum class RemovalPolicy {
    kPaperRule,        // line 10 of Fig. 2 -- provably correct
    kRandomCandidate,  // ABLATION ONLY: drop a random candidate when the flow
                       // falls short
  };
  RemovalPolicy removal_policy = RemovalPolicy::kPaperRule;
  std::uint64_t ablation_seed = 0;  // PRNG seed for kRandomCandidate
  /// Warm-started phase rounds (the default): build the flow network once per
  /// phase, then per removal round retract the victim's flow, rescale the
  /// source capacities to the new speed, and resume Dinic from the carried
  /// feasible flow. `false` rebuilds the network from scratch every round (the
  /// differential reference path). The two paths produce bit-identical results
  /// -- phases, speeds, and schedules -- see DESIGN.md "Warm-start invariant".
  bool incremental = true;
  /// Cooperative cancellation / soft deadline, polled at phase and round
  /// boundaries (util/cancel.hpp). When the token fires the engine throws
  /// CancelledError; the solve() facade turns that into kCancelled /
  /// kDeadlineExceeded. Null (the default) never fires. Not owned; must
  /// outlive the call.
  const CancelToken* cancel = nullptr;
};

/// Computes an energy-optimal schedule for `instance` (Theorem 1 of the paper).
/// Optimality holds simultaneously for every convex non-decreasing power function.
/// Never fails on valid instances: with unbounded speeds every instance is
/// feasible. Runs in polynomial time (O(n) phases, each O(n) max-flow rounds).
[[nodiscard]] OptimalResult optimal_schedule(const Instance& instance);

/// As above with ablation/cancellation options; with kRandomCandidate the
/// result is feasible but may be suboptimal (and phase speeds may not
/// decrease). May throw InternalError if the ablated removals empty a
/// candidate set, and CancelledError when `options.cancel` fires.
///
/// `trace` records phase boundaries, per-round flow values, and candidate
/// removals as obs events; null falls back to the process-wide sink in
/// obs::Registry (itself null by default -> no emission). The solve() facade
/// is the preferred way to drive tracing (it owns sink resolution; see
/// SolveOptions::trace) -- this parameter serves direct engine callers.
[[nodiscard]] OptimalResult optimal_schedule(const Instance& instance,
                                             const OptimalOptions& options,
                                             obs::TraceSink* trace = nullptr);

/// Convenience: the optimal energy under power function `p` (computes the schedule
/// and measures it).
[[nodiscard]] double optimal_energy(const Instance& instance, const PowerFunction& p);

}  // namespace mpss
