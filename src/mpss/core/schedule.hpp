#pragma once
// Schedule representation, exact feasibility checking and energy measurement
// (substrate S6, see DESIGN.md).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "mpss/core/job.hpp"
#include "mpss/core/power.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// A maximal piece of uninterrupted execution: job `job` runs at constant `speed`
/// during [start, end) on some processor.
struct Slice {
  Q start;
  Q end;
  Q speed;
  std::size_t job;

  [[nodiscard]] Q duration() const { return end - start; }
  [[nodiscard]] Q work() const { return speed * duration(); }

  friend bool operator==(const Slice&, const Slice&) = default;
};

/// A multi-processor schedule: per-processor lists of slices. Slices may be added
/// in any order; accessors present them sorted by start time. Feasibility (windows,
/// overlaps, work completion) is verified by check_schedule, not at insertion, so
/// algorithms can build schedules incrementally.
class Schedule {
 public:
  explicit Schedule(std::size_t machines);

  [[nodiscard]] std::size_t machines() const { return machines_.size(); }
  [[nodiscard]] std::size_t slice_count() const;

  /// Adds a slice to `machine`. Validates only local sanity: machine in range,
  /// start < end, speed > 0 (zero-speed execution is represented by *absence* of
  /// slices, as in the paper's schedules).
  void add(std::size_t machine, Slice slice);

  /// Slices of one machine, sorted by start time.
  [[nodiscard]] std::span<const Slice> machine(std::size_t index) const;

  /// All slices of one job across machines, sorted by start time.
  [[nodiscard]] std::vector<Slice> slices_of(std::size_t job) const;

  /// Total work performed on `job` over the whole schedule.
  [[nodiscard]] Q work_on(std::size_t job) const;

  /// Work performed on `job` within [t0, t1) (slices clipped exactly).
  [[nodiscard]] Q work_on_in(std::size_t job, const Q& t0, const Q& t1) const;

  /// Copy of the schedule clipped to [t0, t1): slices are intersected with the
  /// window; empty intersections are dropped.
  [[nodiscard]] Schedule clipped(const Q& t0, const Q& t1) const;

  /// Appends every slice of `other` (machine counts must match).
  void merge(const Schedule& other);

  /// Energy consumed according to P: sum over slices of P(speed) * duration.
  /// Idle time contributes P(0) * idle_duration per machine over [t0, t1) only if
  /// P(0) > 0; pass the instance horizon for power functions with static power.
  [[nodiscard]] double energy(const PowerFunction& p) const;

  /// Energy including idle power P(0) over horizon [t0, t1) on all machines.
  [[nodiscard]] double energy_with_idle(const PowerFunction& p, const Q& t0,
                                        const Q& t1) const;

  /// Speeds of all machines at time t (0 = idle), in machine order.
  [[nodiscard]] std::vector<Q> speeds_at(const Q& t) const;

  /// Maximum speed over all slices (0 for an empty schedule).
  [[nodiscard]] Q max_speed() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<std::vector<Slice>> machines_;
  mutable bool sorted_ = true;
};

/// Result of validating a schedule against an instance. `violations` holds
/// human-readable descriptions (at most `kMaxViolations` are collected).
struct FeasibilityReport {
  bool feasible = true;
  std::vector<std::string> violations;

  static constexpr std::size_t kMaxViolations = 16;

  explicit operator bool() const { return feasible; }
  void fail(std::string message);
};

/// Exact feasibility check:
///  * every slice lies inside its job's [release, deadline),
///  * slices on one machine never overlap,
///  * no job runs on two machines at the same time (migration yes, parallelism no),
///  * every job receives exactly its work.
[[nodiscard]] FeasibilityReport check_schedule(const Instance& instance,
                                               const Schedule& schedule);

/// Number of violations check_schedule finds (0 = feasible). Capped at
/// FeasibilityReport::kMaxViolations, like the report it summarizes. The
/// counterpart of count_fast_violations for exact schedules; SolveResult's
/// violations() helper dispatches between the two.
[[nodiscard]] std::size_t count_violations(const Instance& instance,
                                           const Schedule& schedule);

}  // namespace mpss
