#include "mpss/core/yds.hpp"

#include <algorithm>
#include <optional>

#include "mpss/util/error.hpp"

namespace mpss {
namespace {

/// Internal job record carrying the original instance index through recursion and
/// timeline contraction.
struct WorkItem {
  std::size_t id;
  Job job;
};

/// Finds the critical (maximum-intensity) interval among windows of `items`.
/// Returns nullopt when no pair contains a job (cannot happen for non-empty input
/// with positive works). Intensity comparison is exact.
struct CriticalInterval {
  Q start;
  Q end;
  Q intensity;
};

std::optional<CriticalInterval> find_critical(const std::vector<WorkItem>& items) {
  std::vector<Q> starts, ends;
  starts.reserve(items.size());
  ends.reserve(items.size());
  for (const WorkItem& item : items) {
    starts.push_back(item.job.release);
    ends.push_back(item.job.deadline);
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());
  std::sort(ends.begin(), ends.end());
  ends.erase(std::unique(ends.begin(), ends.end()), ends.end());

  std::optional<CriticalInterval> best;
  for (const Q& t : starts) {
    for (const Q& tp : ends) {
      if (!(t < tp)) continue;
      Q contained_work;
      for (const WorkItem& item : items) {
        if (t <= item.job.release && item.job.deadline <= tp) {
          contained_work += item.job.work;
        }
      }
      if (contained_work.is_zero()) continue;
      Q intensity = contained_work / (tp - t);
      if (!best || best->intensity < intensity) {
        best = CriticalInterval{t, tp, std::move(intensity)};
      }
    }
  }
  return best;
}

/// Recursion of YDS in the *current* (possibly contracted) timeline. Returns the
/// slices (job field = original instance id) and counts iterations.
std::vector<Slice> yds_recurse(std::vector<WorkItem> items, std::size_t& iterations,
                               std::vector<Q>& job_speed) {
  if (items.empty()) return {};
  auto critical = find_critical(items);
  check_internal(critical.has_value(), "yds: no critical interval for pending work");
  ++iterations;
  const Q& t = critical->start;
  const Q& tp = critical->end;
  const Q& g = critical->intensity;
  Q cut = tp - t;

  std::vector<Job> inside_jobs;
  std::vector<std::size_t> inside_ids;
  std::vector<WorkItem> rest;
  for (WorkItem& item : items) {
    if (t <= item.job.release && item.job.deadline <= tp) {
      inside_ids.push_back(item.id);
      inside_jobs.push_back(item.job);
    } else {
      // Contract [t, tp] out of the remaining job's window.
      auto contract = [&](const Q& x) {
        if (x <= t) return x;
        if (tp <= x) return x - cut;
        return t;
      };
      item.job.release = contract(item.job.release);
      item.job.deadline = contract(item.job.deadline);
      rest.push_back(std::move(item));
    }
  }

  for (std::size_t i = 0; i < inside_ids.size(); ++i) job_speed[inside_ids[i]] = g;

  std::vector<Slice> critical_slices = edf_at_constant_speed(inside_jobs, g);
  for (Slice& slice : critical_slices) slice.job = inside_ids[slice.job];

  std::vector<Slice> sub = yds_recurse(std::move(rest), iterations, job_speed);
  // Expand the contracted timeline: times >= t shift right by |[t, tp)|; a slice
  // spanning the cut point splits into a part before t and a part after tp.
  std::vector<Slice> out = std::move(critical_slices);
  for (Slice& slice : sub) {
    if (slice.end <= t) {
      out.push_back(std::move(slice));
    } else if (t <= slice.start) {
      out.push_back(Slice{slice.start + cut, slice.end + cut, slice.speed, slice.job});
    } else {
      out.push_back(Slice{slice.start, t, slice.speed, slice.job});
      out.push_back(Slice{tp, slice.end + cut, slice.speed, slice.job});
    }
  }
  return out;
}

}  // namespace

std::vector<Slice> edf_at_constant_speed(const std::vector<Job>& jobs, const Q& speed) {
  check_arg(speed.sign() > 0, "edf_at_constant_speed: speed must be positive");
  struct State {
    std::size_t index;
    Q remaining;
  };
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return jobs[a].release < jobs[b].release;
  });

  std::vector<Slice> out;
  std::vector<State> ready;  // unfinished released jobs
  std::size_t next_release = 0;
  Q now;
  if (!order.empty()) now = jobs[order[0]].release;

  auto release_jobs_up_to = [&](const Q& time) {
    while (next_release < order.size() && jobs[order[next_release]].release <= time) {
      std::size_t index = order[next_release++];
      if (jobs[index].work.sign() > 0) ready.push_back(State{index, jobs[index].work});
    }
  };

  release_jobs_up_to(now);
  while (!ready.empty() || next_release < order.size()) {
    if (ready.empty()) {
      now = jobs[order[next_release]].release;
      release_jobs_up_to(now);
      continue;
    }
    // Earliest deadline first; ties by lower index for determinism.
    std::size_t pick = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      const Job& a = jobs[ready[i].index];
      const Job& b = jobs[ready[pick].index];
      if (a.deadline < b.deadline ||
          (a.deadline == b.deadline && ready[i].index < ready[pick].index)) {
        pick = i;
      }
    }
    Q finish = now + ready[pick].remaining / speed;
    Q until = finish;
    if (next_release < order.size()) {
      until = min(finish, jobs[order[next_release]].release);
    }
    check_internal(until <= jobs[ready[pick].index].deadline,
                   "edf_at_constant_speed: deadline miss (speed too low)");
    if (now < until) {
      out.push_back(Slice{now, until, speed, ready[pick].index});
      ready[pick].remaining -= speed * (until - now);
      now = until;
    }
    if (ready[pick].remaining.is_zero()) {
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    release_jobs_up_to(now);
  }
  return out;
}

YdsResult yds_schedule(const Instance& instance) {
  check_arg(instance.machines() == 1,
            "yds_schedule: single-processor algorithm (use optimal_schedule for m > 1)");
  YdsResult result{Schedule(1), std::vector<Q>(instance.size(), Q(0)), 0};

  std::vector<WorkItem> items;
  for (std::size_t k = 0; k < instance.size(); ++k) {
    if (instance.job(k).work.sign() > 0) items.push_back(WorkItem{k, instance.job(k)});
  }
  std::vector<Slice> slices = yds_recurse(std::move(items), result.iterations,
                                          result.job_speed);
  for (Slice& slice : slices) result.schedule.add(0, std::move(slice));
  return result;
}

}  // namespace mpss
