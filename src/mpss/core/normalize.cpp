#include "mpss/core/normalize.hpp"

#include <algorithm>
#include <map>

#include "mpss/core/intervals.hpp"
#include "mpss/core/mcnaughton.hpp"
#include "mpss/util/error.hpp"

namespace mpss {

bool has_constant_interval_speeds(const Instance& instance, const Schedule& schedule) {
  IntervalDecomposition intervals(instance.jobs());
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    for (std::size_t j = 0; j < intervals.count(); ++j) {
      bool seen = false;
      Q speed;
      for (const Slice& slice : schedule.machine(machine)) {
        Q lo = max(slice.start, intervals.start(j));
        Q hi = min(slice.end, intervals.end(j));
        if (!(lo < hi)) continue;
        if (seen && slice.speed != speed) return false;
        speed = slice.speed;
        seen = true;
      }
    }
  }
  return true;
}

Schedule lemma2_normal_form(const Instance& instance, const Schedule& schedule) {
  IntervalDecomposition intervals(instance.jobs());
  Schedule out(schedule.machines());
  const Q machine_count(static_cast<std::int64_t>(schedule.machines()));

  for (std::size_t j = 0; j < intervals.count(); ++j) {
    const Q length = intervals.length(j);

    // Per job: its (single) speed and total processing time within I_j.
    std::map<std::size_t, std::pair<Q, Q>> per_job;  // job -> (speed, time)
    for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
      for (const Slice& slice : schedule.machine(machine)) {
        Q lo = max(slice.start, intervals.start(j));
        Q hi = min(slice.end, intervals.end(j));
        if (!(lo < hi)) continue;
        auto [it, inserted] = per_job.try_emplace(slice.job, slice.speed, Q(0));
        check_arg(it->second.first == slice.speed,
                  "lemma2_normal_form: a job uses two speeds inside one atomic "
                  "interval (Lemma 1 precondition violated)");
        it->second.second += hi - lo;
      }
    }
    if (per_job.empty()) continue;

    // Group by speed, fastest first (Lemma 6 machine ordering).
    std::map<Q, std::vector<Chunk>, std::greater<Q>> groups;
    for (const auto& [job, speed_time] : per_job) {
      check_arg(speed_time.second <= length,
                "lemma2_normal_form: job busy longer than the interval "
                "(self-parallel input)");
      groups[speed_time.first].push_back(Chunk{job, speed_time.second});
    }

    // Each speed group must occupy whole processors (the paper proves this for
    // the schedules Lemma 2 addresses; all schedules this library produces
    // qualify -- see normalize.hpp).
    std::size_t cursor = 0;
    for (const auto& [speed, chunks] : groups) {
      Q total;
      for (const Chunk& chunk : chunks) total += chunk.duration;
      Q machines_exact = total / length;
      check_arg(machines_exact.is_integer(),
                "lemma2_normal_form: a speed group does not fill whole processors "
                "(not a Lemma 2 schedule)");
      auto machines_needed =
          static_cast<std::size_t>(machines_exact.num().to_int64());
      check_arg(Q(static_cast<std::int64_t>(cursor + machines_needed)) <=
                    machine_count,
                "lemma2_normal_form: groups need more processors than available");
      mcnaughton_pack(out, intervals.start(j), length, cursor, machines_needed,
                      speed, chunks);
      cursor += machines_needed;
    }
  }
  return out;
}

}  // namespace mpss
