#pragma once
// ASCII Gantt rendering of schedules -- the library's human inspection surface.
// Examples print these; tests assert on their structure (every slice becomes a
// labelled span; concurrent slices never share a row).

#include <string>

#include "mpss/core/schedule.hpp"

namespace mpss {

/// Rendering options for render_gantt.
struct GanttOptions {
  /// Total character columns for the time axis (minimum 20).
  std::size_t width = 72;
  /// Show a numeric speed lane under each machine row.
  bool show_speeds = true;
  /// Start/end of the rendered window; when start == end (default) the
  /// schedule's own span is used.
  Q window_start = Q(0);
  Q window_end = Q(0);
};

/// Renders the schedule as a multi-line ASCII chart:
///
///   t=[0, 8)
///   m0 |000000111111....|
///      |  3/4    3      |
///   m1 |......2222222222|
///      |        1/2     |
///
/// Each slice is drawn as a run of its job-id digit (job index mod 10 when wider
/// than one digit -- the speed lane disambiguates); '.' is idle. Slices shorter
/// than one column still get at least one character, so micro-slices remain
/// visible (column budget permitting).
[[nodiscard]] std::string render_gantt(const Schedule& schedule,
                                       const GanttOptions& options = {});

}  // namespace mpss
