#include "mpss/core/gantt.hpp"

#include <algorithm>
#include <sstream>

#include "mpss/util/error.hpp"

namespace mpss {
namespace {

/// Maps a time to a column in [0, width], clamped.
std::size_t column_of(const Q& t, const Q& start, const Q& span, std::size_t width) {
  if (t <= start) return 0;
  Q fraction = (t - start) / span;
  if (Q(1) <= fraction) return width;
  // floor(fraction * width)
  return static_cast<std::size_t>(
      (fraction * Q(static_cast<std::int64_t>(width))).floor().to_int64());
}

char job_glyph(std::size_t job) {
  return static_cast<char>('0' + static_cast<char>(job % 10));
}

}  // namespace

std::string render_gantt(const Schedule& schedule, const GanttOptions& options) {
  check_arg(options.width >= 20, "render_gantt: width must be >= 20");

  // Determine the window.
  Q start = options.window_start;
  Q end = options.window_end;
  if (!(start < end)) {
    bool any = false;
    for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
      for (const Slice& slice : schedule.machine(machine)) {
        if (!any) {
          start = slice.start;
          end = slice.end;
          any = true;
        } else {
          start = min(start, slice.start);
          end = max(end, slice.end);
        }
      }
    }
    if (!any) return "(empty schedule)\n";
  }
  const Q span = end - start;
  const std::size_t width = options.width;

  std::ostringstream out;
  out << "t=[" << start << ", " << end << ")\n";

  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    std::string row(width, '.');
    std::string speeds(width, ' ');
    for (const Slice& slice : schedule.machine(machine)) {
      if (slice.end <= start || end <= slice.start) continue;
      std::size_t lo = column_of(max(slice.start, start), start, span, width);
      std::size_t hi = column_of(min(slice.end, end), start, span, width);
      if (hi <= lo) hi = std::min(lo + 1, width);  // keep micro-slices visible
      for (std::size_t c = lo; c < hi; ++c) row[c] = job_glyph(slice.job);
      if (options.show_speeds) {
        std::string label = slice.speed.to_string();
        std::size_t space = hi - lo;
        if (label.size() <= space) {
          std::size_t at = lo + (space - label.size()) / 2;
          for (std::size_t i = 0; i < label.size(); ++i) speeds[at + i] = label[i];
        }
      }
    }
    out << "m" << machine << " |" << row << "|\n";
    if (options.show_speeds) {
      out << std::string(std::to_string(machine).size() + 1, ' ') << " |" << speeds
          << "|\n";
    }
  }
  return out.str();
}

}  // namespace mpss
