#pragma once
// Double-precision fast path of the offline optimal algorithm (S31).
//
// The exact engine (core/optimal.hpp) pays arbitrary-precision rational costs to
// make the paper's equality tests literal. This is the engineering counterpart a
// production system would deploy: the same phase/round/flow structure over IEEE
// doubles with relative-epsilon acceptance tests. It trades certainty for speed
// (order-of-magnitude; see bench_offline and experiment E13) and is validated
// against the exact engine in tests -- energies agree to ~1e-9 relative on every
// sampled instance.
//
// The fast path returns its own lightweight schedule type: re-encoding binary
// doubles as exact rationals would launder approximation into "exact" data.

#include <cstddef>
#include <vector>

#include "mpss/core/job.hpp"
#include "mpss/core/power.hpp"
#include "mpss/obs/stats.hpp"
#include "mpss/util/cancel.hpp"

namespace mpss {

/// One execution piece in the double-precision schedule.
struct FastSlice {
  double start;
  double end;
  double speed;
  std::size_t job;
};

/// Per-machine slices plus measurement helpers (mirrors Schedule, in double).
struct FastSchedule {
  std::vector<std::vector<FastSlice>> machines;

  [[nodiscard]] std::size_t slice_count() const;
  [[nodiscard]] double energy(const PowerFunction& p) const;
  [[nodiscard]] double work_on(std::size_t job) const;
  [[nodiscard]] double max_speed() const;
};

struct FastOptimalResult {
  FastSchedule schedule;
  std::vector<double> phase_speeds;  // descending (within tolerance)
  std::size_t flow_computations = 0;
  /// Telemetry mirroring the exact engine's (phases/rounds/removals, flow-kernel
  /// work, wall time) so bench_offline can compare the two paths event-for-event.
  obs::SolveStats stats;
};

/// Approximate feasibility: window containment and machine overlap within
/// `tolerance` (absolute, in time units), work completion within `tolerance`
/// relative. Returns the number of violations (0 = feasible).
[[nodiscard]] std::size_t count_fast_violations(const Instance& instance,
                                                const FastSchedule& schedule,
                                                double tolerance = 1e-7);

/// Knobs for the fast path (the subset of OptimalOptions that applies here).
struct FastOptimalOptions {
  /// Relative tolerance of the flow-saturation tests (looser values risk
  /// misclassifying phases on near-degenerate instances -- experiment E13).
  double epsilon = 1e-9;
  /// Warm-started phase rounds (the default): build the flow network once per
  /// phase, then per removal round retract the victim's flow, rescale source
  /// capacities, and resume Dinic. `false` rebuilds every round. Unlike the
  /// exact engine the two paths agree only within the usual double tolerances
  /// (flow splits are rounding-sensitive), not bit for bit.
  bool incremental = true;
  /// Cooperative cancellation / soft deadline, polled at phase and round
  /// boundaries (util/cancel.hpp); the engine throws CancelledError when the
  /// token fires. Null never fires. Not owned; must outlive the call.
  const CancelToken* cancel = nullptr;
};

/// The offline algorithm over doubles. `epsilon` is the relative tolerance of the
/// flow-saturation tests (default 1e-9; looser values risk misclassifying phases
/// on near-degenerate instances -- experiment E13 quantifies this). With a
/// non-null `trace`, emits the same event stream as the exact engine under
/// "optimal_fast.*" labels.
[[nodiscard]] FastOptimalResult optimal_schedule_fast(const Instance& instance,
                                                      double epsilon = 1e-9,
                                                      obs::TraceSink* trace = nullptr);

/// As above with the full option set (incremental warm starts, cancellation).
/// `trace` records the "optimal_fast.*" event stream; null falls back to the
/// process-wide sink in obs::Registry.
[[nodiscard]] FastOptimalResult optimal_schedule_fast(const Instance& instance,
                                                      const FastOptimalOptions& options,
                                                      obs::TraceSink* trace = nullptr);

}  // namespace mpss
