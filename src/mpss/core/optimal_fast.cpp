#include "mpss/core/optimal_fast.hpp"

#include <algorithm>
#include <cmath>

#include "mpss/flow/dinic.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/error.hpp"

namespace mpss {
namespace {

/// Atomic intervals in double precision (exact points converted, then dedup'd).
struct FastIntervals {
  std::vector<double> points;

  explicit FastIntervals(const Instance& instance) {
    points.reserve(instance.size() * 2);
    for (const Job& job : instance.jobs()) {
      points.push_back(job.release.to_double());
      points.push_back(job.deadline.to_double());
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());
    if (points.size() == 1) points.clear();
  }

  [[nodiscard]] std::size_t count() const {
    return points.empty() ? 0 : points.size() - 1;
  }
  [[nodiscard]] double start(std::size_t j) const { return points[j]; }
  [[nodiscard]] double end(std::size_t j) const { return points[j + 1]; }
  [[nodiscard]] double length(std::size_t j) const { return end(j) - start(j); }
};

}  // namespace

std::size_t FastSchedule::slice_count() const {
  std::size_t total = 0;
  for (const auto& machine : machines) total += machine.size();
  return total;
}

double FastSchedule::energy(const PowerFunction& p) const {
  double total = 0.0;
  for (const auto& machine : machines) {
    for (const FastSlice& slice : machine) {
      total += p.power(slice.speed) * (slice.end - slice.start);
    }
  }
  return total;
}

double FastSchedule::work_on(std::size_t job) const {
  double total = 0.0;
  for (const auto& machine : machines) {
    for (const FastSlice& slice : machine) {
      if (slice.job == job) total += slice.speed * (slice.end - slice.start);
    }
  }
  return total;
}

double FastSchedule::max_speed() const {
  double best = 0.0;
  for (const auto& machine : machines) {
    for (const FastSlice& slice : machine) best = std::max(best, slice.speed);
  }
  return best;
}

std::size_t count_fast_violations(const Instance& instance,
                                  const FastSchedule& schedule, double tolerance) {
  std::size_t violations = 0;
  for (const auto& machine : schedule.machines) {
    std::vector<FastSlice> sorted = machine;
    std::sort(sorted.begin(), sorted.end(),
              [](const FastSlice& a, const FastSlice& b) { return a.start < b.start; });
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const FastSlice& slice = sorted[i];
      if (slice.job >= instance.size()) {
        ++violations;
        continue;
      }
      const Job& job = instance.job(slice.job);
      if (slice.start < job.release.to_double() - tolerance ||
          slice.end > job.deadline.to_double() + tolerance) {
        ++violations;
      }
      if (i + 1 < sorted.size() && sorted[i + 1].start < slice.end - tolerance) {
        ++violations;
      }
    }
  }
  for (std::size_t k = 0; k < instance.size(); ++k) {
    double done = schedule.work_on(k);
    double required = instance.job(k).work.to_double();
    if (std::abs(done - required) > tolerance * (1.0 + required)) ++violations;
  }
  return violations;
}

FastOptimalResult optimal_schedule_fast(const Instance& instance, double epsilon,
                                        obs::TraceSink* trace) {
  check_arg(epsilon > 0.0 && epsilon < 0.1, "optimal_schedule_fast: bad epsilon");
  FastIntervals intervals(instance);
  const std::size_t interval_count = intervals.count();
  const std::size_t m = instance.machines();

  FastOptimalResult result;
  result.schedule.machines.resize(m);
  obs::ScopedTimer timer;
  result.stats.counters.set("optimal_fast.intervals", interval_count);
  obs::emit(trace, obs::EventKind::kSolveStart, "optimal_fast.solve",
            instance.size(), m);

  std::vector<std::size_t> remaining;
  std::vector<double> work(instance.size(), 0.0);
  for (std::size_t k = 0; k < instance.size(); ++k) {
    work[k] = instance.job(k).work.to_double();
    if (work[k] > 0.0) remaining.push_back(k);
  }

  std::vector<std::vector<bool>> active(instance.size(),
                                        std::vector<bool>(interval_count, false));
  for (std::size_t k = 0; k < instance.size(); ++k) {
    double release = instance.job(k).release.to_double();
    double deadline = instance.job(k).deadline.to_double();
    for (std::size_t j = 0; j < interval_count; ++j) {
      active[k][j] = release <= intervals.start(j) + 1e-15 &&
                     intervals.end(j) <= deadline + 1e-15;
    }
  }

  std::vector<std::size_t> used(interval_count, 0);

  while (!remaining.empty()) {
    std::vector<std::size_t> candidates = remaining;
    std::vector<std::size_t> reserved(interval_count, 0);
    double speed = 0.0;
    const std::size_t phase_index = result.phase_speeds.size();
    std::size_t rounds = 0;
    obs::emit(trace, obs::EventKind::kPhaseStart, "optimal_fast.phase", phase_index,
              candidates.size());

    // Per-round flow bookkeeping for extraction.
    std::vector<std::vector<std::pair<std::size_t, FlowNetwork<double>::EdgeId>>>
        job_edges;  // per candidate: (interval, edge)
    FlowNetwork<double> net;

    for (;;) {
      check_internal(!candidates.empty(),
                     "optimal_schedule_fast: candidate set emptied");
      ++rounds;
      ++result.flow_computations;

      std::vector<std::size_t> count_active(interval_count, 0);
      for (std::size_t job : candidates) {
        for (std::size_t j = 0; j < interval_count; ++j) {
          if (active[job][j]) ++count_active[j];
        }
      }
      double reserved_time = 0.0;
      double total_work = 0.0;
      for (std::size_t j = 0; j < interval_count; ++j) {
        reserved[j] = std::min(count_active[j], m - used[j]);
        reserved_time += static_cast<double>(reserved[j]) * intervals.length(j);
      }
      for (std::size_t job : candidates) total_work += work[job];
      check_internal(reserved_time > 0.0, "optimal_schedule_fast: no capacity left");
      speed = total_work / reserved_time;

      // Build G(J, m, s) in doubles.
      net = FlowNetwork<double>();
      job_edges.assign(candidates.size(), {});
      std::size_t source = net.add_node();
      std::size_t first_job = net.add_nodes(candidates.size());
      std::vector<std::size_t> interval_node(interval_count,
                                             static_cast<std::size_t>(-1));
      for (std::size_t j = 0; j < interval_count; ++j) {
        if (reserved[j] > 0) interval_node[j] = net.add_node();
      }
      std::size_t sink = net.add_node();

      std::vector<FlowNetwork<double>::EdgeId> sink_edges;
      std::vector<std::size_t> sink_interval;
      for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
        std::size_t job = candidates[pos];
        net.add_edge(source, first_job + pos, work[job] / speed);
        for (std::size_t j = 0; j < interval_count; ++j) {
          if (reserved[j] == 0 || !active[job][j]) continue;
          job_edges[pos].emplace_back(
              j, net.add_edge(first_job + pos, interval_node[j], intervals.length(j)));
        }
      }
      for (std::size_t j = 0; j < interval_count; ++j) {
        if (reserved[j] == 0) continue;
        sink_edges.push_back(net.add_edge(
            interval_node[j], sink,
            static_cast<double>(reserved[j]) * intervals.length(j)));
        sink_interval.push_back(j);
      }

      double flow_value = net.max_flow(source, sink);
      result.stats.flow_bfs_rounds += net.kernel_stats().bfs_rounds;
      result.stats.flow_augmenting_paths += net.kernel_stats().augmenting_paths;
      obs::emit(trace, obs::EventKind::kFlowRound, "optimal_fast.round", phase_index,
                rounds, flow_value / reserved_time);
      if (flow_value >= reserved_time * (1.0 - epsilon)) break;

      // Removal rule, epsilon-guarded.
      std::size_t victim = static_cast<std::size_t>(-1);
      for (std::size_t e = 0; e < sink_edges.size() && victim == static_cast<std::size_t>(-1);
           ++e) {
        double gap = net.capacity(sink_edges[e]) - net.flow(sink_edges[e]);
        if (gap <= epsilon * (1.0 + net.capacity(sink_edges[e]))) continue;
        std::size_t j = sink_interval[e];
        for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
          for (const auto& [interval, edge] : job_edges[pos]) {
            if (interval != j) continue;
            if (net.flow(edge) < net.capacity(edge) * (1.0 - epsilon)) victim = pos;
            break;
          }
          if (victim != static_cast<std::size_t>(-1)) break;
        }
      }
      check_internal(victim != static_cast<std::size_t>(-1),
                     "optimal_schedule_fast: no removable job found");
      ++result.stats.candidate_removals;
      obs::emit(trace, obs::EventKind::kCandidateRemoved,
                "optimal_fast.lemma4_removal", phase_index, candidates[victim]);
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(victim));
    }

    obs::emit(trace, obs::EventKind::kPhaseEnd, "optimal_fast.phase", phase_index,
              rounds, speed);
    result.phase_speeds.push_back(speed);

    // Extract: per interval, wrap the chunks over the reserved machines.
    for (std::size_t j = 0; j < interval_count; ++j) {
      if (reserved[j] == 0) continue;
      double length = intervals.length(j);
      std::size_t machine = used[j];
      double offset = 0.0;
      for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
        for (const auto& [interval, edge] : job_edges[pos]) {
          if (interval != j) continue;
          double duration = std::min(net.flow(edge), length);
          while (duration > epsilon * length) {
            double available = length - offset;
            if (available <= 1e-12 * length) {
              // Sub-rounding remainder of the machine window: move on before it
              // collapses into a zero-length slice (ulp of the absolute time can
              // exceed the remainder).
              ++machine;
              offset = 0.0;
              continue;
            }
            double piece = std::min(duration, available);
            double begin = intervals.start(j) + offset;
            double finish = intervals.start(j) + std::min(offset + piece, length);
            if (begin < finish) {
              result.schedule.machines[machine].push_back(
                  FastSlice{begin, finish, speed, candidates[pos]});
            }
            offset += piece;
            duration -= piece;
            if (offset >= length * (1.0 - 1e-12)) {
              ++machine;
              offset = 0.0;
            }
          }
          break;
        }
      }
      used[j] += reserved[j];
    }

    std::vector<std::size_t> next;
    for (std::size_t job : remaining) {
      if (std::find(candidates.begin(), candidates.end(), job) == candidates.end()) {
        next.push_back(job);
      }
    }
    remaining = std::move(next);
  }
  result.stats.phases = result.phase_speeds.size();
  result.stats.flow_computations = result.flow_computations;
  obs::emit(trace, obs::EventKind::kSolveEnd, "optimal_fast.solve",
            result.phase_speeds.size(), result.flow_computations);
  result.stats.wall_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace mpss
