#include "mpss/core/optimal_fast.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "mpss/core/intervals.hpp"
#include "mpss/flow/dinic.hpp"
#include "mpss/obs/histogram.hpp"
#include "mpss/obs/span.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/arena.hpp"
#include "mpss/util/error.hpp"

namespace mpss {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Atomic intervals in double precision (exact points converted, then dedup'd).
struct FastIntervals {
  std::vector<double> points;

  explicit FastIntervals(const Instance& instance) {
    points.reserve(instance.size() * 2);
    for (const Job& job : instance.jobs()) {
      points.push_back(job.release.to_double());
      points.push_back(job.deadline.to_double());
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());
    if (points.size() == 1) points.clear();
  }

  [[nodiscard]] std::size_t count() const {
    return points.empty() ? 0 : points.size() - 1;
  }
  [[nodiscard]] double start(std::size_t j) const { return points[j]; }
  [[nodiscard]] double end(std::size_t j) const { return points[j + 1]; }
  [[nodiscard]] double length(std::size_t j) const { return end(j) - start(j); }
};

/// One phase's flow network in doubles plus extraction/editing bookkeeping,
/// mirroring the exact engine's RoundNetwork (edge vectors addressed by
/// build-time candidate position).
struct FastRound {
  FlowNetwork<double> net;
  std::size_t source = 0;
  std::size_t sink = 0;
  std::vector<FlowNetwork<double>::EdgeId> source_edges;
  std::vector<std::vector<std::size_t>> job_edge_interval;
  std::vector<std::vector<FlowNetwork<double>::EdgeId>> job_edges;
  std::vector<FlowNetwork<double>::EdgeId> sink_edges;
  std::vector<std::size_t> sink_edge_interval;
  std::vector<std::size_t> interval_sink_edge;
};

FastRound build_fast_network(const std::vector<double>& work,
                             const FastIntervals& intervals,
                             const std::vector<std::size_t>& candidates,
                             const ActiveBitmap& active,
                             std::span<const std::size_t> count_active,
                             std::span<const std::size_t> reserved, double speed,
                             Arena& scratch) {
  FastRound round;
  round.net.set_scratch_arena(&scratch);
  const std::size_t interval_count = intervals.count();

  std::size_t live_intervals = 0;
  std::size_t job_edge_count = 0;
  for (std::size_t j = 0; j < interval_count; ++j) {
    if (reserved[j] == 0) continue;
    ++live_intervals;
    job_edge_count += count_active[j];
  }
  round.net.reserve_nodes(2 + candidates.size() + live_intervals);
  round.net.reserve_edges(candidates.size() + job_edge_count + live_intervals);

  round.source = round.net.add_node();
  std::size_t first_job = round.net.add_nodes(candidates.size());
  std::span<std::size_t> interval_node =
      scratch.alloc_array<std::size_t>(interval_count, kNone);
  for (std::size_t j = 0; j < interval_count; ++j) {
    if (reserved[j] > 0) interval_node[j] = round.net.add_node();
  }
  round.sink = round.net.add_node();

  round.source_edges.reserve(candidates.size());
  round.job_edges.resize(candidates.size());
  round.job_edge_interval.resize(candidates.size());
  for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
    std::size_t job = candidates[pos];
    round.source_edges.push_back(
        round.net.add_edge(round.source, first_job + pos, work[job] / speed));
    for (std::size_t j = 0; j < interval_count; ++j) {
      if (reserved[j] == 0 || !active.test(j, job)) continue;
      round.job_edges[pos].push_back(
          round.net.add_edge(first_job + pos, interval_node[j], intervals.length(j)));
      round.job_edge_interval[pos].push_back(j);
    }
  }
  round.interval_sink_edge.assign(interval_count, kNone);
  for (std::size_t j = 0; j < interval_count; ++j) {
    if (reserved[j] == 0) continue;
    round.interval_sink_edge[j] = round.sink_edges.size();
    round.sink_edges.push_back(
        round.net.add_edge(interval_node[j], round.sink,
                           static_cast<double>(reserved[j]) * intervals.length(j)));
    round.sink_edge_interval.push_back(j);
  }
  return round;
}

/// Double-precision counterpart of the exact engine's retract_job_flow: drains
/// `amount` flow entering build-position `bpos`'s job vertex along edge triples.
/// Retractions on the shared source/sink edges are clamped to their current
/// flow, absorbing the ulp-level drift between a job's edge flows and their sum.
std::uint64_t retract_job_flow(FastRound& round, std::size_t bpos, double amount) {
  std::uint64_t operations = 0;
  for (std::size_t idx = 0; idx < round.job_edges[bpos].size(); ++idx) {
    if (amount <= 0.0) break;
    FlowNetwork<double>::EdgeId edge = round.job_edges[bpos][idx];
    double carried = round.net.flow(edge);
    if (carried <= 0.0) continue;
    double delta = std::min(carried, amount);
    std::size_t j = round.job_edge_interval[bpos][idx];
    FlowNetwork<double>::EdgeId source_edge = round.source_edges[bpos];
    FlowNetwork<double>::EdgeId sink_edge =
        round.sink_edges[round.interval_sink_edge[j]];
    round.net.retract_flow(edge, delta);
    round.net.retract_flow(source_edge, std::min(delta, round.net.flow(source_edge)));
    round.net.retract_flow(sink_edge, std::min(delta, round.net.flow(sink_edge)));
    amount -= delta;
    ++operations;
  }
  return operations;
}

}  // namespace

std::size_t FastSchedule::slice_count() const {
  std::size_t total = 0;
  for (const auto& machine : machines) total += machine.size();
  return total;
}

double FastSchedule::energy(const PowerFunction& p) const {
  double total = 0.0;
  for (const auto& machine : machines) {
    for (const FastSlice& slice : machine) {
      total += p.power(slice.speed) * (slice.end - slice.start);
    }
  }
  return total;
}

double FastSchedule::work_on(std::size_t job) const {
  double total = 0.0;
  for (const auto& machine : machines) {
    for (const FastSlice& slice : machine) {
      if (slice.job == job) total += slice.speed * (slice.end - slice.start);
    }
  }
  return total;
}

double FastSchedule::max_speed() const {
  double best = 0.0;
  for (const auto& machine : machines) {
    for (const FastSlice& slice : machine) best = std::max(best, slice.speed);
  }
  return best;
}

std::size_t count_fast_violations(const Instance& instance,
                                  const FastSchedule& schedule, double tolerance) {
  std::size_t violations = 0;
  for (const auto& machine : schedule.machines) {
    std::vector<FastSlice> sorted = machine;
    std::sort(sorted.begin(), sorted.end(),
              [](const FastSlice& a, const FastSlice& b) { return a.start < b.start; });
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const FastSlice& slice = sorted[i];
      if (slice.job >= instance.size()) {
        ++violations;
        continue;
      }
      const Job& job = instance.job(slice.job);
      if (slice.start < job.release.to_double() - tolerance ||
          slice.end > job.deadline.to_double() + tolerance) {
        ++violations;
      }
      if (i + 1 < sorted.size() && sorted[i + 1].start < slice.end - tolerance) {
        ++violations;
      }
    }
  }
  for (std::size_t k = 0; k < instance.size(); ++k) {
    double done = schedule.work_on(k);
    double required = instance.job(k).work.to_double();
    if (std::abs(done - required) > tolerance * (1.0 + required)) ++violations;
  }
  return violations;
}

FastOptimalResult optimal_schedule_fast(const Instance& instance, double epsilon,
                                        obs::TraceSink* trace) {
  FastOptimalOptions options;
  options.epsilon = epsilon;
  return optimal_schedule_fast(instance, options, trace);
}

FastOptimalResult optimal_schedule_fast(const Instance& instance,
                                        const FastOptimalOptions& options,
                                        obs::TraceSink* trace) {
  const double epsilon = options.epsilon;
  check_arg(epsilon > 0.0 && epsilon < 0.1, "optimal_schedule_fast: bad epsilon");
  FastIntervals intervals(instance);
  const std::size_t interval_count = intervals.count();
  const std::size_t m = instance.machines();

  FastOptimalResult result;
  result.schedule.machines.resize(m);
  // Per-solve scratch arena (S46), pooled per thread; see optimal.cpp.
  ScopedArena scratch;
  const std::uint64_t arena_fallback_base = scratch->stats().fallback_allocs;
  // Span before timer: the solve span covers stats.wall_seconds (see optimal.cpp).
  obs::SpanScope solve_span(trace, "optimal_fast.solve");
  obs::ScopedTimer timer;
  result.stats.counters.set("optimal_fast.intervals", interval_count);
  obs::emit(trace, obs::EventKind::kSolveStart, "optimal_fast.solve",
            instance.size(), m);

  std::vector<std::size_t> remaining;
  std::vector<double> work(instance.size(), 0.0);
  for (std::size_t k = 0; k < instance.size(); ++k) {
    work[k] = instance.job(k).work.to_double();
    if (work[k] > 0.0) remaining.push_back(k);
  }

  // Row j, column k: job k active in interval I_j, under the fast path's
  // epsilon-padded containment test (converted endpoints can drift by an ulp).
  ActiveBitmap active(interval_count, instance.size());
  for (std::size_t k = 0; k < instance.size(); ++k) {
    double release = instance.job(k).release.to_double();
    double deadline = instance.job(k).deadline.to_double();
    for (std::size_t j = 0; j < interval_count; ++j) {
      if (release <= intervals.start(j) + 1e-15 &&
          intervals.end(j) <= deadline + 1e-15) {
        active.set(j, k);
      }
    }
  }
  std::span<std::uint64_t> candidate_mask = scratch->alloc_array<std::uint64_t>(
      ActiveBitmap::words_for(instance.size()), std::uint64_t{0});

  std::span<std::size_t> used =
      scratch->alloc_array<std::size_t>(interval_count, std::size_t{0});
  std::span<std::size_t> count_active =
      scratch->alloc_array<std::size_t>(interval_count, std::size_t{0});

  std::uint64_t warm_starts = 0;
  std::uint64_t retracted_units = 0;
  std::uint64_t resume_bfs = 0;

  obs::HistogramData round_us;
  obs::HistogramData rounds_per_phase;
  obs::HistogramData resume_bfs_hist;

  while (!remaining.empty()) {
    poll_cancellation(options.cancel);
    obs::SpanScope phase_span(trace, "optimal_fast.phase");
    std::vector<std::size_t> candidates = remaining;
    std::ranges::fill(candidate_mask, 0);
    for (std::size_t job : candidates) ActiveBitmap::mask_set(candidate_mask, job);
    std::span<std::size_t> reserved =
        scratch->alloc_array<std::size_t>(interval_count, std::size_t{0});
    double speed = 0.0;
    const std::size_t phase_index = result.phase_speeds.size();
    std::size_t rounds = 0;
    obs::emit(trace, obs::EventKind::kPhaseStart, "optimal_fast.phase", phase_index,
              candidates.size());

    FastRound round;
    std::vector<std::size_t> built_pos;  // current candidate pos -> build pos
    bool built = false;

    for (;;) {
      // Round boundary: no half-applied capacity edit is in flight here, so
      // this is the fine-grained cancellation checkpoint (see optimal.cpp).
      poll_cancellation(options.cancel);
      obs::SpanScope round_span(trace, "optimal_fast.round");
      obs::ScopedHistogramTimer round_timer(round_us);
      check_internal(!candidates.empty(),
                     "optimal_schedule_fast: candidate set emptied");
      ++rounds;
      ++result.flow_computations;

      double reserved_time = 0.0;
      double total_work = 0.0;
      for (std::size_t j = 0; j < interval_count; ++j) {
        count_active[j] = active.row_and_popcount(j, candidate_mask);
        const std::size_t r = std::min(count_active[j], m - used[j]);
        if (built && r != reserved[j]) {
          // Reservations only shrink within a phase; clamp to the carried flow
          // so ulp-level drift cannot trip the capacity >= flow precondition.
          FlowNetwork<double>::EdgeId edge =
              round.sink_edges[round.interval_sink_edge[j]];
          double cap = static_cast<double>(r) * intervals.length(j);
          round.net.set_capacity(edge, std::max(cap, round.net.flow(edge)));
        }
        reserved[j] = r;
        reserved_time += static_cast<double>(r) * intervals.length(j);
      }
      for (std::size_t job : candidates) total_work += work[job];
      check_internal(reserved_time > 0.0, "optimal_schedule_fast: no capacity left");
      speed = total_work / reserved_time;

      double flow_value = 0.0;
      if (!built) {
        round = build_fast_network(work, intervals, candidates, active, count_active,
                                   reserved, speed, *scratch);
        built_pos.resize(candidates.size());
        std::iota(built_pos.begin(), built_pos.end(), std::size_t{0});
        built = options.incremental;
        flow_value = round.net.max_flow(round.source, round.sink);
      } else {
        for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
          FlowNetwork<double>::EdgeId edge = round.source_edges[built_pos[pos]];
          double cap = work[candidates[pos]] / speed;
          double excess = round.net.flow(edge) - cap;
          if (excess > 0.0) {
            retracted_units += retract_job_flow(round, built_pos[pos], excess);
          }
          round.net.set_capacity(edge, std::max(cap, round.net.flow(edge)));
        }
        flow_value = round.net.max_flow_resume(round.source, round.sink);
        ++warm_starts;
        resume_bfs += round.net.kernel_stats().bfs_rounds;
        resume_bfs_hist.record(round.net.kernel_stats().bfs_rounds);
        obs::emit(trace, obs::EventKind::kCounter, "optimal_fast.warm_start",
                  phase_index, rounds,
                  static_cast<double>(round.net.kernel_stats().bfs_rounds));
      }
      result.stats.flow_bfs_rounds += round.net.kernel_stats().bfs_rounds;
      result.stats.flow_augmenting_paths += round.net.kernel_stats().augmenting_paths;
      obs::emit(trace, obs::EventKind::kFlowRound, "optimal_fast.round", phase_index,
                rounds, flow_value / reserved_time);
      if (flow_value >= reserved_time * (1.0 - epsilon)) break;

      // Removal rule, epsilon-guarded.
      std::size_t victim = kNone;
      for (std::size_t e = 0; e < round.sink_edges.size() && victim == kNone; ++e) {
        double cap = round.net.capacity(round.sink_edges[e]);
        double gap = cap - round.net.flow(round.sink_edges[e]);
        if (gap <= epsilon * (1.0 + cap)) continue;
        std::size_t j = round.sink_edge_interval[e];
        for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
          const std::size_t bpos = built_pos[pos];
          for (std::size_t idx = 0; idx < round.job_edge_interval[bpos].size(); ++idx) {
            if (round.job_edge_interval[bpos][idx] != j) continue;
            FlowNetwork<double>::EdgeId edge = round.job_edges[bpos][idx];
            if (round.net.flow(edge) < round.net.capacity(edge) * (1.0 - epsilon)) {
              victim = pos;
            }
            break;
          }
          if (victim != kNone) break;
        }
      }
      check_internal(victim != kNone, "optimal_schedule_fast: no removable job found");
      ++result.stats.candidate_removals;
      obs::emit(trace, obs::EventKind::kCandidateRemoved,
                "optimal_fast.lemma4_removal", phase_index, candidates[victim]);
      if (built) {
        FlowNetwork<double>::EdgeId edge = round.source_edges[built_pos[victim]];
        double carried = round.net.flow(edge);
        if (carried > 0.0) {
          retracted_units += retract_job_flow(round, built_pos[victim], carried);
        }
        // Seal the victim's source edge (any sub-epsilon leftover stays, inert).
        round.net.set_capacity(edge, std::max(0.0, round.net.flow(edge)));
        built_pos.erase(built_pos.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      ActiveBitmap::mask_clear(candidate_mask, candidates[victim]);
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(victim));
    }

    obs::emit(trace, obs::EventKind::kPhaseEnd, "optimal_fast.phase", phase_index,
              rounds, speed);
    rounds_per_phase.record(rounds);
    result.phase_speeds.push_back(speed);

    // Extract: per interval, wrap the chunks over the reserved machines.
    for (std::size_t j = 0; j < interval_count; ++j) {
      if (reserved[j] == 0) continue;
      double length = intervals.length(j);
      std::size_t machine = used[j];
      double offset = 0.0;
      for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
        const std::size_t bpos = built_pos[pos];
        for (std::size_t idx = 0; idx < round.job_edge_interval[bpos].size(); ++idx) {
          if (round.job_edge_interval[bpos][idx] != j) continue;
          double duration = std::min(round.net.flow(round.job_edges[bpos][idx]), length);
          while (duration > epsilon * length) {
            double available = length - offset;
            if (available <= 1e-12 * length) {
              // Sub-rounding remainder of the machine window: move on before it
              // collapses into a zero-length slice (ulp of the absolute time can
              // exceed the remainder).
              ++machine;
              offset = 0.0;
              continue;
            }
            double piece = std::min(duration, available);
            double begin = intervals.start(j) + offset;
            double finish = intervals.start(j) + std::min(offset + piece, length);
            if (begin < finish) {
              result.schedule.machines[machine].push_back(
                  FastSlice{begin, finish, speed, candidates[pos]});
            }
            offset += piece;
            duration -= piece;
            if (offset >= length * (1.0 - 1e-12)) {
              ++machine;
              offset = 0.0;
            }
          }
          break;
        }
      }
      used[j] += reserved[j];
    }

    // Drop the scheduled jobs; the candidate mask holds exactly the phase's jobs.
    std::vector<std::size_t> next;
    next.reserve(remaining.size() - candidates.size());
    for (std::size_t job : remaining) {
      if (!ActiveBitmap::mask_test(candidate_mask, job)) next.push_back(job);
    }
    remaining = std::move(next);
  }
  result.stats.phases = result.phase_speeds.size();
  result.stats.flow_computations = result.flow_computations;
  result.stats.counters.set("flow.warm_starts", warm_starts);
  result.stats.counters.set("flow.retracted_units", retracted_units);
  result.stats.counters.set("flow.resume_bfs", resume_bfs);
  const Arena::Stats& arena_stats = scratch->stats();
  result.stats.counters.set("mem.arena_bytes", arena_stats.capacity_bytes);
  result.stats.counters.set("mem.arena_reuses", arena_stats.reuses);
  result.stats.counters.set("mem.fallback_allocs",
                            arena_stats.fallback_allocs - arena_fallback_base);
  obs::emit(trace, obs::EventKind::kCounter, "optimal_fast.arena",
            arena_stats.capacity_bytes,
            arena_stats.fallback_allocs - arena_fallback_base,
            static_cast<double>(arena_stats.reuses));
  if (!round_us.empty()) result.stats.histograms["optimal_fast.round_us"] = round_us;
  if (!rounds_per_phase.empty()) {
    result.stats.histograms["optimal_fast.rounds_per_phase"] = rounds_per_phase;
  }
  if (!resume_bfs_hist.empty()) {
    result.stats.histograms["optimal_fast.resume_bfs"] = resume_bfs_hist;
  }
  obs::emit(trace, obs::EventKind::kSolveEnd, "optimal_fast.solve",
            result.phase_speeds.size(), result.flow_computations);
  result.stats.wall_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace mpss
