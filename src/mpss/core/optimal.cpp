#include "mpss/core/optimal.hpp"

#include <algorithm>

#include "mpss/core/mcnaughton.hpp"
#include "mpss/flow/dinic.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/error.hpp"
#include "mpss/util/random.hpp"

namespace mpss {
namespace {

/// One phase-round flow network G(J, m, s) plus the bookkeeping needed to read
/// per-(job, interval) processing times back out of the solved flow.
struct RoundNetwork {
  FlowNetwork<Q> net;
  std::size_t source = 0;
  std::size_t sink = 0;
  // edge ids, addressed by candidate-set position / interval index
  std::vector<FlowNetwork<Q>::EdgeId> source_edges;           // u_0 -> u_k
  std::vector<std::vector<std::size_t>> job_edge_interval;    // per job: interval j
  std::vector<std::vector<FlowNetwork<Q>::EdgeId>> job_edges; // per job: edge ids
  std::vector<FlowNetwork<Q>::EdgeId> sink_edges;             // v_j -> v_0 (mj > 0)
  std::vector<std::size_t> sink_edge_interval;                // interval j of each
};

/// Builds G(J, m, s): source -> job vertices (capacity w_k / s), job -> interval
/// vertices for the intervals where the job is active and processors are reserved
/// (capacity |I_j|), interval -> sink (capacity m_j * |I_j|).
RoundNetwork build_network(const Instance& instance,
                           const IntervalDecomposition& intervals,
                           const std::vector<std::size_t>& candidates,
                           const std::vector<std::vector<bool>>& active,
                           const std::vector<std::size_t>& reserved, const Q& speed) {
  RoundNetwork round;
  const std::size_t interval_count = intervals.count();

  round.source = round.net.add_node();
  std::size_t first_job_node = round.net.add_nodes(candidates.size());

  std::vector<std::size_t> interval_node(interval_count, static_cast<std::size_t>(-1));
  for (std::size_t j = 0; j < interval_count; ++j) {
    if (reserved[j] > 0) interval_node[j] = round.net.add_node();
  }
  round.sink = round.net.add_node();

  round.source_edges.reserve(candidates.size());
  round.job_edges.resize(candidates.size());
  round.job_edge_interval.resize(candidates.size());
  for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
    std::size_t job = candidates[pos];
    round.source_edges.push_back(round.net.add_edge(
        round.source, first_job_node + pos, instance.job(job).work / speed));
    for (std::size_t j = 0; j < interval_count; ++j) {
      if (reserved[j] == 0 || !active[job][j]) continue;
      round.job_edges[pos].push_back(
          round.net.add_edge(first_job_node + pos, interval_node[j], intervals.length(j)));
      round.job_edge_interval[pos].push_back(j);
    }
  }
  for (std::size_t j = 0; j < interval_count; ++j) {
    if (reserved[j] == 0) continue;
    round.sink_edges.push_back(round.net.add_edge(
        interval_node[j], round.sink,
        intervals.length(j) * Q(static_cast<std::int64_t>(reserved[j]))));
    round.sink_edge_interval.push_back(j);
  }
  return round;
}

}  // namespace

Q OptimalResult::speed_of_job(std::size_t job) const {
  for (const PhaseInfo& phase : phases) {
    if (std::find(phase.jobs.begin(), phase.jobs.end(), job) != phase.jobs.end()) {
      return phase.speed;
    }
  }
  return Q(0);  // zero-work jobs belong to no phase
}

OptimalResult optimal_schedule(const Instance& instance) {
  return optimal_schedule(instance, OptimalOptions{});
}

OptimalResult optimal_schedule(const Instance& instance, const OptimalOptions& options) {
  const bool paper_rule =
      options.removal_policy == OptimalOptions::RemovalPolicy::kPaperRule;
  obs::TraceSink* trace = options.trace;
  Xoshiro256 ablation_rng(options.ablation_seed);
  IntervalDecomposition intervals(instance.jobs());
  const std::size_t interval_count = intervals.count();
  const std::size_t m = instance.machines();

  OptimalResult result{Schedule(m), intervals, {}, 0, {}};
  obs::ScopedTimer timer;
  result.stats.counters.set("optimal.intervals", interval_count);
  obs::emit(trace, obs::EventKind::kSolveStart, "optimal.solve", instance.size(), m);

  // Jobs with positive work; zero-work jobs are trivially complete.
  std::vector<std::size_t> remaining;
  for (std::size_t k = 0; k < instance.size(); ++k) {
    if (instance.job(k).work.sign() > 0) remaining.push_back(k);
  }

  // active[k][j]: is job k active in interval I_j (I_j inside its window)?
  std::vector<std::vector<bool>> active(instance.size(),
                                        std::vector<bool>(interval_count, false));
  for (std::size_t k = 0; k < instance.size(); ++k) {
    for (std::size_t j = 0; j < interval_count; ++j) {
      active[k][j] = intervals.active(instance.job(k), j);
    }
  }

  // used[j]: processors already occupied in I_j by earlier (faster) phases.
  std::vector<std::size_t> used(interval_count, 0);

  while (!remaining.empty()) {
    // ---- one phase: identify the next job set J_i and its speed s_i ----
    std::vector<std::size_t> candidates = remaining;  // invariant: J_i is a subset
    std::size_t rounds = 0;
    const std::size_t phase_index = result.phases.size();
    obs::emit(trace, obs::EventKind::kPhaseStart, "optimal.phase", phase_index,
              candidates.size());

    std::vector<std::size_t> reserved(interval_count, 0);
    Q speed;
    RoundNetwork round;

    for (;;) {
      check_internal(!candidates.empty(),
                     "optimal_schedule: candidate set emptied; Lemma 4 invariant broken");
      ++rounds;
      ++result.flow_computations;

      // Reserve m_j = min(n_j, m - used_j) processors per interval (Lemma 3).
      std::vector<std::size_t> count_active(interval_count, 0);
      for (std::size_t job : candidates) {
        for (std::size_t j = 0; j < interval_count; ++j) {
          if (active[job][j]) ++count_active[j];
        }
      }
      Q reserved_time;  // P
      Q work;           // W
      for (std::size_t j = 0; j < interval_count; ++j) {
        reserved[j] = std::min(count_active[j], m - used[j]);
        if (reserved[j] > 0) {
          reserved_time += intervals.length(j) * Q(static_cast<std::int64_t>(reserved[j]));
        }
      }
      for (std::size_t job : candidates) work += instance.job(job).work;
      check_internal(reserved_time.sign() > 0,
                     "optimal_schedule: no processing capacity left for pending jobs");
      speed = work / reserved_time;

      round = build_network(instance, intervals, candidates, active, reserved, speed);
      Q flow_value = round.net.max_flow(round.source, round.sink);
      result.stats.flow_bfs_rounds += round.net.kernel_stats().bfs_rounds;
      result.stats.flow_augmenting_paths += round.net.kernel_stats().augmenting_paths;
      // value = attained flow as a fraction of the target F_G = W/s = P; exactly
      // 1.0 on the round that closes the phase.
      obs::emit(trace, obs::EventKind::kFlowRound, "optimal.round", phase_index,
                rounds, (flow_value / reserved_time).to_double());

      // Target F_G = W / s = P: all source and sink edges saturated.
      if (flow_value == reserved_time) break;

      if (!paper_rule) {
        // Ablated removal (experiment E12): drop a random candidate. Feasibility
        // of the final schedule survives; optimality does not.
        std::size_t victim = ablation_rng.below(candidates.size());
        ++result.stats.candidate_removals;
        obs::emit(trace, obs::EventKind::kCandidateRemoved, "optimal.ablated_removal",
                  phase_index, candidates[victim]);
        candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(victim));
        continue;
      }

      // Lemma 4: pick an unsaturated sink edge (v_j, v_0), then a job active in
      // I_j whose edge (u_k, v_j) is below capacity; that job is not in J_i.
      std::size_t victim_pos = static_cast<std::size_t>(-1);
      for (std::size_t e = 0; e < round.sink_edges.size() && victim_pos == static_cast<std::size_t>(-1); ++e) {
        if (round.net.saturated(round.sink_edges[e])) continue;
        std::size_t j = round.sink_edge_interval[e];
        for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
          for (std::size_t idx = 0; idx < round.job_edge_interval[pos].size(); ++idx) {
            if (round.job_edge_interval[pos][idx] != j) continue;
            if (!round.net.saturated(round.job_edges[pos][idx])) victim_pos = pos;
            break;  // a job has at most one edge per interval
          }
          if (victim_pos != static_cast<std::size_t>(-1)) break;
        }
      }
      check_internal(victim_pos != static_cast<std::size_t>(-1),
                     "optimal_schedule: flow below target but no removable job found");
      ++result.stats.candidate_removals;
      obs::emit(trace, obs::EventKind::kCandidateRemoved, "optimal.lemma4_removal",
                phase_index, candidates[victim_pos]);
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(victim_pos));
    }

    // ---- phase found: record it and extend the schedule ----
    check_internal(!paper_rule || result.phases.empty() ||
                       speed < result.phases.back().speed,
                   "optimal_schedule: phase speeds must strictly decrease");

    PhaseInfo phase;
    phase.jobs = candidates;
    phase.speed = speed;
    phase.machines_per_interval.assign(interval_count, 0);
    phase.rounds = rounds;

    // Per interval: chunks t_kj (flow on (u_k, v_j)) wrapped onto the reserved
    // processors, which are the lowest-numbered free ones (used_j .. used_j+m_j-1).
    for (std::size_t j = 0; j < interval_count; ++j) {
      if (reserved[j] == 0) continue;
      std::vector<Chunk> chunks;
      for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
        for (std::size_t idx = 0; idx < round.job_edge_interval[pos].size(); ++idx) {
          if (round.job_edge_interval[pos][idx] != j) continue;
          Q t = round.net.flow(round.job_edges[pos][idx]);
          if (t.sign() > 0) chunks.push_back(Chunk{candidates[pos], std::move(t)});
          break;
        }
      }
      // All sink edges are saturated (F == P), so every reserved interval carries
      // exactly m_j * |I_j| units of processing time.
      check_internal(!chunks.empty(),
                     "optimal_schedule: reserved interval received no flow");
      phase.machines_per_interval[j] = reserved[j];
      mcnaughton_pack(result.schedule, intervals.start(j), intervals.length(j), used[j],
                      reserved[j], speed, chunks);
      used[j] += reserved[j];
    }
    obs::emit(trace, obs::EventKind::kPhaseEnd, "optimal.phase", phase_index, rounds,
              speed.to_double());
    result.phases.push_back(std::move(phase));

    // Drop the scheduled jobs from the remaining set.
    std::vector<std::size_t> next;
    next.reserve(remaining.size() - candidates.size());
    for (std::size_t job : remaining) {
      if (std::find(candidates.begin(), candidates.end(), job) == candidates.end()) {
        next.push_back(job);
      }
    }
    remaining = std::move(next);
  }

  result.stats.phases = result.phases.size();
  result.stats.flow_computations = result.flow_computations;
  obs::emit(trace, obs::EventKind::kSolveEnd, "optimal.solve", result.phases.size(),
            result.flow_computations);
  result.stats.wall_seconds = timer.elapsed_seconds();
  return result;
}

double optimal_energy(const Instance& instance, const PowerFunction& p) {
  return optimal_schedule(instance).schedule.energy(p);
}

}  // namespace mpss
