#include "mpss/core/optimal.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "mpss/core/mcnaughton.hpp"
#include "mpss/flow/dinic.hpp"
#include "mpss/obs/histogram.hpp"
#include "mpss/obs/span.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/arena.hpp"
#include "mpss/util/error.hpp"
#include "mpss/util/random.hpp"

namespace mpss {
namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// One phase's flow network G(J, m, s) plus the bookkeeping needed to read
/// per-(job, interval) processing times back out of the solved flow and to
/// edit capacities in place between rounds. Edge vectors are addressed by
/// position in the candidate set the network was *built* for; on the
/// incremental path the round loop maps current candidate positions back to
/// build positions.
struct RoundNetwork {
  FlowNetwork<Q> net;
  std::size_t source = 0;
  std::size_t sink = 0;
  std::vector<FlowNetwork<Q>::EdgeId> source_edges;           // u_0 -> u_k
  std::vector<std::vector<std::size_t>> job_edge_interval;    // per job: interval j
  std::vector<std::vector<FlowNetwork<Q>::EdgeId>> job_edges; // per job: edge ids
  std::vector<FlowNetwork<Q>::EdgeId> sink_edges;             // v_j -> v_0 (mj > 0)
  std::vector<std::size_t> sink_edge_interval;                // interval j of each
  std::vector<std::size_t> interval_sink_edge;                // inverse (kNone if none)
};

/// Builds G(J, m, s): source -> job vertices (capacity w_k / s), job -> interval
/// vertices for the intervals where the job is active and processors are reserved
/// (capacity |I_j|), interval -> sink (capacity m_j * |I_j|).
RoundNetwork build_network(const Instance& instance,
                           const IntervalDecomposition& intervals,
                           const std::vector<std::size_t>& candidates,
                           const ActiveBitmap& active,
                           std::span<const std::size_t> count_active,
                           std::span<const std::size_t> reserved, const Q& speed,
                           Arena& scratch) {
  RoundNetwork round;
  round.net.set_scratch_arena(&scratch);
  const std::size_t interval_count = intervals.count();

  std::size_t live_intervals = 0;
  std::size_t job_edge_count = 0;
  for (std::size_t j = 0; j < interval_count; ++j) {
    if (reserved[j] == 0) continue;
    ++live_intervals;
    job_edge_count += count_active[j];
  }
  round.net.reserve_nodes(2 + candidates.size() + live_intervals);
  round.net.reserve_edges(candidates.size() + job_edge_count + live_intervals);

  round.source = round.net.add_node();
  std::size_t first_job_node = round.net.add_nodes(candidates.size());

  std::span<std::size_t> interval_node =
      scratch.alloc_array<std::size_t>(interval_count, kNone);
  for (std::size_t j = 0; j < interval_count; ++j) {
    if (reserved[j] > 0) interval_node[j] = round.net.add_node();
  }
  round.sink = round.net.add_node();

  round.source_edges.reserve(candidates.size());
  round.job_edges.resize(candidates.size());
  round.job_edge_interval.resize(candidates.size());
  for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
    std::size_t job = candidates[pos];
    round.source_edges.push_back(round.net.add_edge(
        round.source, first_job_node + pos, instance.job(job).work / speed));
    for (std::size_t j = 0; j < interval_count; ++j) {
      if (reserved[j] == 0 || !active.test(j, job)) continue;
      round.job_edges[pos].push_back(
          round.net.add_edge(first_job_node + pos, interval_node[j], intervals.length(j)));
      round.job_edge_interval[pos].push_back(j);
    }
  }
  round.interval_sink_edge.assign(interval_count, kNone);
  for (std::size_t j = 0; j < interval_count; ++j) {
    if (reserved[j] == 0) continue;
    round.interval_sink_edge[j] = round.sink_edges.size();
    round.sink_edges.push_back(round.net.add_edge(
        interval_node[j], round.sink,
        intervals.length(j) * Q(static_cast<std::int64_t>(reserved[j]))));
    round.sink_edge_interval.push_back(j);
  }
  return round;
}

/// Retracts `amount` flow entering build-position `bpos`'s job vertex, greedily
/// over its job->interval edges. Every unit of flow sits on a length-3 path
/// (source, u_k, v_j, sink) because the network is strictly layered, so each
/// retraction is an edge triple and no general flow decomposition is needed.
/// Returns the number of per-edge-triple retraction operations performed (the
/// flow.retracted_units telemetry).
std::uint64_t retract_job_flow(RoundNetwork& round, std::size_t bpos, Q amount) {
  std::uint64_t operations = 0;
  for (std::size_t idx = 0; idx < round.job_edges[bpos].size(); ++idx) {
    if (!(amount.sign() > 0)) break;
    FlowNetwork<Q>::EdgeId edge = round.job_edges[bpos][idx];
    Q carried = round.net.flow(edge);
    if (!(carried.sign() > 0)) continue;
    Q delta = carried < amount ? carried : amount;
    std::size_t j = round.job_edge_interval[bpos][idx];
    round.net.retract_flow(edge, delta);
    round.net.retract_flow(round.source_edges[bpos], delta);
    round.net.retract_flow(round.sink_edges[round.interval_sink_edge[j]], delta);
    amount -= delta;
    ++operations;
  }
  check_internal(amount.sign() == 0, "optimal_schedule: flow retraction left residue");
  return operations;
}

}  // namespace

Q OptimalResult::speed_of_job(std::size_t job) const {
  if (job < job_phase.size()) {
    std::size_t phase = job_phase[job];
    return phase == kNoPhase ? Q(0) : phases[phase].speed;
  }
  // Indices past the instance (or hand-built results without the index): scan.
  for (const PhaseInfo& phase : phases) {
    if (std::find(phase.jobs.begin(), phase.jobs.end(), job) != phase.jobs.end()) {
      return phase.speed;
    }
  }
  return Q(0);  // zero-work jobs belong to no phase
}

OptimalResult optimal_schedule(const Instance& instance) {
  return optimal_schedule(instance, OptimalOptions{});
}

OptimalResult optimal_schedule(const Instance& instance, const OptimalOptions& options,
                               obs::TraceSink* trace) {
  const bool paper_rule =
      options.removal_policy == OptimalOptions::RemovalPolicy::kPaperRule;
  Xoshiro256 ablation_rng(options.ablation_seed);
  IntervalDecomposition intervals(instance.jobs());
  const std::size_t interval_count = intervals.count();
  const std::size_t m = instance.machines();

  OptimalResult result{Schedule(m), intervals, {}, 0, {}, {}};
  // Per-solve scratch arena (S46): pooled per thread, so repeat solves on a
  // BatchSolver worker reuse one warmed arena. Declared before any
  // RoundNetwork so the networks' scratch spans die first. The fallback-alloc
  // delta over this solve is the steady-state-allocation telemetry.
  ScopedArena scratch;
  const std::uint64_t arena_fallback_base = scratch->stats().fallback_allocs;
  // Span opens before the timer starts and closes after the timer is read, so
  // the solve span provably covers stats.wall_seconds (the --report coverage
  // criterion).
  obs::SpanScope solve_span(trace, "optimal.solve");
  obs::ScopedTimer timer;
  result.stats.counters.set("optimal.intervals", interval_count);
  obs::emit(trace, obs::EventKind::kSolveStart, "optimal.solve", instance.size(), m);

  // Jobs with positive work; zero-work jobs are trivially complete.
  std::vector<std::size_t> remaining;
  for (std::size_t k = 0; k < instance.size(); ++k) {
    if (instance.job(k).work.sign() > 0) remaining.push_back(k);
  }

  // Row j, column k: is job k active in interval I_j (I_j inside its window)?
  ActiveBitmap active = make_active_bitmap(instance.jobs(), intervals);
  // Bit k set iff job k is in the current phase's candidate set; ANDed against
  // bitmap rows for the per-round n_j recount, and doubling as the membership
  // test when the phase's jobs are dropped from `remaining`. Fixed-shape
  // interval tables live in the scratch arena.
  std::span<std::uint64_t> candidate_mask = scratch->alloc_array<std::uint64_t>(
      ActiveBitmap::words_for(instance.size()), std::uint64_t{0});

  // used[j]: processors already occupied in I_j by earlier (faster) phases.
  std::span<std::size_t> used =
      scratch->alloc_array<std::size_t>(interval_count, std::size_t{0});
  std::span<std::size_t> count_active =
      scratch->alloc_array<std::size_t>(interval_count, std::size_t{0});

  std::uint64_t warm_starts = 0;
  std::uint64_t retracted_units = 0;
  std::uint64_t resume_bfs = 0;

  // Per-solve distributions (S43): folded into stats.histograms on return.
  obs::HistogramData round_us;          // wall microseconds per flow round
  obs::HistogramData rounds_per_phase;  // Lemma-4 chain length per phase
  obs::HistogramData resume_bfs_hist;   // BFS passes per warm-started resume

  while (!remaining.empty()) {
    // ---- one phase: identify the next job set J_i and its speed s_i ----
    poll_cancellation(options.cancel);
    obs::SpanScope phase_span(trace, "optimal.phase");
    std::vector<std::size_t> candidates = remaining;  // invariant: J_i is a subset
    std::ranges::fill(candidate_mask, 0);
    for (std::size_t job : candidates) ActiveBitmap::mask_set(candidate_mask, job);
    std::size_t rounds = 0;
    const std::size_t phase_index = result.phases.size();
    obs::emit(trace, obs::EventKind::kPhaseStart, "optimal.phase", phase_index,
              candidates.size());

    std::span<std::size_t> reserved =
        scratch->alloc_array<std::size_t>(interval_count, std::size_t{0});
    Q speed;
    RoundNetwork round;
    // Maps current candidate position -> position at network build time (the
    // index into round.source_edges / round.job_edges). Identity right after a
    // build; kept in sync with `candidates` erases on the incremental path.
    std::vector<std::size_t> built_pos;
    bool built = false;      // round.net holds a usable network (incremental only)
    bool canonical = true;   // round.net's flow came from a from-zero solve

    for (;;) {
      // Round boundary: the network is consistent here (no half-applied
      // retraction), making this the fine-grained cancellation checkpoint.
      poll_cancellation(options.cancel);
      obs::SpanScope round_span(trace, "optimal.round");
      obs::ScopedHistogramTimer round_timer(round_us);
      check_internal(!candidates.empty(),
                     "optimal_schedule: candidate set emptied; Lemma 4 invariant broken");
      ++rounds;
      ++result.flow_computations;

      // Reserve m_j = min(n_j, m - used_j) processors per interval (Lemma 3).
      // Within a phase n_j only shrinks, so on the incremental path a changed
      // reservation is a capacity *decrease* on an existing sink edge; the
      // victim's retraction already lowered the carried flow below the new cap
      // (see DESIGN.md "Warm-start invariant").
      Q reserved_time;  // P
      Q work;           // W
      for (std::size_t j = 0; j < interval_count; ++j) {
        count_active[j] = active.row_and_popcount(j, candidate_mask);
        const std::size_t r = std::min(count_active[j], m - used[j]);
        if (built && r != reserved[j]) {
          round.net.set_capacity(round.sink_edges[round.interval_sink_edge[j]],
                                 intervals.length(j) * Q(static_cast<std::int64_t>(r)));
        }
        reserved[j] = r;
        if (r > 0) {
          reserved_time += intervals.length(j) * Q(static_cast<std::int64_t>(r));
        }
      }
      for (std::size_t job : candidates) work += instance.job(job).work;
      check_internal(reserved_time.sign() > 0,
                     "optimal_schedule: no processing capacity left for pending jobs");
      speed = work / reserved_time;

      Q flow_value;
      if (!built) {
        round = build_network(instance, intervals, candidates, active, count_active,
                              reserved, speed, *scratch);
        built_pos.resize(candidates.size());
        std::iota(built_pos.begin(), built_pos.end(), std::size_t{0});
        built = options.incremental;  // rebuild path: tear down every round
        flow_value = round.net.max_flow(round.source, round.sink);
        canonical = true;
      } else {
        // Warm start: rescale the surviving source capacities to the new speed
        // and resume Dinic from the carried flow. The new speed can *exceed*
        // the old one (a removal can shed more reserved time than work), so a
        // source edge may have to drain down to its shrunken capacity first.
        for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
          FlowNetwork<Q>::EdgeId edge = round.source_edges[built_pos[pos]];
          Q cap = instance.job(candidates[pos]).work / speed;
          Q excess = round.net.flow(edge) - cap;
          if (excess.sign() > 0) {
            retracted_units += retract_job_flow(round, built_pos[pos], excess);
          }
          round.net.set_capacity(edge, cap);
        }
        flow_value = round.net.max_flow_resume(round.source, round.sink);
        ++warm_starts;
        resume_bfs += round.net.kernel_stats().bfs_rounds;
        resume_bfs_hist.record(round.net.kernel_stats().bfs_rounds);
        canonical = false;
        obs::emit(trace, obs::EventKind::kCounter, "optimal.warm_start", phase_index,
                  rounds, static_cast<double>(round.net.kernel_stats().bfs_rounds));
      }
      result.stats.flow_bfs_rounds += round.net.kernel_stats().bfs_rounds;
      result.stats.flow_augmenting_paths += round.net.kernel_stats().augmenting_paths;
      // value = attained flow as a fraction of the target F_G = W/s = P; exactly
      // 1.0 on the round that closes the phase.
      obs::emit(trace, obs::EventKind::kFlowRound, "optimal.round", phase_index,
                rounds, (flow_value / reserved_time).to_double());

      // Target F_G = W / s = P: all source and sink edges saturated.
      if (flow_value == reserved_time) {
        if (!canonical) {
          // The resumed flow has the optimal *value* but not necessarily the
          // rebuild path's per-edge split, and the schedule is extracted from
          // per-edge flows. Re-solve from zero on the reused network: dead
          // vertices (sealed source edges, drained intervals) are invisible to
          // Dinic, so this reproduces the fresh-build flow bit for bit.
          Q confirm = round.net.max_flow(round.source, round.sink);
          result.stats.flow_bfs_rounds += round.net.kernel_stats().bfs_rounds;
          result.stats.flow_augmenting_paths +=
              round.net.kernel_stats().augmenting_paths;
          check_internal(confirm == flow_value,
                         "optimal_schedule: canonical re-solve changed the flow value");
        }
        break;
      }

      std::size_t victim_pos = kNone;
      if (paper_rule) {
        // Lemma 4: pick an unsaturated sink edge (v_j, v_0), then a job active in
        // I_j whose edge (u_k, v_j) is below capacity; that job is not in J_i.
        for (std::size_t e = 0; e < round.sink_edges.size() && victim_pos == kNone; ++e) {
          if (round.net.saturated(round.sink_edges[e])) continue;
          std::size_t j = round.sink_edge_interval[e];
          for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
            const std::size_t bpos = built_pos[pos];
            for (std::size_t idx = 0; idx < round.job_edge_interval[bpos].size(); ++idx) {
              if (round.job_edge_interval[bpos][idx] != j) continue;
              if (!round.net.saturated(round.job_edges[bpos][idx])) victim_pos = pos;
              break;  // a job has at most one edge per interval
            }
            if (victim_pos != kNone) break;
          }
        }
        check_internal(victim_pos != kNone,
                       "optimal_schedule: flow below target but no removable job found");
        ++result.stats.candidate_removals;
        obs::emit(trace, obs::EventKind::kCandidateRemoved, "optimal.lemma4_removal",
                  phase_index, candidates[victim_pos]);
      } else {
        // Ablated removal (experiment E12): drop a random candidate. Feasibility
        // of the final schedule survives; optimality does not.
        victim_pos = ablation_rng.below(candidates.size());
        ++result.stats.candidate_removals;
        obs::emit(trace, obs::EventKind::kCandidateRemoved, "optimal.ablated_removal",
                  phase_index, candidates[victim_pos]);
      }

      if (built) {
        // Retract the victim's flow (leaving a feasible flow on the surviving
        // jobs) and seal its source edge so resumed searches cannot refill it.
        FlowNetwork<Q>::EdgeId edge = round.source_edges[built_pos[victim_pos]];
        Q carried = round.net.flow(edge);
        if (carried.sign() > 0) {
          retracted_units += retract_job_flow(round, built_pos[victim_pos], carried);
        }
        round.net.set_capacity(edge, Q(0));
        built_pos.erase(built_pos.begin() + static_cast<std::ptrdiff_t>(victim_pos));
      }
      ActiveBitmap::mask_clear(candidate_mask, candidates[victim_pos]);
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(victim_pos));
    }

    // ---- phase found: record it and extend the schedule ----
    check_internal(!paper_rule || result.phases.empty() ||
                       speed < result.phases.back().speed,
                   "optimal_schedule: phase speeds must strictly decrease");

    PhaseInfo phase;
    phase.jobs = candidates;
    phase.speed = speed;
    phase.machines_per_interval.assign(interval_count, 0);
    phase.rounds = rounds;

    // Per interval: chunks t_kj (flow on (u_k, v_j)) wrapped onto the reserved
    // processors, which are the lowest-numbered free ones (used_j .. used_j+m_j-1).
    for (std::size_t j = 0; j < interval_count; ++j) {
      if (reserved[j] == 0) continue;
      std::vector<Chunk> chunks;
      for (std::size_t pos = 0; pos < candidates.size(); ++pos) {
        const std::size_t bpos = built_pos[pos];
        for (std::size_t idx = 0; idx < round.job_edge_interval[bpos].size(); ++idx) {
          if (round.job_edge_interval[bpos][idx] != j) continue;
          Q t = round.net.flow(round.job_edges[bpos][idx]);
          if (t.sign() > 0) chunks.push_back(Chunk{candidates[pos], std::move(t)});
          break;
        }
      }
      // All sink edges are saturated (F == P), so every reserved interval carries
      // exactly m_j * |I_j| units of processing time.
      check_internal(!chunks.empty(),
                     "optimal_schedule: reserved interval received no flow");
      phase.machines_per_interval[j] = reserved[j];
      mcnaughton_pack(result.schedule, intervals.start(j), intervals.length(j), used[j],
                      reserved[j], speed, chunks);
      used[j] += reserved[j];
    }
    obs::emit(trace, obs::EventKind::kPhaseEnd, "optimal.phase", phase_index, rounds,
              speed.to_double());
    rounds_per_phase.record(rounds);
    result.phases.push_back(std::move(phase));

    // Drop the scheduled jobs from the remaining set; the candidate mask holds
    // exactly the phase's jobs at this point, giving an O(1) membership test.
    std::vector<std::size_t> next;
    next.reserve(remaining.size() - candidates.size());
    for (std::size_t job : remaining) {
      if (!ActiveBitmap::mask_test(candidate_mask, job)) next.push_back(job);
    }
    remaining = std::move(next);
  }

  result.job_phase.assign(instance.size(), OptimalResult::kNoPhase);
  for (std::size_t i = 0; i < result.phases.size(); ++i) {
    for (std::size_t job : result.phases[i].jobs) result.job_phase[job] = i;
  }

  result.stats.phases = result.phases.size();
  result.stats.flow_computations = result.flow_computations;
  result.stats.counters.set("flow.warm_starts", warm_starts);
  result.stats.counters.set("flow.retracted_units", retracted_units);
  result.stats.counters.set("flow.resume_bfs", resume_bfs);
  const Arena::Stats& arena_stats = scratch->stats();
  result.stats.counters.set("mem.arena_bytes", arena_stats.capacity_bytes);
  result.stats.counters.set("mem.arena_reuses", arena_stats.reuses);
  result.stats.counters.set("mem.fallback_allocs",
                            arena_stats.fallback_allocs - arena_fallback_base);
  obs::emit(trace, obs::EventKind::kCounter, "optimal.arena",
            arena_stats.capacity_bytes,
            arena_stats.fallback_allocs - arena_fallback_base,
            static_cast<double>(arena_stats.reuses));
  if (!round_us.empty()) result.stats.histograms["optimal.round_us"] = round_us;
  if (!rounds_per_phase.empty()) {
    result.stats.histograms["optimal.rounds_per_phase"] = rounds_per_phase;
  }
  if (!resume_bfs_hist.empty()) {
    result.stats.histograms["optimal.resume_bfs"] = resume_bfs_hist;
  }
  obs::emit(trace, obs::EventKind::kSolveEnd, "optimal.solve", result.phases.size(),
            result.flow_computations);
  result.stats.wall_seconds = timer.elapsed_seconds();
  return result;
}

double optimal_energy(const Instance& instance, const PowerFunction& p) {
  return optimal_schedule(instance).schedule.energy(p);
}

}  // namespace mpss
