#include "mpss/core/intervals.hpp"

#include <algorithm>

#include "mpss/util/error.hpp"

namespace mpss {

IntervalDecomposition::IntervalDecomposition(std::span<const Job> jobs,
                                             std::span<const Q> extra_points) {
  points_.reserve(jobs.size() * 2 + extra_points.size());
  for (const Job& job : jobs) {
    points_.push_back(job.release);
    points_.push_back(job.deadline);
  }
  for (const Q& point : extra_points) points_.push_back(point);
  std::sort(points_.begin(), points_.end());
  points_.erase(std::unique(points_.begin(), points_.end()), points_.end());
  if (points_.size() == 1) points_.clear();  // a single point spans no interval
}

std::size_t IntervalDecomposition::interval_of(const Q& t) const {
  check_arg(!points_.empty() && points_.front() <= t && t < points_.back(),
            "IntervalDecomposition::interval_of: time outside horizon");
  // upper_bound returns the first point > t; the interval starts one before it.
  auto it = std::upper_bound(points_.begin(), points_.end(), t);
  return static_cast<std::size_t>(it - points_.begin()) - 1;
}

ActiveBitmap make_active_bitmap(std::span<const Job> jobs,
                                const IntervalDecomposition& intervals) {
  ActiveBitmap active(intervals.count(), jobs.size());
  for (std::size_t j = 0; j < intervals.count(); ++j) {
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      if (intervals.active(jobs[k], j)) active.set(j, k);
    }
  }
  return active;
}

}  // namespace mpss
