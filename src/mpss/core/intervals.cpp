#include "mpss/core/intervals.hpp"

#include <algorithm>
#include <bit>

#include "mpss/util/error.hpp"

namespace mpss {

IntervalDecomposition::IntervalDecomposition(std::span<const Job> jobs,
                                             std::span<const Q> extra_points) {
  points_.reserve(jobs.size() * 2 + extra_points.size());
  for (const Job& job : jobs) {
    points_.push_back(job.release);
    points_.push_back(job.deadline);
  }
  for (const Q& point : extra_points) points_.push_back(point);
  std::sort(points_.begin(), points_.end());
  points_.erase(std::unique(points_.begin(), points_.end()), points_.end());
  if (points_.size() == 1) points_.clear();  // a single point spans no interval
}

std::size_t IntervalDecomposition::interval_of(const Q& t) const {
  check_arg(!points_.empty() && points_.front() <= t && t < points_.back(),
            "IntervalDecomposition::interval_of: time outside horizon");
  // upper_bound returns the first point > t; the interval starts one before it.
  auto it = std::upper_bound(points_.begin(), points_.end(), t);
  return static_cast<std::size_t>(it - points_.begin()) - 1;
}

ActiveBitmap::ActiveBitmap(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_words_(words_for(cols)),
      words_(rows * row_words_, 0) {}

void ActiveBitmap::set(std::size_t row, std::size_t col) {
  check_arg(row < rows_ && col < cols_, "ActiveBitmap::set: index out of range");
  words_[row * row_words_ + col / 64] |= std::uint64_t{1} << (col % 64);
}

bool ActiveBitmap::test(std::size_t row, std::size_t col) const {
  check_arg(row < rows_ && col < cols_, "ActiveBitmap::test: index out of range");
  return (words_[row * row_words_ + col / 64] >> (col % 64)) & 1;
}

std::size_t ActiveBitmap::row_popcount(std::size_t row) const {
  check_arg(row < rows_, "ActiveBitmap::row_popcount: row out of range");
  std::size_t count = 0;
  const std::uint64_t* base = words_.data() + row * row_words_;
  for (std::size_t w = 0; w < row_words_; ++w) count += std::popcount(base[w]);
  return count;
}

std::size_t ActiveBitmap::row_and_popcount(
    std::size_t row, std::span<const std::uint64_t> mask) const {
  check_arg(row < rows_, "ActiveBitmap::row_and_popcount: row out of range");
  check_arg(mask.size() == row_words_,
            "ActiveBitmap::row_and_popcount: mask width mismatch");
  std::size_t count = 0;
  const std::uint64_t* base = words_.data() + row * row_words_;
  for (std::size_t w = 0; w < row_words_; ++w) {
    count += std::popcount(base[w] & mask[w]);
  }
  return count;
}

ActiveBitmap make_active_bitmap(std::span<const Job> jobs,
                                const IntervalDecomposition& intervals) {
  ActiveBitmap active(intervals.count(), jobs.size());
  for (std::size_t j = 0; j < intervals.count(); ++j) {
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      if (intervals.active(jobs[k], j)) active.set(j, k);
    }
  }
  return active;
}

}  // namespace mpss
