#include "mpss/core/mcnaughton.hpp"

#include "mpss/util/error.hpp"

namespace mpss {

void mcnaughton_pack(Schedule& schedule, const Q& start, const Q& length,
                     std::size_t first_machine, std::size_t machine_count,
                     const Q& speed, std::span<const Chunk> chunks) {
  check_arg(length.sign() > 0, "mcnaughton_pack: interval length must be positive");
  check_arg(speed.sign() > 0, "mcnaughton_pack: speed must be positive");

  Q total;
  for (const Chunk& chunk : chunks) {
    check_arg(chunk.duration.sign() >= 0, "mcnaughton_pack: negative chunk duration");
    check_arg(chunk.duration <= length,
              "mcnaughton_pack: chunk longer than the interval");
    total += chunk.duration;
  }
  check_arg(total <= length * Q(static_cast<std::int64_t>(machine_count)),
            "mcnaughton_pack: chunks exceed reserved capacity");

  std::size_t machine = first_machine;
  Q offset;  // position within the current machine's window, in [0, length)
  for (const Chunk& chunk : chunks) {
    Q remaining = chunk.duration;
    while (remaining.sign() > 0) {
      Q available = length - offset;
      const Q& piece = min(remaining, available);
      schedule.add(machine,
                   Slice{start + offset, start + offset + piece, speed, chunk.job});
      offset += piece;
      remaining -= piece;
      if (offset == length) {
        ++machine;
        offset = Q(0);
      }
    }
  }
}

}  // namespace mpss
