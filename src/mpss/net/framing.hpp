#pragma once
// Length-prefixed framing over POSIX stream sockets (S45, see DESIGN.md).
//
// Every protocol message travels as one frame:
//
//   +----------------+----------------------+
//   | u32 big-endian |  payload (JSON text) |
//   |  payload bytes |                      |
//   +----------------+----------------------+
//
// The length prefix carries no magic and no version -- versioning lives in the
// JSON payload ("v" member), so a frame reader never needs protocol knowledge.
// Readers enforce a maximum payload size: a garbage prefix (a client speaking
// HTTP at us, a flipped bit) otherwise turns into a multi-gigabyte allocation.
// Oversized or truncated frames raise FrameError; the connection is then
// unrecoverable (stream framing has no resync point) and must be closed.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mpss::net {

/// Default ceiling on one frame's payload (32 MiB: a ~100k-job instance with
/// generous rationals fits with room to spare).
inline constexpr std::size_t kMaxFrameBytes = 32u << 20;

/// Malformed or oversized frame, or a connection that died mid-frame. The
/// stream cannot be resynchronized after this; close it.
class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

/// RAII file descriptor (sockets here, but any fd works). Movable, not
/// copyable; close() is idempotent.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { close(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept;
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release();
  void close();

 private:
  int fd_ = -1;
};

/// Reads one frame into `payload`. Returns false on clean end-of-stream (EOF
/// before the first prefix byte -- the orderly close). Throws FrameError on a
/// payload larger than `max_bytes`, EOF mid-frame, or a read error. Retries
/// EINTR internally.
[[nodiscard]] bool read_frame(int fd, std::string& payload,
                              std::size_t max_bytes = kMaxFrameBytes);

/// Writes one frame (prefix + payload). Throws FrameError when the payload
/// exceeds `max_bytes` or the peer is gone (EPIPE/ECONNRESET; SIGPIPE is
/// suppressed with MSG_NOSIGNAL). Retries EINTR and short writes internally.
void write_frame(int fd, std::string_view payload,
                 std::size_t max_bytes = kMaxFrameBytes);

/// Binds a listening TCP socket on a numeric IPv4 address (no hostname
/// resolution, matching the rest of the net layer) with SO_REUSEADDR set.
/// `port` 0 picks an ephemeral port, readable back via bound_port(). Throws
/// std::runtime_error naming `who` on any failure. Shared by the solve
/// daemon's listener and the /metrics HTTP listener.
[[nodiscard]] ScopedFd bind_listen_ipv4(const std::string& host,
                                        std::uint16_t port,
                                        std::string_view who);

/// The local port a socket is bound to (the ephemeral one after binding port
/// 0). Throws std::runtime_error naming `who` when getsockname fails.
[[nodiscard]] std::uint16_t bound_port(int fd, std::string_view who);

}  // namespace mpss::net
