#pragma once
// Length-prefixed framing over POSIX stream sockets (S45/S48, see DESIGN.md).
//
// Every protocol message travels as one frame:
//
//   +----------------+----------------------+
//   | u32 big-endian |  payload (JSON text) |
//   |  payload bytes |                      |
//   +----------------+----------------------+
//
// The length prefix carries no magic and no version -- versioning lives in the
// JSON payload ("v" member), so a frame reader never needs protocol knowledge.
// Readers enforce a maximum payload size: a garbage prefix (a client speaking
// HTTP at us, a flipped bit) otherwise turns into a multi-gigabyte allocation.
// Oversized or truncated frames raise FrameError; the connection is then
// unrecoverable (stream framing has no resync point) and must be closed.
//
// Failure taxonomy (S48): every FrameError carries a Kind, because the caller's
// recovery differs by class. A clean EOF before the first prefix byte is NOT an
// error (read_frame returns false -- the orderly close); EOF after byte one of
// a frame is kTruncated (the peer died mid-message); kTimeout is a deadline or
// SO_RCVTIMEO/SO_SNDTIMEO expiry (the peer may be alive but slow -- retryable
// on a fresh connection); kReset is a torn connection (ECONNRESET/EPIPE);
// kOversize is a protocol violation that retrying cannot fix.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mpss::net {

/// Default ceiling on one frame's payload (32 MiB: a ~100k-job instance with
/// generous rationals fits with room to spare).
inline constexpr std::size_t kMaxFrameBytes = 32u << 20;

/// Malformed or oversized frame, a connection that died or stalled mid-frame,
/// or a read/write error. The stream cannot be resynchronized after this;
/// close it. kind() tells the caller whether retrying on a fresh connection
/// makes sense (kTruncated/kTimeout/kReset/kIo) or not (kOversize).
class FrameError : public std::runtime_error {
 public:
  enum class Kind {
    kIo,         // unexpected errno from recv/send/poll
    kTruncated,  // EOF after the first byte of a frame but before its last
    kOversize,   // frame larger than the negotiated cap (either direction)
    kTimeout,    // read deadline, SO_RCVTIMEO, or SO_SNDTIMEO expired
    kReset,      // connection torn down (ECONNRESET, EPIPE, ENOTCONN)
  };

  explicit FrameError(const std::string& what, Kind kind = Kind::kIo)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// Stable lowercase name ("io", "truncated", "oversize", "timeout", "reset")
/// for log lines and test assertions.
[[nodiscard]] const char* frame_error_kind_name(FrameError::Kind kind);

/// RAII file descriptor (sockets here, but any fd works). Movable, not
/// copyable; close() is idempotent.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { close(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept;
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int release();
  void close();

 private:
  int fd_ = -1;
};

/// Read deadlines of one read_frame call, both in milliseconds, both 0 = "wait
/// forever" (the pre-S48 behavior). `idle_ms` bounds the wait for a frame's
/// FIRST byte -- how long a connection may sit quiet between requests.
/// `frame_ms` bounds the wall time from a frame's first byte to its last --
/// the defense against byte-dribbling (slowloris) peers, who otherwise hold a
/// reader hostage one byte per minute without ever "timing out".
struct ReadDeadlines {
  std::int64_t idle_ms = 0;
  std::int64_t frame_ms = 0;
};

/// Reads one frame into `payload`. Returns false on clean end-of-stream (EOF
/// before the first prefix byte -- the orderly close). Throws FrameError on a
/// payload larger than `max_bytes` (kOversize), EOF mid-frame (kTruncated,
/// distinguished from the clean close by at least one byte of the frame having
/// arrived), an expired deadline or SO_RCVTIMEO (kTimeout), or a read error
/// (kReset/kIo). Retries EINTR internally.
[[nodiscard]] bool read_frame(int fd, std::string& payload,
                              std::size_t max_bytes = kMaxFrameBytes,
                              const ReadDeadlines& deadlines = ReadDeadlines{});

/// Writes one frame (prefix + payload). Throws FrameError when the payload
/// exceeds `max_bytes` (kOversize), the peer is gone (kReset; EPIPE/ECONNRESET
/// -- SIGPIPE is suppressed with MSG_NOSIGNAL), or SO_SNDTIMEO expires with
/// the peer's receive window still full (kTimeout). Retries EINTR and short
/// writes internally: on return the whole frame was handed to the kernel, so
/// partial writes under EINTR, tiny SO_SNDBUF, or a dawdling reader never
/// interleave garbage into the stream.
void write_frame(int fd, std::string_view payload,
                 std::size_t max_bytes = kMaxFrameBytes);

/// Sets SO_RCVTIMEO on `fd`: every subsequent recv fails with EAGAIN (surfaced
/// by read_frame as FrameError kTimeout) after blocking `ms` milliseconds.
/// `ms <= 0` clears the timeout (block forever). Throws std::runtime_error
/// naming `who` when setsockopt fails.
void set_recv_timeout(int fd, std::int64_t ms, std::string_view who);

/// SO_SNDTIMEO twin of set_recv_timeout: bounds each blocking send (surfaced
/// by write_frame as FrameError kTimeout).
void set_send_timeout(int fd, std::int64_t ms, std::string_view who);

/// Binds a listening TCP socket on a numeric IPv4 address (no hostname
/// resolution, matching the rest of the net layer) with SO_REUSEADDR set.
/// `port` 0 picks an ephemeral port, readable back via bound_port(). Throws
/// std::runtime_error naming `who` on any failure. Shared by the solve
/// daemon's listener and the /metrics HTTP listener.
[[nodiscard]] ScopedFd bind_listen_ipv4(const std::string& host,
                                        std::uint16_t port,
                                        std::string_view who);

/// The local port a socket is bound to (the ephemeral one after binding port
/// 0). Throws std::runtime_error naming `who` when getsockname fails.
[[nodiscard]] std::uint16_t bound_port(int fd, std::string_view who);

}  // namespace mpss::net
