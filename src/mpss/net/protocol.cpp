#include "mpss/net/protocol.hpp"

#include <charconv>
#include <cmath>
#include <utility>

namespace mpss::net {
namespace {

/// Wraps the JSON layer's std::invalid_argument into kBadRequest so callers
/// see one failure type for "the peer sent nonsense".
template <typename Fn>
auto bad_request_scope(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const ProtocolError&) {
    throw;  // already coded
  } catch (const std::exception& error) {
    throw ProtocolError(ErrorCode::kBadRequest, error.what());
  }
}

/// The largest double that is still an exact integer (2^53). Every checked
/// double -> integer conversion below bounds by it BEFORE casting: a cast
/// from a double past the target's range (a hostile "id": 1e300, inf) is
/// undefined behavior, and NaN slips through naive `raw < 0` guards because
/// every comparison against NaN is false. All checks are therefore written in
/// the accepting direction (`raw >= lo && raw <= hi`), which NaN fails.
constexpr double kMaxExactDouble = 9007199254740992.0;

/// Checked double -> non-negative integer: rejects NaN, infinities,
/// negatives, fractions, and anything past 2^53. Throws invalid_argument
/// (bad_request_scope recodes it) naming `what`.
std::uint64_t checked_u64(double raw, const char* what) {
  if (!(raw >= 0.0 && raw <= kMaxExactDouble && raw == std::floor(raw))) {
    throw std::invalid_argument(std::string("protocol: ") + what +
                                " must be a non-negative integer (<= 2^53)");
  }
  return static_cast<std::uint64_t>(raw);
}

std::uint64_t id_from(const json::Value& document) {
  if (const json::Value* id = document.find("id")) {
    double raw = id->as_double();
    if (!(raw >= 0.0 && raw <= kMaxExactDouble && raw == std::floor(raw))) {
      throw ProtocolError(ErrorCode::kBadRequest,
                          "protocol: id must be a non-negative integer");
    }
    return static_cast<std::uint64_t>(raw);
  }
  return 0;
}

void check_version(const json::Value& document) {
  const json::Value* version = document.find("v");
  if (version == nullptr || !version->is_number() ||
      version->as_double() != static_cast<double>(kProtocolVersion)) {
    throw ProtocolError(ErrorCode::kUnsupportedVersion,
                        "protocol: expected v=" + std::to_string(kProtocolVersion));
  }
}

json::Value schedule_to_json(const SolveResult& result) {
  json::Value out;
  if (const Schedule* exact = result.exact_schedule()) {
    out.set("type", "exact");
    out.set("machines", exact->machines());
    json::Array slices;
    slices.reserve(exact->slice_count());
    for (std::size_t machine = 0; machine < exact->machines(); ++machine) {
      for (const Slice& slice : exact->machine(machine)) {
        slices.push_back(json::Array{
            json::Value(machine), json::Value(slice.start.to_string()),
            json::Value(slice.end.to_string()), json::Value(slice.speed.to_string()),
            json::Value(slice.job)});
      }
    }
    out.set("slices", std::move(slices));
  } else if (const FastSchedule* fast = result.fast_schedule()) {
    out.set("type", "fast");
    out.set("machines", fast->machines.size());
    json::Array slices;
    slices.reserve(fast->slice_count());
    for (std::size_t machine = 0; machine < fast->machines.size(); ++machine) {
      for (const FastSlice& slice : fast->machines[machine]) {
        slices.push_back(json::Array{json::Value(machine), json::Value(slice.start),
                                     json::Value(slice.end), json::Value(slice.speed),
                                     json::Value(slice.job)});
      }
    }
    out.set("slices", std::move(slices));
  } else {
    out.set("type", "none");
  }
  return out;
}

std::size_t slice_machine(const json::Array& fields, std::size_t machines) {
  double raw = fields[0].as_double();
  if (raw < 0 || raw >= static_cast<double>(machines) || raw != std::floor(raw)) {
    throw std::invalid_argument("protocol: slice machine index out of range");
  }
  return static_cast<std::size_t>(raw);
}

std::size_t slice_job(const json::Value& value) {
  return static_cast<std::size_t>(
      checked_u64(value.as_double(), "slice job index"));
}

void schedule_from_json(const json::Value& value, SolveResult& result) {
  const std::string& type = value.at("type").as_string();
  if (type == "none") return;
  double machines_raw = value.at("machines").as_double();
  if (!(machines_raw >= 1.0 && machines_raw <= kMaxExactDouble &&
        machines_raw == std::floor(machines_raw))) {
    throw std::invalid_argument("protocol: schedule machines must be >= 1");
  }
  auto machines = static_cast<std::size_t>(machines_raw);
  const json::Array& slices = value.at("slices").as_array();
  if (type == "exact") {
    Schedule schedule(machines);
    for (const json::Value& row : slices) {
      const json::Array& fields = row.as_array();
      if (fields.size() != 5) {
        throw std::invalid_argument(
            "protocol: slices must be [machine, start, end, speed, job]");
      }
      schedule.add(slice_machine(fields, machines),
                   Slice{Q::from_string(fields[1].as_string()),
                         Q::from_string(fields[2].as_string()),
                         Q::from_string(fields[3].as_string()),
                         slice_job(fields[4])});
    }
    result.schedule = std::move(schedule);
  } else if (type == "fast") {
    FastSchedule schedule;
    schedule.machines.resize(machines);
    for (const json::Value& row : slices) {
      const json::Array& fields = row.as_array();
      if (fields.size() != 5) {
        throw std::invalid_argument(
            "protocol: slices must be [machine, start, end, speed, job]");
      }
      schedule.machines[slice_machine(fields, machines)].push_back(
          FastSlice{fields[1].as_double(), fields[2].as_double(),
                    fields[3].as_double(), slice_job(fields[4])});
    }
    result.schedule = std::move(schedule);
  } else {
    throw std::invalid_argument("protocol: unknown schedule type '" + type + "'");
  }
}

/// Parses a trace-context field: a full 64-bit value encoded as a decimal
/// string (doubles cannot carry ids above 2^53 exactly, so numbers are
/// rejected -- a client that sent one would get back corrupted parenting).
std::uint64_t trace_field(const json::Value& value, const char* what) {
  if (!value.is_string()) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        std::string("protocol: trace ") + what +
                            " must be a decimal string");
  }
  const std::string& text = value.as_string();
  std::uint64_t parsed = 0;
  auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        std::string("protocol: trace ") + what +
                            " is not a 64-bit decimal value");
  }
  return parsed;
}

json::Value response_header(std::uint64_t id, bool ok) {
  json::Value out;
  out.set("v", static_cast<double>(kProtocolVersion));
  out.set("id", static_cast<double>(id));
  out.set("ok", ok);
  return out;
}

}  // namespace

const char* verb_name(Verb verb) {
  switch (verb) {
    case Verb::kSolve: return "solve";
    case Verb::kSolveMany: return "solve_many";
    case Verb::kStats: return "stats";
    case Verb::kHealth: return "health";
    case Verb::kMetrics: return "metrics";
    case Verb::kShutdown: return "shutdown";
  }
  return "unknown";
}

std::optional<Verb> verb_from_name(std::string_view name) {
  if (name == "solve") return Verb::kSolve;
  if (name == "solve_many") return Verb::kSolveMany;
  if (name == "stats") return Verb::kStats;
  if (name == "health") return Verb::kHealth;
  if (name == "metrics") return Verb::kMetrics;
  if (name == "shutdown") return Verb::kShutdown;
  return std::nullopt;
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame: return "bad_frame";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnsupportedVersion: return "unsupported_version";
    case ErrorCode::kUnknownVerb: return "unknown_verb";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::optional<ErrorCode> error_code_from_name(std::string_view name) {
  if (name == "bad_frame") return ErrorCode::kBadFrame;
  if (name == "bad_request") return ErrorCode::kBadRequest;
  if (name == "unsupported_version") return ErrorCode::kUnsupportedVersion;
  if (name == "unknown_verb") return ErrorCode::kUnknownVerb;
  if (name == "queue_full") return ErrorCode::kQueueFull;
  if (name == "shutdown") return ErrorCode::kShutdown;
  if (name == "internal") return ErrorCode::kInternal;
  return std::nullopt;
}

json::Value solve_options_to_json_value(const SolveOptions& options) {
  json::Value out;
  out.set("engine", engine_name(options.engine));
  out.set("exact_incremental", options.exact.incremental);
  out.set("fast_epsilon", options.fast_epsilon);
  out.set("fast_incremental", options.fast_incremental);
  out.set("avr_peeling", options.avr.enable_peeling);
  out.set("lp_grid", options.lp_grid);
  out.set("lp_max_speed_hint", options.lp_max_speed_hint);
  return out;
}

SolveOptions solve_options_from_json_value(const json::Value& value) {
  SolveOptions options;
  if (const json::Value* engine = value.find("engine")) {
    std::optional<Engine> parsed = engine_from_name(engine->as_string());
    if (!parsed) {
      throw std::invalid_argument("protocol: unknown engine '" +
                                  engine->as_string() + "'");
    }
    options.engine = *parsed;
  }
  if (const json::Value* v = value.find("exact_incremental")) {
    options.exact.incremental = v->as_bool();
  }
  if (const json::Value* v = value.find("fast_epsilon")) {
    options.fast_epsilon = v->as_double();
  }
  if (const json::Value* v = value.find("fast_incremental")) {
    options.fast_incremental = v->as_bool();
  }
  if (const json::Value* v = value.find("avr_peeling")) {
    options.avr.enable_peeling = v->as_bool();
  }
  if (const json::Value* v = value.find("lp_grid")) {
    options.lp_grid = static_cast<std::size_t>(
        checked_u64(v->as_double(), "lp_grid"));
  }
  if (const json::Value* v = value.find("lp_max_speed_hint")) {
    options.lp_max_speed_hint = v->as_double();
  }
  return options;
}

json::Value result_to_json_value(const SolveResult& result) {
  json::Value out;
  out.set("status", solve_status_name(result.status));
  out.set("error_detail", result.error_detail);
  out.set("energy", result.energy);
  out.set("schedule", schedule_to_json(result));
  return out;
}

SolveResult result_from_json_value(const json::Value& value) {
  SolveResult result;
  std::optional<SolveStatus> status =
      solve_status_from_name(value.at("status").as_string());
  if (!status) {
    throw std::invalid_argument("protocol: unknown solve status '" +
                                value.at("status").as_string() + "'");
  }
  result.status = *status;
  result.error_detail = value.at("error_detail").as_string();
  result.energy = value.at("energy").as_double();
  schedule_from_json(value.at("schedule"), result);
  return result;
}

std::string encode_request(const Request& request) {
  json::Value out;
  out.set("v", static_cast<double>(kProtocolVersion));
  out.set("id", static_cast<double>(request.id));
  out.set("verb", verb_name(request.verb));
  if (request.verb == Verb::kSolve) {
    out.set("instance", instance_to_json_value(request.instances.at(0)));
    out.set("options", solve_options_to_json_value(request.options));
  } else if (request.verb == Verb::kSolveMany) {
    json::Array instances;
    instances.reserve(request.instances.size());
    for (const Instance& instance : request.instances) {
      instances.push_back(instance_to_json_value(instance));
    }
    out.set("instances", std::move(instances));
    out.set("options", solve_options_to_json_value(request.options));
  }
  if (request.priority != 0) out.set("priority", static_cast<double>(request.priority));
  if (request.deadline_ms != 0) {
    out.set("deadline_ms", static_cast<double>(request.deadline_ms));
  }
  if (request.trace_id != 0) {
    json::Value trace;
    trace.set("id", std::to_string(request.trace_id));
    trace.set("parent", std::to_string(request.parent_span));
    out.set("trace", std::move(trace));
  }
  return json::serialize(out);
}

Request decode_request(std::string_view payload) {
  return bad_request_scope([&] {
    json::Value document = json::parse(payload);
    check_version(document);
    Request request;
    request.id = id_from(document);
    const std::string& verb = document.at("verb").as_string();
    std::optional<Verb> parsed = verb_from_name(verb);
    if (!parsed) {
      throw ProtocolError(ErrorCode::kUnknownVerb,
                          "protocol: unknown verb '" + verb + "'");
    }
    request.verb = *parsed;
    if (request.verb == Verb::kSolve) {
      request.instances.push_back(instance_from_json_value(document.at("instance")));
    } else if (request.verb == Verb::kSolveMany) {
      for (const json::Value& element : document.at("instances").as_array()) {
        request.instances.push_back(instance_from_json_value(element));
      }
    }
    if (const json::Value* options = document.find("options")) {
      request.options = solve_options_from_json_value(*options);
    }
    if (const json::Value* priority = document.find("priority")) {
      double raw = priority->as_double();
      if (!(raw >= -2147483648.0 && raw <= 2147483647.0 &&
            raw == std::floor(raw))) {
        throw ProtocolError(ErrorCode::kBadRequest,
                            "protocol: priority must be an integer in int range");
      }
      request.priority = static_cast<int>(raw);
    }
    if (const json::Value* deadline = document.find("deadline_ms")) {
      double raw = deadline->as_double();
      // Accepting-direction check: NaN fails every comparison, so `raw < 0`
      // alone would wave NaN through to an undefined cast.
      if (!(raw >= 0.0 && raw <= kMaxExactDouble && raw == std::floor(raw))) {
        throw ProtocolError(ErrorCode::kBadRequest,
                            "protocol: deadline_ms must be >= 0");
      }
      request.deadline_ms = static_cast<std::int64_t>(raw);
    }
    if (const json::Value* trace = document.find("trace")) {
      request.trace_id = trace_field(trace->at("id"), "id");
      if (const json::Value* parent = trace->find("parent")) {
        request.parent_span = trace_field(*parent, "parent");
      }
    }
    return request;
  });
}

std::string encode_results_response(std::uint64_t id,
                                    std::span<const SolveResult> results) {
  json::Value out = response_header(id, true);
  json::Array encoded;
  encoded.reserve(results.size());
  for (const SolveResult& result : results) {
    encoded.push_back(result_to_json_value(result));
  }
  out.set("results", std::move(encoded));
  return json::serialize(out);
}

std::string encode_payload_response(std::uint64_t id, std::string_view key,
                                    json::Value payload) {
  json::Value out = response_header(id, true);
  out.set(std::string(key), std::move(payload));
  return json::serialize(out);
}

std::string encode_error_response(std::uint64_t id, ErrorCode code,
                                  std::string_view detail) {
  json::Value out = response_header(id, false);
  json::Value error;
  error.set("code", error_code_name(code));
  error.set("detail", detail);
  out.set("error", std::move(error));
  return json::serialize(out);
}

Response decode_response(std::string_view payload) {
  return bad_request_scope([&] {
    json::Value document = json::parse(payload);
    check_version(document);
    Response response;
    response.id = id_from(document);
    response.ok = document.at("ok").as_bool();
    if (!response.ok) {
      const json::Value& error = document.at("error");
      const std::string& code = error.at("code").as_string();
      std::optional<ErrorCode> parsed = error_code_from_name(code);
      if (!parsed) {
        throw ProtocolError(ErrorCode::kBadRequest,
                            "protocol: unknown error code '" + code + "'");
      }
      response.code = *parsed;
      response.detail = error.at("detail").as_string();
      return response;
    }
    if (const json::Value* results = document.find("results")) {
      for (const json::Value& element : results->as_array()) {
        response.results.push_back(result_from_json_value(element));
      }
    } else {
      // Verb-shaped payload: keep the whole document for the caller.
      response.payload = document;
    }
    return response;
  });
}

}  // namespace mpss::net
