#pragma once
// Monotonic time budgets and retry backoff for the net layer (S48, see
// DESIGN.md).
//
// The deadline hierarchy, outermost first:
//
//   request budget  >  socket timeout  >  server read deadline
//
// A Deadline is the outermost layer: one absolute steady-clock point that a
// whole client round trip (including reconnects and retry sleeps) must finish
// under. Socket-level timeouts (SO_RCVTIMEO / SO_SNDTIMEO, framing.hpp) bound
// each individual syscall underneath it; the caller clamps the per-op timeout
// to the remaining budget via clamp_ms(), so no single recv can outlive the
// request even when the op timeout alone would allow it.
//
// backoff_full_jitter() is the retry schedule: exponential growth with "full
// jitter" (uniform in [0, min(cap, base * 2^attempt)]), the standard shape for
// keeping a thundering herd of retrying clients decorrelated. It is fed by an
// explicit splitmix64 state so retry timing is reproducible under a seeded
// test and never consults a global RNG.

#include <chrono>
#include <cstdint>

namespace mpss::net {

/// An absolute monotonic deadline, or "never". Cheap to copy; all queries are
/// against std::chrono::steady_clock so wall-clock jumps cannot fire it.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// The unarmed deadline: never expires, imposes no per-op clamp.
  constexpr Deadline() = default;

  /// Armed `ms` milliseconds from now; `ms <= 0` yields never().
  [[nodiscard]] static Deadline after_ms(std::int64_t ms) {
    Deadline deadline;
    if (ms > 0) {
      deadline.at_ = Clock::now() + std::chrono::milliseconds(ms);
      deadline.armed_ = true;
    }
    return deadline;
  }

  [[nodiscard]] static constexpr Deadline never() { return Deadline{}; }

  [[nodiscard]] bool armed() const { return armed_; }

  [[nodiscard]] bool expired() const {
    return armed_ && Clock::now() >= at_;
  }

  /// Milliseconds left, clamped to >= 0. Unarmed deadlines report -1
  /// ("unlimited"), matching the 0/negative = "no timeout" convention of the
  /// socket-timeout setters.
  [[nodiscard]] std::int64_t remaining_ms() const {
    if (!armed_) return -1;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - Clock::now());
    return left.count() > 0 ? left.count() : 0;
  }

  /// The effective per-operation timeout under this budget: the smaller of
  /// `op_timeout_ms` and the remaining budget, where <= 0 means "unlimited"
  /// on both sides. An expired budget yields 0 (the caller should fail fast;
  /// socket timeouts treat 0 as "no timeout", so check expired() first).
  [[nodiscard]] std::int64_t clamp_ms(std::int64_t op_timeout_ms) const {
    std::int64_t remaining = remaining_ms();
    if (remaining < 0) return op_timeout_ms;
    if (op_timeout_ms <= 0) return remaining;
    return remaining < op_timeout_ms ? remaining : op_timeout_ms;
  }

 private:
  Clock::time_point at_{};
  bool armed_ = false;
};

/// One splitmix64 step: the jitter source for backoff_full_jitter. Public so
/// tests can reproduce a schedule from the same seed.
[[nodiscard]] inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Full-jitter exponential backoff: uniform in [0, min(cap, base << attempt)].
/// `attempt` counts completed attempts (0 after the first failure). Degenerate
/// inputs (base <= 0) yield 0 -- "retry immediately".
[[nodiscard]] inline std::int64_t backoff_full_jitter(int attempt,
                                                      std::int64_t base_ms,
                                                      std::int64_t cap_ms,
                                                      std::uint64_t& jitter_state) {
  if (base_ms <= 0) return 0;
  if (cap_ms < base_ms) cap_ms = base_ms;
  // Saturating base << attempt: past 2^40 the cap always wins anyway.
  std::int64_t ceiling = cap_ms;
  if (attempt < 40) {
    std::int64_t grown = base_ms << attempt;
    ceiling = grown < cap_ms ? grown : cap_ms;
  }
  return static_cast<std::int64_t>(
      splitmix64_next(jitter_state) %
      static_cast<std::uint64_t>(ceiling + 1));
}

}  // namespace mpss::net
