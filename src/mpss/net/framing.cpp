#include "mpss/net/framing.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace mpss::net {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] FrameError::Kind kind_of_errno(int err) {
  switch (err) {
    case ECONNRESET:
    case EPIPE:
    case ENOTCONN:
      return FrameError::Kind::kReset;
    case EAGAIN:
#if EAGAIN != EWOULDBLOCK
    case EWOULDBLOCK:
#endif
      return FrameError::Kind::kTimeout;  // SO_RCVTIMEO / SO_SNDTIMEO expired
    default:
      return FrameError::Kind::kIo;
  }
}

/// Blocks until `fd` is readable or `deadline` passes. A null deadline waits
/// forever. Throws FrameError(kTimeout) naming `phase` on expiry and
/// FrameError(kIo) on a poll error; EINTR is retried against the same
/// absolute deadline, so signals cannot extend it.
void wait_readable(int fd, const Clock::time_point* deadline,
                   const char* phase, std::size_t bytes_so_far) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline != nullptr) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          *deadline - Clock::now());
      if (left.count() <= 0) {
        throw FrameError("read_frame: " + std::string(phase) +
                             " deadline expired after " +
                             std::to_string(bytes_so_far) + " byte(s)",
                         FrameError::Kind::kTimeout);
      }
      timeout_ms = left.count() > 1000 * 3600 ? 1000 * 3600
                                              : static_cast<int>(left.count());
    }
    pollfd poll_fd{fd, POLLIN, 0};
    int ready = ::poll(&poll_fd, 1, timeout_ms);
    if (ready > 0) return;  // readable (or errored -- recv reports which)
    if (ready == 0) {
      if (deadline == nullptr) continue;  // spurious zero without a deadline
      continue;  // re-check the absolute deadline at the top of the loop
    }
    if (errno == EINTR) continue;
    throw FrameError(std::string("read_frame: poll failed: ") +
                         std::strerror(errno),
                     FrameError::Kind::kIo);
  }
}

/// recv with EINTR retry; plain read() for non-socket fds is not needed here
/// (framing only ever runs over sockets).
ssize_t recv_retry(int fd, char* buffer, std::size_t count) {
  for (;;) {
    ssize_t n = ::recv(fd, buffer, count, 0);
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// Shared read state of one read_frame call: the two optional absolute
/// deadlines (S48). The idle deadline gates only the very first byte; the
/// frame deadline is armed when that byte arrives and gates everything after.
struct FrameRead {
  int fd;
  const Clock::time_point* idle_deadline = nullptr;
  Clock::time_point frame_deadline{};
  std::int64_t frame_ms = 0;
  std::size_t bytes_read = 0;  // of the whole frame, prefix included

  /// Reads up to `count` bytes into `buffer`, returning the bytes read before
  /// EOF (so the caller can distinguish clean EOF at a frame boundary from
  /// mid-frame truncation). Throws FrameError on a hard read error, a timeout
  /// (deadline or SO_RCVTIMEO), or mid-frame EOF past byte zero handled by
  /// the caller via the shortfall.
  std::size_t read_fully(char* buffer, std::size_t count) {
    std::size_t done = 0;
    while (done < count) {
      const Clock::time_point* deadline = nullptr;
      const char* phase = "idle";
      if (bytes_read == 0) {
        deadline = idle_deadline;
      } else if (frame_ms > 0) {
        deadline = &frame_deadline;
        phase = "mid-frame";
      }
      if (deadline != nullptr) wait_readable(fd, deadline, phase, bytes_read);
      ssize_t n = recv_retry(fd, buffer + done, count - done);
      if (n == 0) return done;  // EOF
      if (n < 0) {
        int err = errno;
        FrameError::Kind kind = kind_of_errno(err);
        std::string what =
            kind == FrameError::Kind::kTimeout
                ? "read_frame: recv timed out (SO_RCVTIMEO) after " +
                      std::to_string(bytes_read) + " byte(s) of the frame"
                : std::string("read_frame: recv failed: ") + std::strerror(err);
        throw FrameError(what, kind);
      }
      if (bytes_read == 0 && frame_ms > 0) {
        // First byte of the frame: the slowloris clock starts now.
        frame_deadline = Clock::now() + std::chrono::milliseconds(frame_ms);
      }
      done += static_cast<std::size_t>(n);
      bytes_read += static_cast<std::size_t>(n);
    }
    return done;
  }
};

}  // namespace

const char* frame_error_kind_name(FrameError::Kind kind) {
  switch (kind) {
    case FrameError::Kind::kIo: return "io";
    case FrameError::Kind::kTruncated: return "truncated";
    case FrameError::Kind::kOversize: return "oversize";
    case FrameError::Kind::kTimeout: return "timeout";
    case FrameError::Kind::kReset: return "reset";
  }
  return "io";
}

ScopedFd& ScopedFd::operator=(ScopedFd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
  }
  return *this;
}

int ScopedFd::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void ScopedFd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool read_frame(int fd, std::string& payload, std::size_t max_bytes,
                const ReadDeadlines& deadlines) {
  FrameRead reader{fd};
  Clock::time_point idle_deadline{};
  if (deadlines.idle_ms > 0) {
    idle_deadline = Clock::now() + std::chrono::milliseconds(deadlines.idle_ms);
    reader.idle_deadline = &idle_deadline;
  }
  reader.frame_ms = deadlines.frame_ms;

  unsigned char prefix[4];
  std::size_t got = reader.read_fully(reinterpret_cast<char*>(prefix), sizeof prefix);
  if (got == 0) return false;  // clean EOF at a frame boundary: NOT an error
  if (got < sizeof prefix) {
    // EOF on byte 1..3 of the prefix: the peer died mid-message. Distinct
    // from the clean close above both in type (throws) and in kind.
    throw FrameError("read_frame: connection closed inside a length prefix (" +
                         std::to_string(got) + " of 4 bytes arrived)",
                     FrameError::Kind::kTruncated);
  }
  std::uint32_t length = (std::uint32_t{prefix[0]} << 24) |
                         (std::uint32_t{prefix[1]} << 16) |
                         (std::uint32_t{prefix[2]} << 8) | std::uint32_t{prefix[3]};
  if (length > max_bytes) {
    throw FrameError("read_frame: frame of " + std::to_string(length) +
                         " bytes exceeds the " + std::to_string(max_bytes) +
                         "-byte limit",
                     FrameError::Kind::kOversize);
  }
  payload.resize(length);
  std::size_t body = reader.read_fully(payload.data(), length);
  if (body < length) {
    throw FrameError("read_frame: connection closed inside a payload (" +
                         std::to_string(body) + " of " + std::to_string(length) +
                         " bytes arrived)",
                     FrameError::Kind::kTruncated);
  }
  return true;
}

void write_frame(int fd, std::string_view payload, std::size_t max_bytes) {
  if (payload.size() > max_bytes) {
    throw FrameError("write_frame: frame of " + std::to_string(payload.size()) +
                         " bytes exceeds the " + std::to_string(max_bytes) +
                         "-byte limit",
                     FrameError::Kind::kOversize);
  }
  auto length = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {static_cast<unsigned char>(length >> 24),
                             static_cast<unsigned char>(length >> 16),
                             static_cast<unsigned char>(length >> 8),
                             static_cast<unsigned char>(length)};
  std::string buffer;  // one send per frame: prefix and payload never straddle
  buffer.reserve(sizeof prefix + payload.size());
  buffer.append(reinterpret_cast<const char*>(prefix), sizeof prefix);
  buffer.append(payload);

  // Full-write loop: EINTR retries, and short writes (tiny SO_SNDBUF, a slow
  // reader, a signal landing mid-copy) resume at the next unsent byte. The
  // only exits are "everything handed to the kernel" or a typed FrameError.
  std::size_t done = 0;
  while (done < buffer.size()) {
    ssize_t n = ::send(fd, buffer.data() + done, buffer.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      FrameError::Kind kind = kind_of_errno(err);
      std::string what =
          kind == FrameError::Kind::kTimeout
              ? "write_frame: send timed out (SO_SNDTIMEO) after " +
                    std::to_string(done) + " of " +
                    std::to_string(buffer.size()) + " bytes"
              : "write_frame: send failed after " + std::to_string(done) +
                    " of " + std::to_string(buffer.size()) +
                    " bytes: " + std::strerror(err);
      throw FrameError(what, kind);
    }
    done += static_cast<std::size_t>(n);
  }
}

namespace {

void set_socket_timeout(int fd, int option, std::int64_t ms,
                        std::string_view who) {
  timeval tv{};
  if (ms > 0) {
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  }
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof tv) != 0) {
    throw std::runtime_error(std::string(who) + ": setsockopt(" +
                             (option == SO_RCVTIMEO ? "SO_RCVTIMEO" : "SO_SNDTIMEO") +
                             ") failed: " + std::strerror(errno));
  }
}

}  // namespace

void set_recv_timeout(int fd, std::int64_t ms, std::string_view who) {
  set_socket_timeout(fd, SO_RCVTIMEO, ms, who);
}

void set_send_timeout(int fd, std::int64_t ms, std::string_view who) {
  set_socket_timeout(fd, SO_SNDTIMEO, ms, who);
}

ScopedFd bind_listen_ipv4(const std::string& host, std::uint16_t port,
                          std::string_view who) {
  const std::string name(who);
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw std::runtime_error(name + ": socket failed: " + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error(name + ": '" + host +
                             "' is not a numeric IPv4 address");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    throw std::runtime_error(name + ": bind to " + host + ":" +
                             std::to_string(port) +
                             " failed: " + std::strerror(errno));
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    throw std::runtime_error(name + ": listen failed: " + std::strerror(errno));
  }
  return fd;
}

std::uint16_t bound_port(int fd, std::string_view who) {
  sockaddr_in address{};
  socklen_t length = sizeof address;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    throw std::runtime_error(std::string(who) +
                             ": getsockname failed: " + std::strerror(errno));
  }
  return ntohs(address.sin_port);
}

}  // namespace mpss::net
