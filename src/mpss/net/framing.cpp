#include "mpss/net/framing.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mpss::net {
namespace {

/// recv with EINTR retry; plain read() for non-socket fds is not needed here
/// (framing only ever runs over sockets).
ssize_t recv_retry(int fd, char* buffer, std::size_t count) {
  for (;;) {
    ssize_t n = ::recv(fd, buffer, count, 0);
    if (n >= 0 || errno != EINTR) return n;
  }
}

/// Reads exactly `count` bytes. Returns the bytes read before EOF (so the
/// caller can distinguish clean EOF at a frame boundary from truncation).
/// Throws FrameError on a hard read error.
std::size_t read_fully(int fd, char* buffer, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    ssize_t n = recv_retry(fd, buffer + done, count - done);
    if (n == 0) return done;  // EOF
    if (n < 0) {
      throw FrameError(std::string("read_frame: recv failed: ") +
                       std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return done;
}

}  // namespace

ScopedFd& ScopedFd::operator=(ScopedFd&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.release();
  }
  return *this;
}

int ScopedFd::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void ScopedFd::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool read_frame(int fd, std::string& payload, std::size_t max_bytes) {
  unsigned char prefix[4];
  std::size_t got = read_fully(fd, reinterpret_cast<char*>(prefix), sizeof prefix);
  if (got == 0) return false;  // clean EOF at a frame boundary
  if (got < sizeof prefix) {
    throw FrameError("read_frame: connection closed inside a length prefix");
  }
  std::uint32_t length = (std::uint32_t{prefix[0]} << 24) |
                         (std::uint32_t{prefix[1]} << 16) |
                         (std::uint32_t{prefix[2]} << 8) | std::uint32_t{prefix[3]};
  if (length > max_bytes) {
    throw FrameError("read_frame: frame of " + std::to_string(length) +
                     " bytes exceeds the " + std::to_string(max_bytes) +
                     "-byte limit");
  }
  payload.resize(length);
  if (read_fully(fd, payload.data(), length) < length) {
    throw FrameError("read_frame: connection closed inside a payload");
  }
  return true;
}

void write_frame(int fd, std::string_view payload, std::size_t max_bytes) {
  if (payload.size() > max_bytes) {
    throw FrameError("write_frame: frame of " + std::to_string(payload.size()) +
                     " bytes exceeds the " + std::to_string(max_bytes) +
                     "-byte limit");
  }
  auto length = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {static_cast<unsigned char>(length >> 24),
                             static_cast<unsigned char>(length >> 16),
                             static_cast<unsigned char>(length >> 8),
                             static_cast<unsigned char>(length)};
  std::string buffer;  // one send per frame: prefix and payload never straddle
  buffer.reserve(sizeof prefix + payload.size());
  buffer.append(reinterpret_cast<const char*>(prefix), sizeof prefix);
  buffer.append(payload);

  std::size_t done = 0;
  while (done < buffer.size()) {
    ssize_t n = ::send(fd, buffer.data() + done, buffer.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw FrameError(std::string("write_frame: send failed: ") +
                       std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

ScopedFd bind_listen_ipv4(const std::string& host, std::uint16_t port,
                          std::string_view who) {
  const std::string name(who);
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw std::runtime_error(name + ": socket failed: " + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error(name + ": '" + host +
                             "' is not a numeric IPv4 address");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    throw std::runtime_error(name + ": bind to " + host + ":" +
                             std::to_string(port) +
                             " failed: " + std::strerror(errno));
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    throw std::runtime_error(name + ": listen failed: " + std::strerror(errno));
  }
  return fd;
}

std::uint16_t bound_port(int fd, std::string_view who) {
  sockaddr_in address{};
  socklen_t length = sizeof address;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    throw std::runtime_error(std::string(who) +
                             ": getsockname failed: " + std::strerror(errno));
  }
  return ntohs(address.sin_port);
}

}  // namespace mpss::net
