#pragma once
// TCP solve daemon (S45, see DESIGN.md): the network front of BatchSolver.
//
// SolveServer listens on a loopback TCP socket and speaks the framed JSON
// protocol of net/protocol.hpp. One acceptor thread hands each connection to a
// reader/writer thread pair:
//
//   * the reader decodes frames and blocking-submits into the embedded
//     BatchSolver, so the service's bounded admission queue backpressures the
//     socket itself (a flooding client stalls in submit(), it is never
//     buffered without bound);
//   * the writer resolves the connection's futures strictly in request order
//     (responses are FIFO per connection even though solves run concurrently
//     across the pool).
//
// Service semantics carry over from S44 unchanged: priorities and soft
// deadlines travel as request hints, the LRU result cache is shared across
// connections, and a client that disconnects mid-flight has its outstanding
// solves cancelled through per-request CancelTokens (cancellation on
// disconnect). Graceful shutdown -- shutdown(), the destructor, or a client's
// "shutdown" verb -- stops the listener, half-closes every connection's read
// side, and then resolves and writes every already-accepted request before the
// threads join: no accepted future is ever dropped.
//
// Robustness (S48): readers run under per-connection read deadlines -- an
// optional idle timeout between requests and a frame timeout from a request's
// first byte to its last (the slowloris defense) -- and writers under
// SO_SNDTIMEO, so neither a byte-dribbling nor a never-reading peer can pin a
// thread forever. A per-connection inflight cap bounds the response FIFO: a
// client that pipelines past it is held in its own socket until the writer
// catches up. Every deadline expiry closes only the offending connection
// (bumping net.timeouts) and never drops an accepted future.
//
// Observability (S47): when a request carries the protocol's trace header the
// reader adopts that context, so the server's "net.request" span (and the
// "service.request" / engine spans under it) join the client's trace --
// net.request records the client's span as its remote parent, resolved by
// mpss_trace's multi-file merge. The "metrics" verb (and the standalone
// MetricsHttpServer) expose the Registry in Prometheus text format, and
// `slow_ms` turns on a structured one-line-JSON completion log for requests
// whose wall time meets the threshold.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "mpss/service/batch_solver.hpp"

namespace mpss::net {

struct SolveServerOptions {
  /// Numeric IPv4 address to bind ("127.0.0.1" keeps the daemon loopback-only;
  /// there is deliberately no hostname resolution here).
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Knobs of the embedded BatchSolver (workers, queue bound, cache size).
  BatchSolverOptions service;
  /// Per-frame payload ceiling, enforced on both directions.
  std::size_t max_frame_bytes = 32u << 20;
  /// How long a connection may sit idle between requests before the server
  /// closes it, in ms. 0 (the default) keeps connections open indefinitely --
  /// long-lived idle clients are legitimate here (bench harnesses, pools).
  std::int64_t idle_timeout_ms = 0;
  /// Ceiling on the wall time from a request frame's first byte to its last,
  /// in ms; <= 0 disables. The slowloris defense: a peer dribbling one byte a
  /// minute is cut off after this long, instead of pinning a reader forever.
  std::int64_t frame_timeout_ms = 30'000;
  /// SO_SNDTIMEO on accepted sockets, in ms; <= 0 disables. A peer that stops
  /// reading while responses back up stalls the writer at most this long; the
  /// write then fails, the response is dropped (the peer was not reading it),
  /// and the connection's remaining futures still resolve.
  std::int64_t write_timeout_ms = 30'000;
  /// Ceiling on unanswered requests buffered per connection. A client that
  /// pipelines past it is backpressured in its socket (the reader stops
  /// pulling frames until the writer catches up), bounding per-connection
  /// memory no matter how fast the peer floods. 0 means unlimited.
  std::size_t max_inflight_per_connection = 64;
  /// Slow-request log threshold in milliseconds: a completed request whose
  /// wall time (receipt to response) is >= this emits one structured JSON
  /// record -- id, verb, engine, status, queue_wait_us, wall_us, cache_hit,
  /// trace -- and bumps the net.slow_requests counter. 0 logs every request;
  /// the default -1 disables the log entirely.
  std::int64_t slow_ms = -1;
  /// Destination of the slow-request log; nullptr means std::clog. The stream
  /// must outlive the server; record writes are serialized internally.
  std::ostream* request_log = nullptr;
};

/// The daemon. Construction binds, listens, and starts serving; failures to
/// bind throw std::runtime_error. Destruction performs a graceful shutdown.
class SolveServer {
 public:
  explicit SolveServer(SolveServerOptions options = SolveServerOptions{});
  ~SolveServer();

  SolveServer(const SolveServer&) = delete;
  SolveServer& operator=(const SolveServer&) = delete;

  /// The bound port (the ephemeral one when options.port was 0).
  [[nodiscard]] std::uint16_t port() const;

  /// Connections currently open. Advisory, like BatchSolver::queue_depth().
  [[nodiscard]] std::size_t connection_count() const;

  /// The embedded service, for callers that want to share its cache stats or
  /// queue depth with their own telemetry.
  [[nodiscard]] BatchSolver& solver();

  /// Begins a graceful shutdown and returns once it completes: the listener
  /// closes, every accepted request resolves and its response is written (to
  /// peers still reading), and all threads join. Idempotent; a client's
  /// "shutdown" verb triggers the same sequence.
  void shutdown();

  /// Blocks until a shutdown (from any source) has completed. The daemon
  /// main()'s final statement.
  void wait();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mpss::net
