#include "mpss/net/fault_proxy.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <list>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "mpss/net/framing.hpp"
#include "mpss/util/random.hpp"

namespace mpss::net {
namespace {

bool send_all(int fd, const char* data, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    ssize_t n = ::send(fd, data + done, count - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

ScopedFd connect_upstream(const std::string& host, std::uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return fd;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    return ScopedFd{};
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                   sizeof address);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ScopedFd{};
  return fd;
}

void force_reset_on_close(int fd) {
  linger hard{1, 0};  // close() sends RST instead of FIN
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kReset: return "reset";
    case FaultKind::kStall: return "stall";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kShortWrite: return "short_write";
  }
  return "none";
}

class FaultProxy::Impl {
 public:
  /// One connection's drawn schedule: the fault, the leg it applies to
  /// (downstream = upstream->client), and the byte offset that triggers it.
  struct FaultPlan {
    FaultKind kind = FaultKind::kNone;
    bool downstream = true;
    std::uint64_t offset = 0;
  };

  /// One proxied connection: both sockets and the single pump thread that
  /// shuttles both directions via poll(). One thread per link (not one per
  /// direction) means the fault executor is the only toucher of the fds, so
  /// it may linger-close them to force an RST without racing a reader.
  struct Link {
    ScopedFd client;
    ScopedFd upstream;
    std::thread pump;
  };

  explicit Impl(FaultProxyOptions options)
      : options_(std::move(options)),
        rng_(options_.seed),
        listen_fd_(bind_listen_ipv4(options_.host, options_.port, "FaultProxy")),
        port_(bound_port(listen_fd_.get(), "FaultProxy")) {
    acceptor_ = std::thread([this] { accept_loop(); });
  }

  ~Impl() {
    stop_.store(true, std::memory_order_release);
    ::shutdown(listen_fd_.get(), SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    std::list<std::shared_ptr<Link>> links;
    {
      std::scoped_lock lock(mutex_);
      links.swap(links_);
    }
    for (const auto& link : links) {
      // Wake pumps blocked in poll/recv; stalled pumps notice stop_ on their
      // next tick. shutdown (not close) is safe while the pump still owns
      // the fds.
      if (link->client.valid()) ::shutdown(link->client.get(), SHUT_RDWR);
      if (link->upstream.valid()) ::shutdown(link->upstream.get(), SHUT_RDWR);
    }
    for (const auto& link : links) {
      if (link->pump.joinable()) link->pump.join();
    }
  }

  FaultProxyOptions options_;
  Xoshiro256 rng_;  // acceptor-thread only
  ScopedFd listen_fd_;
  std::uint16_t port_;
  std::thread acceptor_;
  std::atomic<bool> stop_{false};
  std::mutex mutex_;
  std::list<std::shared_ptr<Link>> links_;

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> faults_injected_{0};
  std::atomic<std::uint64_t> truncates_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> short_writes_{0};
  std::atomic<std::uint64_t> bytes_forwarded_{0};

  void accept_loop() {
    for (;;) {
      int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (raw < 0) {
        if (errno == EINTR) continue;
        return;
      }
      auto link = std::make_shared<Link>();
      link->client = ScopedFd(raw);
      link->upstream =
          connect_upstream(options_.upstream_host, options_.upstream_port);
      if (!link->upstream.valid()) continue;  // upstream gone: drop the client
      connections_.fetch_add(1, std::memory_order_relaxed);
      FaultPlan plan = draw_plan();
      if (plan.kind != FaultKind::kNone) {
        faults_injected_.fetch_add(1, std::memory_order_relaxed);
        switch (plan.kind) {
          case FaultKind::kTruncate: truncates_.fetch_add(1); break;
          case FaultKind::kReset: resets_.fetch_add(1); break;
          case FaultKind::kStall: stalls_.fetch_add(1); break;
          case FaultKind::kDelay: delays_.fetch_add(1); break;
          case FaultKind::kShortWrite: short_writes_.fetch_add(1); break;
          case FaultKind::kNone: break;
        }
      }
      {
        std::scoped_lock lock(mutex_);
        if (stop_.load(std::memory_order_acquire)) return;
        link->pump = std::thread([this, link, plan] { pump(*link, plan); });
        links_.push_back(link);
      }
    }
  }

  FaultPlan draw_plan() {
    FaultPlan plan;
    if (!rng_.bernoulli(options_.fault_probability)) return plan;
    // 1..5: every kind but kNone, equally likely.
    plan.kind = static_cast<FaultKind>(1 + rng_.below(5));
    plan.downstream = options_.faults_downstream_only || rng_.bernoulli(0.5);
    plan.offset = options_.max_fault_offset == 0
                      ? 0
                      : rng_.below(options_.max_fault_offset + 1);
    return plan;
  }

  /// Executes a drawn cut: partial forward already happened; now tear the
  /// link down the way the plan prescribes. Returns only after the victim
  /// can observe the fault.
  void execute_cut(Link& link, const FaultPlan& plan) {
    if (plan.kind == FaultKind::kReset) {
      force_reset_on_close(link.client.get());
      force_reset_on_close(link.upstream.get());
      link.client.close();
      link.upstream.close();
      return;
    }
    if (plan.kind == FaultKind::kTruncate) {
      ::shutdown(link.client.get(), SHUT_RDWR);
      ::shutdown(link.upstream.get(), SHUT_RDWR);
      return;
    }
    // kStall: keep both sockets open and forward nothing more. The victim
    // blocks until its own deadline; we block until teardown.
    while (!stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  /// Forwards one chunk, applying delay / short-write shaping.
  bool forward(int dst, const char* data, std::size_t count,
               const FaultPlan& plan, bool faulted_leg) {
    if (faulted_leg && plan.kind == FaultKind::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.delay_ms));
    }
    if (faulted_leg && plan.kind == FaultKind::kShortWrite) {
      // 1..7-byte slices, yielding between them: the receiver's reassembly
      // loop sees maximally fragmented frames.
      std::size_t done = 0;
      std::uint64_t slice_state = plan.offset + 0x9E3779B97F4A7C15ull;
      while (done < count) {
        std::size_t slice = 1 + static_cast<std::size_t>(
                                    splitmix64_like(slice_state) % 7);
        if (slice > count - done) slice = count - done;
        if (!send_all(dst, data + done, slice)) return false;
        done += slice;
        std::this_thread::yield();
      }
      bytes_forwarded_.fetch_add(count, std::memory_order_relaxed);
      return true;
    }
    if (!send_all(dst, data, count)) return false;
    bytes_forwarded_.fetch_add(count, std::memory_order_relaxed);
    return true;
  }

  static std::uint64_t splitmix64_like(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  void pump(Link& link, FaultPlan plan) {
    char buffer[4096];
    std::uint64_t faulted_leg_bytes = 0;
    bool client_open = true;    // client -> upstream direction still flowing
    bool upstream_open = true;  // upstream -> client direction still flowing
    while ((client_open || upstream_open) &&
           !stop_.load(std::memory_order_acquire)) {
      pollfd fds[2];
      fds[0] = {link.client.get(), static_cast<short>(client_open ? POLLIN : 0), 0};
      fds[1] = {link.upstream.get(), static_cast<short>(upstream_open ? POLLIN : 0), 0};
      int ready = ::poll(fds, 2, 100);
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (ready == 0) continue;  // tick: re-check stop_
      for (int side = 0; side < 2; ++side) {
        if ((fds[side].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const bool from_client = side == 0;
        int src = from_client ? link.client.get() : link.upstream.get();
        int dst = from_client ? link.upstream.get() : link.client.get();
        ssize_t n = ::recv(src, buffer, sizeof buffer, 0);
        if (n < 0) {
          if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
          return;  // torn; both fds die with the link
        }
        if (n == 0) {
          // Half-close propagation: tell the other peer this direction ended.
          ::shutdown(dst, SHUT_WR);
          (from_client ? client_open : upstream_open) = false;
          continue;
        }
        const bool faulted_leg = plan.kind != FaultKind::kNone &&
                                 (plan.downstream ? !from_client : from_client);
        if (faulted_leg && (plan.kind == FaultKind::kTruncate ||
                            plan.kind == FaultKind::kReset ||
                            plan.kind == FaultKind::kStall)) {
          std::uint64_t count = static_cast<std::uint64_t>(n);
          if (faulted_leg_bytes + count > plan.offset) {
            // The cut lands inside this chunk: forward the prefix up to the
            // offset, then execute.
            std::size_t keep =
                static_cast<std::size_t>(plan.offset - faulted_leg_bytes);
            if (keep > 0) forward(dst, buffer, keep, plan, false);
            faulted_leg_bytes = plan.offset;
            execute_cut(link, plan);
            return;
          }
          faulted_leg_bytes += count;
        }
        if (!forward(dst, buffer, static_cast<std::size_t>(n), plan,
                     faulted_leg)) {
          return;
        }
      }
    }
  }
};

FaultProxy::FaultProxy(FaultProxyOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

FaultProxy::~FaultProxy() = default;

std::uint16_t FaultProxy::port() const { return impl_->port_; }

FaultProxyStats FaultProxy::stats() const {
  FaultProxyStats stats;
  stats.connections = impl_->connections_.load(std::memory_order_relaxed);
  stats.faults_injected = impl_->faults_injected_.load(std::memory_order_relaxed);
  stats.truncates = impl_->truncates_.load(std::memory_order_relaxed);
  stats.resets = impl_->resets_.load(std::memory_order_relaxed);
  stats.stalls = impl_->stalls_.load(std::memory_order_relaxed);
  stats.delays = impl_->delays_.load(std::memory_order_relaxed);
  stats.short_writes = impl_->short_writes_.load(std::memory_order_relaxed);
  stats.bytes_forwarded = impl_->bytes_forwarded_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace mpss::net
