#pragma once
// Blocking client of the solve daemon (S45, see DESIGN.md).
//
// SolveClient connects to a SolveServer and exposes the in-process facade's
// shape over the wire: solve() returns a SolveResult, solve_many() a vector in
// input order. Exact schedules travel as rational strings, so a decoded
// result is bit-identical to the in-process solve() on the same Instance --
// the property test_net pins down.
//
// The client is strictly synchronous and not thread-safe: one request on the
// wire at a time, per instance. Callers wanting pipelining open several
// clients (the daemon handles each connection independently) -- that is what
// bench_server does to measure 1..N-connection throughput.
//
// Failure model: transport problems (connection refused, daemon gone, frame
// corruption) throw FrameError or std::runtime_error; protocol-level errors
// reported by the server (queue_full, shutdown, bad_request, internal) throw
// ProtocolError carrying the wire ErrorCode. Solve-level failures do NOT
// throw -- they come back as the result's status + error_detail, exactly as
// the facade reports them.
//
// Distributed tracing: when the process has a trace sink installed, every
// round trip runs inside a "client.solve" span and the protocol request
// carries that span's id plus the active trace id (allocating a fresh one
// when the caller has none), so the daemon's spans parent under the client's
// and `mpss_trace --chrome client.jsonl server.jsonl` joins the two sides
// into one tree. With no sink the request carries no trace header and the
// wire bytes are identical to an untraced build.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mpss/net/framing.hpp"
#include "mpss/net/protocol.hpp"

namespace mpss::net {

class SolveClient {
 public:
  /// Connects (numeric IPv4 only, matching the server). Throws
  /// std::runtime_error when the connection cannot be established.
  SolveClient(const std::string& host, std::uint16_t port,
              std::size_t max_frame_bytes = kMaxFrameBytes);

  SolveClient(SolveClient&&) noexcept = default;
  SolveClient& operator=(SolveClient&&) noexcept = default;
  SolveClient(const SolveClient&) = delete;
  SolveClient& operator=(const SolveClient&) = delete;

  /// Solves one instance on the daemon. `deadline_ms` (0 = none) is the soft
  /// deadline relative to the daemon's receipt; `priority` orders the daemon's
  /// admission queue. Only the wire-expressible knobs of `options` travel
  /// (engine and the serializable tuning fields; power/trace/cancel pointers
  /// stay local and are ignored).
  [[nodiscard]] SolveResult solve(const Instance& instance,
                                  const SolveOptions& options = SolveOptions{},
                                  int priority = 0,
                                  std::int64_t deadline_ms = 0);

  /// Solves a span of instances in one round trip; results in input order.
  [[nodiscard]] std::vector<SolveResult> solve_many(
      std::span<const Instance> instances,
      const SolveOptions& options = SolveOptions{}, int priority = 0,
      std::int64_t deadline_ms = 0);

  /// The daemon's stats payload (queue depth, cache counters, connections).
  [[nodiscard]] json::Value stats();

  /// The daemon's health payload ({"status":"ok","protocol":1}).
  [[nodiscard]] json::Value health();

  /// The daemon's metrics in Prometheus text exposition format (the same
  /// document `GET /metrics` serves when --metrics-port is enabled).
  [[nodiscard]] std::string metrics();

  /// Asks the daemon to drain and exit. Returns its ack payload; the daemon
  /// finishes every accepted request (including this connection's earlier
  /// ones) before closing.
  json::Value request_shutdown();

  /// Closes the connection. Outstanding daemon-side work for this connection
  /// is cancelled at its next engine checkpoint (cancellation on disconnect).
  void close() { fd_.close(); }

  [[nodiscard]] bool connected() const { return fd_.valid(); }

 private:
  [[nodiscard]] Response roundtrip(Request request);

  ScopedFd fd_;
  std::size_t max_frame_bytes_;
  std::uint64_t next_id_ = 1;
  std::string buffer_;
};

}  // namespace mpss::net
