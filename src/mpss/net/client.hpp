#pragma once
// Blocking client of the solve daemon (S45/S48, see DESIGN.md).
//
// SolveClient connects to a SolveServer and exposes the in-process facade's
// shape over the wire: solve() returns a SolveResult, solve_many() a vector in
// input order. Exact schedules travel as rational strings, so a decoded
// result is bit-identical to the in-process solve() on the same Instance --
// the property test_net pins down.
//
// The client is strictly synchronous and not thread-safe: one request on the
// wire at a time, per instance. Callers wanting pipelining open several
// clients (the daemon handles each connection independently) -- that is what
// bench_server does to measure 1..N-connection throughput.
//
// Time and failure (S48): SolveClientOptions arms the deadline hierarchy --
// a monotonic per-request budget over the whole round trip (reconnects and
// backoff sleeps included), socket send/recv timeouts (SO_SNDTIMEO /
// SO_RCVTIMEO) bounding each syscall beneath it, and a connect timeout. On a
// transport failure the client retries idempotent verbs on a fresh connection
// with full-jitter exponential backoff. Every solve request is content-
// fingerprinted by the daemon's result cache, so a retried solve that already
// executed is served from cache -- duplicates are safe AND cheap, which is
// what makes blind retry-on-timeout sound here. The shutdown verb is the one
// non-idempotent verb and is never retried. Retries bump the net.retries
// counter (net.timeouts for deadline expiries) and emit one "client.retry"
// trace event per attempt, so a retried round trip is visible in traces.
//
// Failure model: transport problems (connection refused, daemon gone, frame
// corruption, budget exhausted) throw FrameError or std::runtime_error after
// retries are spent; protocol-level errors reported by the server
// (queue_full, shutdown, bad_request, internal) throw ProtocolError carrying
// the wire ErrorCode -- of these only queue_full is transient, and it is the
// only one retried. Solve-level failures do NOT throw -- they come back as
// the result's status + error_detail, exactly as the facade reports them.
//
// Distributed tracing: when the process has a trace sink installed, every
// round trip runs inside a "client.solve" span and the protocol request
// carries that span's id plus the active trace id (allocating a fresh one
// when the caller has none), so the daemon's spans parent under the client's
// and `mpss_trace --chrome client.jsonl server.jsonl` joins the two sides
// into one tree. With no sink the request carries no trace header and the
// wire bytes are identical to an untraced build.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mpss/net/deadline.hpp"
#include "mpss/net/framing.hpp"
#include "mpss/net/protocol.hpp"

namespace mpss::net {

/// Retry schedule for idempotent verbs. Attempt 1 is the original request;
/// `max_attempts = 1` disables retries entirely.
struct RetryPolicy {
  int max_attempts = 3;
  /// Full-jitter exponential backoff between attempts: sleep uniform in
  /// [0, min(backoff_max_ms, backoff_ms * 2^(attempt-1))] milliseconds.
  std::int64_t backoff_ms = 10;
  std::int64_t backoff_max_ms = 2000;
  /// Seed of the jitter stream (reproducible under test). 0 re-seeds from the
  /// default splitmix64 constant.
  std::uint64_t jitter_seed = 0;
};

struct SolveClientOptions {
  /// Connect timeout in ms; <= 0 blocks on the OS default. Applies to the
  /// constructor's connect and to every retry reconnect.
  std::int64_t connect_timeout_ms = 0;
  /// Per-syscall socket timeout in ms (SO_RCVTIMEO + SO_SNDTIMEO); <= 0 means
  /// none. A recv that exceeds it surfaces as FrameError kTimeout.
  std::int64_t io_timeout_ms = 0;
  /// Monotonic budget for one whole round trip -- all attempts, reconnects,
  /// and backoff sleeps included; <= 0 means none. The effective per-syscall
  /// timeout is min(io_timeout_ms, remaining budget), so an armed budget
  /// implies socket timeouts even when io_timeout_ms is 0.
  std::int64_t request_budget_ms = 0;
  RetryPolicy retry;
  /// Per-frame payload ceiling, both directions.
  std::size_t max_frame_bytes = kMaxFrameBytes;
};

class SolveClient {
 public:
  /// Connects (numeric IPv4 only, matching the server). Throws
  /// std::runtime_error when the connection cannot be established within the
  /// options' connect timeout. The constructor itself does not retry --
  /// "daemon not there" should fail fast; retries cover failures that strike
  /// after a connection existed.
  SolveClient(const std::string& host, std::uint16_t port,
              SolveClientOptions options = SolveClientOptions{});

  /// Back-compat shape: default options with a custom frame cap.
  SolveClient(const std::string& host, std::uint16_t port,
              std::size_t max_frame_bytes);

  SolveClient(SolveClient&&) noexcept = default;
  SolveClient& operator=(SolveClient&&) noexcept = default;
  SolveClient(const SolveClient&) = delete;
  SolveClient& operator=(const SolveClient&) = delete;

  /// Solves one instance on the daemon. `deadline_ms` (0 = none) is the soft
  /// deadline relative to the daemon's receipt; `priority` orders the daemon's
  /// admission queue. Only the wire-expressible knobs of `options` travel
  /// (engine and the serializable tuning fields; power/trace/cancel pointers
  /// stay local and are ignored).
  [[nodiscard]] SolveResult solve(const Instance& instance,
                                  const SolveOptions& options = SolveOptions{},
                                  int priority = 0,
                                  std::int64_t deadline_ms = 0);

  /// Solves a span of instances in one round trip; results in input order.
  [[nodiscard]] std::vector<SolveResult> solve_many(
      std::span<const Instance> instances,
      const SolveOptions& options = SolveOptions{}, int priority = 0,
      std::int64_t deadline_ms = 0);

  /// The daemon's stats payload (queue depth, cache counters, connections).
  [[nodiscard]] json::Value stats();

  /// The daemon's health payload ({"status":"ok","protocol":1}).
  [[nodiscard]] json::Value health();

  /// The daemon's metrics in Prometheus text exposition format (the same
  /// document `GET /metrics` serves when --metrics-port is enabled).
  [[nodiscard]] std::string metrics();

  /// Asks the daemon to drain and exit. Returns its ack payload; the daemon
  /// finishes every accepted request (including this connection's earlier
  /// ones) before closing. Never retried: the first attempt may have armed
  /// the drain even when its ack was lost.
  json::Value request_shutdown();

  /// Closes the connection. Outstanding daemon-side work for this connection
  /// is cancelled at its next engine checkpoint (cancellation on disconnect).
  void close() { fd_.close(); }

  [[nodiscard]] bool connected() const { return fd_.valid(); }

 private:
  [[nodiscard]] Response roundtrip(Request request);
  [[nodiscard]] Response attempt(const Request& request, const Deadline& budget);
  void reconnect(const Deadline& budget);

  std::string host_;
  std::uint16_t port_ = 0;
  SolveClientOptions options_;
  ScopedFd fd_;
  std::uint64_t next_id_ = 1;
  std::uint64_t jitter_state_ = 0;
  std::string buffer_;
};

}  // namespace mpss::net
