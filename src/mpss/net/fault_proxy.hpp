#pragma once
// Fault-injecting loopback TCP proxy for hardening tests (S48, see DESIGN.md).
//
// FaultProxy sits between a SolveClient and a SolveServer on 127.0.0.1 and
// mangles traffic on a SEEDED schedule, so tests can drive the daemon through
// the failure modes a LAN only produces under load: torn connections, half-
// written frames, resets, stalls. The same seed replays the same fault
// sequence -- the fixed seed matrix in tests/test_faults.cpp is deterministic
// in which faults fire, and the assertions are invariants (every call resolves
// to a typed error or a successful retry; nothing hangs), not golden byte
// logs.
//
// Topology: one proxy connection = one upstream connection = two pump threads
// (client->upstream and upstream->client), each moving raw bytes -- the proxy
// is frame-agnostic, which is the point: it can cut a stream ANYWHERE,
// including inside a length prefix. Per accepted connection the seeded
// schedule draws one fault (or none, per `fault_probability`) and the byte
// offset it triggers at:
//
//   kNone      forward faithfully
//   kTruncate  forward N bytes client->upstream-ward, then close both sides
//              (orderly FIN: the victim sees EOF mid-frame -> kTruncated)
//   kReset     forward N bytes, then SO_LINGER{1,0}+close (RST: the victim
//              sees ECONNRESET -> kReset)
//   kStall     forward N bytes, then stop forwarding WITHOUT closing (the
//              victim blocks until its deadline -> kTimeout)
//   kDelay     hold every chunk `delay_ms` before forwarding (latency, not
//              failure: requests succeed if deadlines allow)
//   kShortWrite forward in 1..7-byte slices with micro-pauses (stresses the
//              reassembly loops; must be invisible to correctness)
//
// Stats are atomics, written by pump threads, readable while running.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace mpss::net {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kTruncate,
  kReset,
  kStall,
  kDelay,
  kShortWrite,
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

struct FaultProxyOptions {
  /// Upstream (the real server) -- numeric IPv4, like the rest of the layer.
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  /// Proxy listen address; port 0 picks an ephemeral port.
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Seed of the fault schedule; the same seed draws the same faults.
  std::uint64_t seed = 1;
  /// Probability that a connection is assigned a fault at all.
  double fault_probability = 1.0;
  /// Upper bound (exclusive is fine for 0) on the byte offset where truncate /
  /// reset / stall trigger; the draw is uniform in [0, max_fault_offset].
  std::uint64_t max_fault_offset = 256;
  /// Forwarding delay of kDelay connections, per chunk.
  std::int64_t delay_ms = 20;
  /// When true, faults are only injected on the upstream->client leg (server
  /// responses), leaving requests intact -- exercises the client's retry
  /// path without the server ever seeing a bad frame.
  bool faults_downstream_only = false;
};

struct FaultProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t truncates = 0;
  std::uint64_t resets = 0;
  std::uint64_t stalls = 0;
  std::uint64_t delays = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t bytes_forwarded = 0;
};

class FaultProxy {
 public:
  /// Binds and starts proxying. Throws std::runtime_error when the listen
  /// socket cannot be bound (connecting upstream happens per connection).
  explicit FaultProxy(FaultProxyOptions options);
  /// Tears everything down: stops the listener, closes every proxied
  /// connection (stalled ones included -- their victims see EOF/reset), joins
  /// all pump threads.
  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// The proxy's bound port -- what the client under test connects to.
  [[nodiscard]] std::uint16_t port() const;

  [[nodiscard]] FaultProxyStats stats() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mpss::net
