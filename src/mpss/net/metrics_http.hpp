#pragma once
// Minimal HTTP/1.0 scrape endpoint for the Prometheus exposition (S47, see
// DESIGN.md).
//
// MetricsHttpServer binds its own listening socket (framing.hpp utilities) and
// answers exactly one route: "GET /metrics" returns the current
// obs::render_prometheus() document with Content-Type
// text/plain; version=0.0.4; every other request gets 404. Each connection is
// served inline on the single accept thread and closed after one response
// (Connection: close) -- a scraper polls every few seconds, so there is
// nothing to pipeline, and keeping the listener single-threaded means it can
// never amplify load on a busy daemon.
//
// This is deliberately NOT a general HTTP server: no keep-alive, no chunked
// bodies, no TLS, request heads capped at 8 KiB. It exists so operators can
// point a stock Prometheus scraper at `mpss_served --metrics-port` without a
// sidecar, while protocol-speaking clients keep using the "metrics" verb.
//
// Because the endpoint is single-threaded, a slow client IS a denial of
// service unless reads are bounded (S48): the head read runs under a total
// deadline (`head_timeout_ms`), so a slowloris peer -- connect, then dribble
// or send nothing -- is cut off and counted (net.metrics_slow_clients)
// instead of pinning the acceptor forever.

#include <cstdint>
#include <memory>
#include <string>

namespace mpss::net {

class MetricsHttpServer {
 public:
  /// Binds and starts serving. `port` 0 picks an ephemeral port (read it back
  /// via port()). `head_timeout_ms` bounds the WHOLE request-head read per
  /// connection (first byte to blank line; <= 0 disables -- test-only).
  /// Throws std::runtime_error when the socket cannot be bound.
  explicit MetricsHttpServer(const std::string& host = "127.0.0.1",
                             std::uint16_t port = 0,
                             std::int64_t head_timeout_ms = 2'000);
  /// Stops the listener and joins the accept thread.
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mpss::net
