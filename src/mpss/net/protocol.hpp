#pragma once
// Versioned JSON wire protocol of the solve daemon (S45, see DESIGN.md).
//
// Every frame (net/framing.hpp) carries one JSON document. Requests:
//
//   {"v":1,"id":7,"verb":"solve","instance":{...},      // core/instance_json
//    "options":{"engine":"exact",...},                  // optional
//    "priority":0,"deadline_ms":500,                    // optional hints
//    "trace":{"id":"8589934593","parent":"2"}}          // optional trace ctx
//
// Verbs: "solve" (one instance), "solve_many" ("instances":[...], results in
// input order), "stats", "health", "metrics" (Prometheus text exposition),
// "shutdown" (graceful drain, ack first).
//
// The optional "trace" member carries the client's distributed-tracing
// context: its trace id and the client-side span the server's spans should
// parent under. Both are 64-bit and travel as *decimal strings* -- JSON
// numbers here are doubles, which silently truncate above 2^53. Additive and
// ignored by pre-trace servers, so the protocol version stays 1.
// Responses echo the request id; per-connection response order is request
// order (the daemon pipelines solves but writes in FIFO order):
//
//   {"v":1,"id":7,"ok":true,"results":[{"status":"ok","error_detail":"",
//       "energy":42.5,"schedule":{"type":"exact","machines":2,
//       "slices":[[0,"0","1/2","3",1],...]}}]}          // [m,start,end,speed,job]
//   {"v":1,"id":8,"ok":true,"stats":{...}}              // verb-shaped payloads
//   {"v":1,"id":9,"ok":false,"error":{"code":"bad_request","detail":"..."}}
//
// Error payloads carry transport/admission failures (the ErrorCode below);
// solve-level failures are NOT transport errors -- they come back ok:true with
// the result's status ("invalid_options", "infeasible", ...) and its
// error_detail, exactly as the in-process facade reports them. Exact schedules
// travel as rational strings and energies at max_digits10, so a decoded result
// is bit-identical to the in-process one.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mpss/core/instance_json.hpp"
#include "mpss/solve.hpp"
#include "mpss/util/json.hpp"

namespace mpss::net {

/// Bumped on any incompatible change to the document schemas above. The
/// server rejects other versions with kUnsupportedVersion (it never guesses).
inline constexpr std::uint32_t kProtocolVersion = 1;

enum class Verb { kSolve, kSolveMany, kStats, kHealth, kMetrics, kShutdown };

/// Stable lowercase name ("solve", "solve_many", "stats", "health", "metrics",
/// "shutdown") and its inverse (nullopt for unknown names).
[[nodiscard]] const char* verb_name(Verb verb);
[[nodiscard]] std::optional<Verb> verb_from_name(std::string_view name);

/// Transport/admission error codes of the "error" payload. SubmitStatus maps
/// here (kQueueFull, kShutdown); SolveStatus stays in the result payload.
enum class ErrorCode {
  kBadFrame,            // unframeable stream (oversized/truncated); fatal
  kBadRequest,          // JSON or schema violation in an otherwise good frame
  kUnsupportedVersion,  // "v" missing or != kProtocolVersion
  kUnknownVerb,
  kQueueFull,           // SubmitStatus::kQueueFull surfaced to the client
  kShutdown,            // SubmitStatus::kShutdown: daemon is draining
  kInternal,            // engine InternalError (a server-side bug)
};

/// Stable snake_case name ("bad_frame", ...) and its inverse.
[[nodiscard]] const char* error_code_name(ErrorCode code);
[[nodiscard]] std::optional<ErrorCode> error_code_from_name(std::string_view name);

/// A protocol-level failure: carries the wire error code alongside the detail.
/// Thrown by the decoders (and by the client when the server reports an
/// error payload).
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& detail)
      : std::runtime_error(detail), code_(code) {}

  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// One decoded request. `instances` holds one element for kSolve and N for
/// kSolveMany; it is empty for the parameterless verbs.
struct Request {
  std::uint64_t id = 0;
  Verb verb = Verb::kHealth;
  std::vector<Instance> instances;
  SolveOptions options;        // wire-expressible knobs only; pointers stay null
  int priority = 0;
  std::int64_t deadline_ms = 0;  // soft deadline relative to receipt; 0 = none
  std::uint64_t trace_id = 0;    // distributed trace id; 0 = untraced request
  std::uint64_t parent_span = 0;  // client-side span to parent under (with
                                  // trace_id; a span id of the *client* process)
};

[[nodiscard]] std::string encode_request(const Request& request);
/// Throws ProtocolError (kBadRequest / kUnsupportedVersion / kUnknownVerb).
[[nodiscard]] Request decode_request(std::string_view payload);

/// The wire-expressible subset of SolveOptions (engine + every serializable
/// result-shaping knob; the pointer knobs -- power, trace, cancel -- do not
/// travel). Members absent from the JSON keep their defaults.
[[nodiscard]] json::Value solve_options_to_json_value(const SolveOptions& options);
[[nodiscard]] SolveOptions solve_options_from_json_value(const json::Value& value);

/// SolveResult codec: status + error_detail + energy + schedule. SolveStats
/// telemetry stays server-side (the daemon's Registry aggregates it).
[[nodiscard]] json::Value result_to_json_value(const SolveResult& result);
[[nodiscard]] SolveResult result_from_json_value(const json::Value& value);

[[nodiscard]] std::string encode_results_response(
    std::uint64_t id, std::span<const SolveResult> results);
/// Verb-shaped success payload under `key` ("stats", "health", "shutdown").
[[nodiscard]] std::string encode_payload_response(std::uint64_t id,
                                                  std::string_view key,
                                                  json::Value payload);
[[nodiscard]] std::string encode_error_response(std::uint64_t id, ErrorCode code,
                                                std::string_view detail);

/// A decoded response, in whichever of the three shapes it arrived.
struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  ErrorCode code = ErrorCode::kInternal;  // when !ok
  std::string detail;                     // when !ok
  std::vector<SolveResult> results;       // "results" responses
  json::Value payload;                    // verb-shaped payload, else null
};

/// Throws ProtocolError(kBadRequest) on malformed documents.
[[nodiscard]] Response decode_response(std::string_view payload);

}  // namespace mpss::net
