#include "mpss/net/metrics_http.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string_view>
#include <thread>

#include "mpss/net/deadline.hpp"
#include "mpss/net/framing.hpp"
#include "mpss/obs/export.hpp"
#include "mpss/obs/registry.hpp"

namespace mpss::net {
namespace {

/// Largest request head we accept before replying 404 and closing: a scrape
/// request is one short line plus a few headers.
constexpr std::size_t kMaxHeadBytes = 8u << 10;

/// Reads until the blank line ending the request head, EOF, the cap, or the
/// deadline. Returns what was read (possibly truncated -- the request line is
/// all we parse, so a truncated tail is harmless). `timed_out` reports a
/// deadline expiry so the caller can count the slow client; the head gathered
/// so far is still returned (and will parse as 404 if incomplete).
std::string read_head(int fd, const Deadline& deadline, bool& timed_out) {
  std::string head;
  char buffer[1024];
  timed_out = false;
  while (head.size() < kMaxHeadBytes &&
         head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    if (deadline.armed()) {
      // The deadline covers the whole head, so a peer dribbling one byte per
      // poll round cannot extend it: each wait is against the same absolute
      // point, re-checked after every partial read.
      std::int64_t left = deadline.remaining_ms();
      if (left == 0) {
        timed_out = true;
        break;
      }
      pollfd poll_fd{fd, POLLIN, 0};
      int ready = ::poll(&poll_fd, 1, static_cast<int>(left));
      if (ready == 0) continue;  // re-check remaining_ms at the top
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
    }
    ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    head.append(buffer, static_cast<std::size_t>(n));
  }
  return head;
}

void send_all(int fd, std::string_view data) {
  std::size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // scraper gone mid-response; nothing to salvage
    }
    done += static_cast<std::size_t>(n);
  }
}

std::string http_response(std::string_view status, std::string_view body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

class MetricsHttpServer::Impl {
 public:
  Impl(const std::string& host, std::uint16_t port, std::int64_t head_timeout_ms)
      : listen_fd_(bind_listen_ipv4(host, port, "MetricsHttpServer")),
        port_(bound_port(listen_fd_.get(), "MetricsHttpServer")),
        head_timeout_ms_(head_timeout_ms) {
    acceptor_ = std::thread([this] { accept_loop(); });
  }

  ~Impl() {
    // SHUT_RDWR pops the acceptor out of accept(); close after the join.
    ::shutdown(listen_fd_.get(), SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
  }

  std::uint16_t port_value() const { return port_; }

 private:
  void accept_loop() {
    for (;;) {
      int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (raw < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down
      }
      ScopedFd fd(raw);
      serve(fd.get());
      // ScopedFd closes; Connection: close is the whole lifecycle.
    }
  }

  void serve(int fd) {
    bool timed_out = false;
    std::string head =
        read_head(fd, Deadline::after_ms(head_timeout_ms_), timed_out);
    if (timed_out) {
      obs::Registry::global().add("net.metrics_slow_clients");
      obs::Registry::global().add("net.timeouts");
      return;  // no response: the peer was not speaking HTTP at our pace
    }
    // Request line: METHOD SP TARGET SP VERSION. Only "GET /metrics" (with an
    // optional query string) is a hit.
    std::string_view line(head);
    if (auto eol = line.find_first_of("\r\n"); eol != std::string_view::npos) {
      line = line.substr(0, eol);
    }
    bool is_get = line.substr(0, 4) == "GET ";
    std::string_view target = is_get ? line.substr(4) : std::string_view{};
    if (auto space = target.find(' '); space != std::string_view::npos) {
      target = target.substr(0, space);
    }
    if (auto query = target.find('?'); query != std::string_view::npos) {
      target = target.substr(0, query);
    }
    if (is_get && target == "/metrics") {
      obs::Registry::global().add("net.metrics_scrapes");
      send_all(fd, http_response("200 OK", obs::render_prometheus()));
    } else {
      send_all(fd, http_response("404 Not Found", "not found\n"));
    }
  }

  ScopedFd listen_fd_;
  std::uint16_t port_;
  std::int64_t head_timeout_ms_;
  std::thread acceptor_;
};

MetricsHttpServer::MetricsHttpServer(const std::string& host, std::uint16_t port,
                                     std::int64_t head_timeout_ms)
    : impl_(std::make_unique<Impl>(host, port, head_timeout_ms)) {}

MetricsHttpServer::~MetricsHttpServer() = default;

std::uint16_t MetricsHttpServer::port() const { return impl_->port_value(); }

}  // namespace mpss::net
