#include "mpss/net/metrics_http.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string_view>
#include <thread>

#include "mpss/net/framing.hpp"
#include "mpss/obs/export.hpp"
#include "mpss/obs/registry.hpp"

namespace mpss::net {
namespace {

/// Largest request head we accept before replying 404 and closing: a scrape
/// request is one short line plus a few headers.
constexpr std::size_t kMaxHeadBytes = 8u << 10;

/// Reads until the blank line ending the request head, EOF, or the cap.
/// Returns what was read (possibly truncated -- the request line is all we
/// parse, so a truncated tail is harmless).
std::string read_head(int fd) {
  std::string head;
  char buffer[1024];
  while (head.size() < kMaxHeadBytes &&
         head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    head.append(buffer, static_cast<std::size_t>(n));
  }
  return head;
}

void send_all(int fd, std::string_view data) {
  std::size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // scraper gone mid-response; nothing to salvage
    }
    done += static_cast<std::size_t>(n);
  }
}

std::string http_response(std::string_view status, std::string_view body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

class MetricsHttpServer::Impl {
 public:
  Impl(const std::string& host, std::uint16_t port)
      : listen_fd_(bind_listen_ipv4(host, port, "MetricsHttpServer")),
        port_(bound_port(listen_fd_.get(), "MetricsHttpServer")) {
    acceptor_ = std::thread([this] { accept_loop(); });
  }

  ~Impl() {
    // SHUT_RDWR pops the acceptor out of accept(); close after the join.
    ::shutdown(listen_fd_.get(), SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
  }

  std::uint16_t port_value() const { return port_; }

 private:
  void accept_loop() {
    for (;;) {
      int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (raw < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down
      }
      ScopedFd fd(raw);
      serve(fd.get());
      // ScopedFd closes; Connection: close is the whole lifecycle.
    }
  }

  void serve(int fd) {
    std::string head = read_head(fd);
    // Request line: METHOD SP TARGET SP VERSION. Only "GET /metrics" (with an
    // optional query string) is a hit.
    std::string_view line(head);
    if (auto eol = line.find_first_of("\r\n"); eol != std::string_view::npos) {
      line = line.substr(0, eol);
    }
    bool is_get = line.substr(0, 4) == "GET ";
    std::string_view target = is_get ? line.substr(4) : std::string_view{};
    if (auto space = target.find(' '); space != std::string_view::npos) {
      target = target.substr(0, space);
    }
    if (auto query = target.find('?'); query != std::string_view::npos) {
      target = target.substr(0, query);
    }
    if (is_get && target == "/metrics") {
      obs::Registry::global().add("net.metrics_scrapes");
      send_all(fd, http_response("200 OK", obs::render_prometheus()));
    } else {
      send_all(fd, http_response("404 Not Found", "not found\n"));
    }
  }

  ScopedFd listen_fd_;
  std::uint16_t port_;
  std::thread acceptor_;
};

MetricsHttpServer::MetricsHttpServer(const std::string& host, std::uint16_t port)
    : impl_(std::make_unique<Impl>(host, port)) {}

MetricsHttpServer::~MetricsHttpServer() = default;

std::uint16_t MetricsHttpServer::port() const { return impl_->port_value(); }

}  // namespace mpss::net
