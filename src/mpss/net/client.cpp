#include "mpss/net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "mpss/obs/registry.hpp"
#include "mpss/obs/span.hpp"

namespace mpss::net {
namespace {

/// connect() with an optional timeout: non-blocking connect, poll for
/// writability, then read the socket error back. `timeout_ms <= 0` keeps the
/// plain blocking connect (the OS default timeout).
ScopedFd connect_to(const std::string& host, std::uint16_t port,
                    std::int64_t timeout_ms) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw std::runtime_error(std::string("SolveClient: socket failed: ") +
                             std::strerror(errno));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("SolveClient: '" + host +
                             "' is not a numeric IPv4 address");
  }
  auto fail = [&](const std::string& why) -> std::runtime_error {
    return std::runtime_error("SolveClient: connect to " + host + ":" +
                              std::to_string(port) + " failed: " + why);
  };

  if (timeout_ms <= 0) {
    int rc;
    do {
      rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                     sizeof address);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) throw fail(std::strerror(errno));
    return fd;
  }

  int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) < 0) {
    throw fail(std::string("fcntl: ") + std::strerror(errno));
  }
  int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                     sizeof address);
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    throw fail(std::strerror(errno));
  }
  if (rc != 0) {
    auto deadline = Deadline::after_ms(timeout_ms);
    for (;;) {
      std::int64_t left = deadline.remaining_ms();
      if (left == 0) {
        obs::Registry::global().add("net.timeouts");
        throw fail("connect timed out after " + std::to_string(timeout_ms) +
                   "ms");
      }
      pollfd poll_fd{fd.get(), POLLOUT, 0};
      int ready = ::poll(&poll_fd, 1, static_cast<int>(left));
      if (ready > 0) break;
      if (ready == 0) continue;  // re-check the absolute deadline
      if (errno == EINTR) continue;
      throw fail(std::string("poll: ") + std::strerror(errno));
    }
    int error = 0;
    socklen_t length = sizeof error;
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &error, &length) != 0) {
      throw fail(std::string("getsockopt: ") + std::strerror(errno));
    }
    if (error != 0) throw fail(std::strerror(error));
  }
  if (::fcntl(fd.get(), F_SETFL, flags) < 0) {
    throw fail(std::string("fcntl restore: ") + std::strerror(errno));
  }
  return fd;
}

/// Would a fresh connection plausibly succeed where this failure did not?
/// Oversize frames are deterministic protocol violations; everything else
/// (truncation, timeout, reset, io) is transient by assumption.
bool transient(const FrameError& error) {
  return error.kind() != FrameError::Kind::kOversize;
}

}  // namespace

SolveClient::SolveClient(const std::string& host, std::uint16_t port,
                         SolveClientOptions options)
    : host_(host),
      port_(port),
      options_(options),
      fd_(connect_to(host, port, options_.connect_timeout_ms)),
      jitter_state_(options_.retry.jitter_seed != 0
                        ? options_.retry.jitter_seed
                        : 0x9E3779B97F4A7C15ull) {
  if (options_.io_timeout_ms > 0) {
    set_recv_timeout(fd_.get(), options_.io_timeout_ms, "SolveClient");
    set_send_timeout(fd_.get(), options_.io_timeout_ms, "SolveClient");
  }
}

SolveClient::SolveClient(const std::string& host, std::uint16_t port,
                         std::size_t max_frame_bytes)
    : SolveClient(host, port, [max_frame_bytes] {
        SolveClientOptions options;
        options.max_frame_bytes = max_frame_bytes;
        return options;
      }()) {}

void SolveClient::reconnect(const Deadline& budget) {
  fd_.close();
  std::int64_t timeout = budget.clamp_ms(options_.connect_timeout_ms);
  fd_ = connect_to(host_, port_, timeout);
  if (options_.io_timeout_ms > 0) {
    set_recv_timeout(fd_.get(), options_.io_timeout_ms, "SolveClient");
    set_send_timeout(fd_.get(), options_.io_timeout_ms, "SolveClient");
  }
}

Response SolveClient::attempt(const Request& request, const Deadline& budget) {
  if (budget.expired()) {
    obs::Registry::global().add("net.timeouts");
    throw FrameError("SolveClient: request budget exhausted before send",
                     FrameError::Kind::kTimeout);
  }
  if (budget.armed()) {
    // Clamp each syscall to the remaining budget so a single hung recv cannot
    // outlive the request. remaining_ms() is > 0 here (expired() was false),
    // so the clamp never accidentally clears a timeout.
    std::int64_t per_op = budget.clamp_ms(options_.io_timeout_ms);
    set_recv_timeout(fd_.get(), per_op, "SolveClient");
    set_send_timeout(fd_.get(), per_op, "SolveClient");
  }
  write_frame(fd_.get(), encode_request(request), options_.max_frame_bytes);
  if (!read_frame(fd_.get(), buffer_, options_.max_frame_bytes)) {
    throw FrameError("SolveClient: server closed the connection",
                     FrameError::Kind::kTruncated);
  }
  Response response = decode_response(buffer_);
  if (response.id != request.id) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "SolveClient: response id " +
                            std::to_string(response.id) +
                            " does not match request id " +
                            std::to_string(request.id));
  }
  if (!response.ok) throw ProtocolError(response.code, response.detail);
  return response;
}

Response SolveClient::roundtrip(Request request) {
  if (!fd_.valid()) {
    throw std::runtime_error("SolveClient: connection is closed");
  }
  request.id = next_id_++;
  // Trace context: reuse the caller's trace id when one is active; otherwise,
  // if this process traces at all (a sink is installed), start a fresh trace
  // so the server's spans still join up under this round trip. Untraced
  // processes skip all of this and the wire document stays header-free.
  std::uint64_t trace_id = obs::current_trace().trace_id;
  std::optional<obs::TraceContextScope> fresh_trace;
  if (trace_id == 0 && obs::Registry::global().sink() != nullptr) {
    trace_id = obs::Registry::global().next_trace_id();
    fresh_trace.emplace(obs::TraceContext{trace_id, 0, 0});
  }
  // One span over ALL attempts: a retried round trip is one logical request,
  // and the per-attempt "client.retry" events below land inside it.
  obs::SpanScope span(nullptr, "client.solve");
  if (span.active() && trace_id != 0) {
    request.trace_id = trace_id;
    request.parent_span = span.id();
  }

  // The shutdown verb is the one verb whose duplicate delivery has a side
  // effect (arming a second drain is harmless, but the first ack may have
  // been written to a connection we already abandoned -- the drain is in
  // flight and a retry would just race it). Everything else is idempotent:
  // solves are fingerprint-cached, stats/health/metrics are reads.
  const bool idempotent = request.verb != Verb::kShutdown;
  const int max_attempts =
      idempotent && options_.retry.max_attempts > 1 ? options_.retry.max_attempts
                                                    : 1;
  Deadline budget = Deadline::after_ms(options_.request_budget_ms);

  for (int attempt_number = 1;; ++attempt_number) {
    try {
      return attempt(request, budget);
    } catch (const FrameError& error) {
      if (error.kind() == FrameError::Kind::kTimeout) {
        obs::Registry::global().add("net.timeouts");
      }
      if (!transient(error) || attempt_number >= max_attempts ||
          budget.expired()) {
        throw;
      }
    } catch (const ProtocolError& error) {
      // Of the server-reported errors only queue_full is transient: the
      // admission queue drains, and re-submitting a fingerprinted request is
      // free if it actually ran. bad_request/unsupported_version are
      // deterministic; internal means a server bug; shutdown means the
      // daemon is leaving.
      if (error.code() != ErrorCode::kQueueFull ||
          attempt_number >= max_attempts || budget.expired()) {
        throw;
      }
    } catch (const std::runtime_error&) {
      // A reconnect inside an earlier retry failed; the next loop iteration
      // tries again (the daemon may be restarting behind us).
      if (attempt_number >= max_attempts || budget.expired()) throw;
    }

    // Backoff (full jitter), clamped so the sleep itself cannot blow the
    // budget, then retry on a FRESH connection -- the old stream has no
    // resync point after a partial frame.
    std::int64_t delay = backoff_full_jitter(
        attempt_number - 1, options_.retry.backoff_ms,
        options_.retry.backoff_max_ms, jitter_state_);
    // Plain min, NOT clamp_ms: a zero backoff draw means "retry now", and
    // clamp_ms would read it as "unlimited" and sleep the whole budget.
    if (budget.armed() && delay > budget.remaining_ms()) {
      delay = budget.remaining_ms();
    }
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    obs::Registry::global().add("net.retries");
    // a = attempt that failed, value carries nothing; the label's span
    // context ties it to this round trip's client.solve span.
    obs::emit(nullptr, obs::EventKind::kCounter, "client.retry",
              static_cast<std::uint64_t>(attempt_number));
    reconnect(budget);
  }
}

SolveResult SolveClient::solve(const Instance& instance,
                               const SolveOptions& options, int priority,
                               std::int64_t deadline_ms) {
  Request request;
  request.verb = Verb::kSolve;
  request.instances.push_back(instance);
  request.options = options;
  request.priority = priority;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  if (response.results.size() != 1) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "SolveClient: expected 1 result, got " +
                            std::to_string(response.results.size()));
  }
  return std::move(response.results.front());
}

std::vector<SolveResult> SolveClient::solve_many(
    std::span<const Instance> instances, const SolveOptions& options,
    int priority, std::int64_t deadline_ms) {
  Request request;
  request.verb = Verb::kSolveMany;
  request.instances.assign(instances.begin(), instances.end());
  request.options = options;
  request.priority = priority;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  if (response.results.size() != instances.size()) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "SolveClient: expected " +
                            std::to_string(instances.size()) +
                            " results, got " +
                            std::to_string(response.results.size()));
  }
  return std::move(response.results);
}

json::Value SolveClient::stats() {
  Request request;
  request.verb = Verb::kStats;
  return roundtrip(std::move(request)).payload.at("stats");
}

json::Value SolveClient::health() {
  Request request;
  request.verb = Verb::kHealth;
  return roundtrip(std::move(request)).payload.at("health");
}

std::string SolveClient::metrics() {
  Request request;
  request.verb = Verb::kMetrics;
  return roundtrip(std::move(request)).payload.at("metrics").as_string();
}

json::Value SolveClient::request_shutdown() {
  Request request;
  request.verb = Verb::kShutdown;
  return roundtrip(std::move(request)).payload.at("shutdown");
}

}  // namespace mpss::net
