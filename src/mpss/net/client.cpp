#include "mpss/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "mpss/obs/registry.hpp"
#include "mpss/obs/span.hpp"

namespace mpss::net {
namespace {

ScopedFd connect_to(const std::string& host, std::uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw std::runtime_error(std::string("SolveClient: socket failed: ") +
                             std::strerror(errno));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("SolveClient: '" + host +
                             "' is not a numeric IPv4 address");
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                   sizeof address);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    throw std::runtime_error("SolveClient: connect to " + host + ":" +
                             std::to_string(port) +
                             " failed: " + std::strerror(errno));
  }
  return fd;
}

}  // namespace

SolveClient::SolveClient(const std::string& host, std::uint16_t port,
                         std::size_t max_frame_bytes)
    : fd_(connect_to(host, port)), max_frame_bytes_(max_frame_bytes) {}

Response SolveClient::roundtrip(Request request) {
  if (!fd_.valid()) {
    throw std::runtime_error("SolveClient: connection is closed");
  }
  request.id = next_id_++;
  // Trace context: reuse the caller's trace id when one is active; otherwise,
  // if this process traces at all (a sink is installed), start a fresh trace
  // so the server's spans still join up under this round trip. Untraced
  // processes skip all of this and the wire document stays header-free.
  std::uint64_t trace_id = obs::current_trace().trace_id;
  std::optional<obs::TraceContextScope> fresh_trace;
  if (trace_id == 0 && obs::Registry::global().sink() != nullptr) {
    trace_id = obs::Registry::global().next_trace_id();
    fresh_trace.emplace(obs::TraceContext{trace_id, 0, 0});
  }
  obs::SpanScope span(nullptr, "client.solve");
  if (span.active() && trace_id != 0) {
    request.trace_id = trace_id;
    request.parent_span = span.id();
  }
  write_frame(fd_.get(), encode_request(request), max_frame_bytes_);
  if (!read_frame(fd_.get(), buffer_, max_frame_bytes_)) {
    throw FrameError("SolveClient: server closed the connection");
  }
  Response response = decode_response(buffer_);
  if (response.id != request.id) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "SolveClient: response id " +
                            std::to_string(response.id) +
                            " does not match request id " +
                            std::to_string(request.id));
  }
  if (!response.ok) throw ProtocolError(response.code, response.detail);
  return response;
}

SolveResult SolveClient::solve(const Instance& instance,
                               const SolveOptions& options, int priority,
                               std::int64_t deadline_ms) {
  Request request;
  request.verb = Verb::kSolve;
  request.instances.push_back(instance);
  request.options = options;
  request.priority = priority;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  if (response.results.size() != 1) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "SolveClient: expected 1 result, got " +
                            std::to_string(response.results.size()));
  }
  return std::move(response.results.front());
}

std::vector<SolveResult> SolveClient::solve_many(
    std::span<const Instance> instances, const SolveOptions& options,
    int priority, std::int64_t deadline_ms) {
  Request request;
  request.verb = Verb::kSolveMany;
  request.instances.assign(instances.begin(), instances.end());
  request.options = options;
  request.priority = priority;
  request.deadline_ms = deadline_ms;
  Response response = roundtrip(std::move(request));
  if (response.results.size() != instances.size()) {
    throw ProtocolError(ErrorCode::kBadRequest,
                        "SolveClient: expected " +
                            std::to_string(instances.size()) +
                            " results, got " +
                            std::to_string(response.results.size()));
  }
  return std::move(response.results);
}

json::Value SolveClient::stats() {
  Request request;
  request.verb = Verb::kStats;
  return roundtrip(std::move(request)).payload.at("stats");
}

json::Value SolveClient::health() {
  Request request;
  request.verb = Verb::kHealth;
  return roundtrip(std::move(request)).payload.at("health");
}

std::string SolveClient::metrics() {
  Request request;
  request.verb = Verb::kMetrics;
  return roundtrip(std::move(request)).payload.at("metrics").as_string();
}

json::Value SolveClient::request_shutdown() {
  Request request;
  request.verb = Verb::kShutdown;
  return roundtrip(std::move(request)).payload.at("shutdown");
}

}  // namespace mpss::net
