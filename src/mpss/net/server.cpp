#include "mpss/net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <list>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "mpss/net/framing.hpp"
#include "mpss/net/protocol.hpp"
#include "mpss/obs/export.hpp"
#include "mpss/obs/histogram.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/obs/span.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/cancel.hpp"

namespace mpss::net {

class SolveServer::Impl {
 public:
  /// One response slot in a connection's FIFO. Either `futures` holds the
  /// solves to resolve (solve / solve_many), or `ready` holds a pre-encoded
  /// response (verb payloads and admission errors). When both are present the
  /// futures are consumed first and `ready` wins -- the partial-admission
  /// failure path, where already-accepted solves must still resolve.
  struct Entry {
    std::uint64_t id = 0;
    Verb verb = Verb::kHealth;
    std::vector<std::future<SolveResult>> futures;
    std::vector<std::shared_ptr<CancelToken>> tokens;
    std::string ready;
    std::string ready_status;  // completion-log status of a `ready` response
    std::string engine;        // engine name, solve entries only (for the log)
    std::uint64_t trace_id = 0;  // distributed trace id, 0 when untraced
    CancelToken::Clock::time_point received{};
  };

  /// What resolve() learned about an entry, for the completion log: the
  /// aggregated status plus the service-side annotations the solves carried
  /// back through their result counters (batch_solver.cpp stamps them).
  struct Completion {
    std::string status;
    std::uint64_t queue_wait_us = 0;  // max across the entry's solves
    bool cache_hit = false;           // any solve served from the result cache
  };

  struct Connection {
    ScopedFd fd;
    std::thread reader;
    std::thread writer;

    std::mutex mutex;
    std::condition_variable entry_ready;
    std::condition_variable entry_popped;  // writer pops -> reader may enqueue
    std::deque<Entry> pending;  // writer consumes the front; reader appends
    bool reader_done = false;
    /// Set (before SHUT_RD) by the graceful-drain path so the reader's EOF is
    /// not mistaken for a client disconnect -- drained requests keep running.
    std::atomic<bool> draining{false};
  };

  explicit Impl(SolveServerOptions options)
      : options_(std::move(options)),
        solver_(options_.service),
        listen_fd_(bind_listen_ipv4(options_.host, options_.port, "SolveServer")),
        port_(bound_port(listen_fd_.get(), "SolveServer")) {
    // Pre-register the S48 robustness counters so /metrics exposes them at
    // zero from the first scrape, instead of only after the first incident.
    obs::Registry::global().add("net.retries", 0);
    obs::Registry::global().add("net.timeouts", 0);
    acceptor_ = std::thread([this] { accept_loop(); });
    supervisor_ = std::thread([this] { supervise(); });
  }

  ~Impl() {
    request_shutdown();
    if (supervisor_.joinable()) supervisor_.join();
  }

  SolveServerOptions options_;
  BatchSolver solver_;
  ScopedFd listen_fd_;
  std::uint16_t port_;
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
  std::mutex log_mutex_;  // serializes completion-log records across writers

  std::thread acceptor_;
  std::thread supervisor_;

  mutable std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  std::condition_variable done_cv_;
  std::list<std::shared_ptr<Connection>> connections_;
  std::list<std::shared_ptr<Connection>> zombies_;  // closed; joined at shutdown
  bool shutdown_requested_ = false;
  bool done_ = false;

  void request_shutdown() {
    {
      std::scoped_lock lock(mutex_);
      if (shutdown_requested_) return;
      shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
  }

  void wait_done() {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return done_; });
  }

  void accept_loop() {
    for (;;) {
      int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down (or a fatal accept error): stop serving
      }
      auto connection = std::make_shared<Connection>();
      connection->fd = ScopedFd(fd);
      if (options_.write_timeout_ms > 0) {
        try {
          set_send_timeout(fd, options_.write_timeout_ms, "SolveServer");
        } catch (const std::runtime_error&) {
          continue;  // a dying fd; ScopedFd closes it, keep accepting
        }
      }
      {
        std::scoped_lock lock(mutex_);
        if (shutdown_requested_) continue;  // ScopedFd closes the late arrival
        obs::Registry::global().add("net.connections");
        connection->reader = std::thread(
            [this, connection] { read_loop(*connection); });
        connection->writer = std::thread(
            [this, connection] { write_loop(*connection); });
        connections_.push_back(connection);
      }
    }
  }

  /// The one shutdown sequence, run on the supervisor thread so a client's
  /// "shutdown" verb (observed on a reader thread) can trigger it without
  /// joining itself.
  void supervise() {
    {
      std::unique_lock lock(mutex_);
      shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
    }
    // Stop the listener; SHUT_RDWR pops the acceptor out of accept().
    ::shutdown(listen_fd_.get(), SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    listen_fd_.close();

    // Drain every connection: half-close the read side (the reader sees a
    // clean EOF, flagged as draining so nothing is cancelled), then join the
    // pair -- the writer exits only after the pending FIFO is empty, i.e.
    // after every accepted request resolved and its response was written.
    std::list<std::shared_ptr<Connection>> connections;
    {
      std::scoped_lock lock(mutex_);
      connections.swap(connections_);
    }
    for (const auto& connection : connections) {
      connection->draining.store(true, std::memory_order_release);
      ::shutdown(connection->fd.get(), SHUT_RD);
    }
    for (const auto& connection : connections) {
      if (connection->reader.joinable()) connection->reader.join();
      if (connection->writer.joinable()) connection->writer.join();
    }
    // Zombies (client-closed connections) exited on their own; a reader may
    // still be inside prune(), so keep draining the list until it settles.
    for (;;) {
      std::list<std::shared_ptr<Connection>> zombies;
      {
        std::scoped_lock lock(mutex_);
        zombies.swap(zombies_);
      }
      if (zombies.empty()) break;
      for (const auto& connection : zombies) {
        if (connection->reader.joinable()) connection->reader.join();
        if (connection->writer.joinable()) connection->writer.join();
      }
    }
    solver_.shutdown();
    {
      std::scoped_lock lock(mutex_);
      done_ = true;
    }
    done_cv_.notify_all();
  }

  void enqueue(Connection& connection, Entry entry) {
    {
      std::unique_lock lock(connection.mutex);
      // Inflight cap: hold this reader (and, through TCP flow control, the
      // client) until the writer drains below the cap. The writer never stops
      // popping -- even with an unwritable peer it keeps resolving -- so this
      // wait always makes progress.
      if (options_.max_inflight_per_connection > 0) {
        connection.entry_popped.wait(lock, [&] {
          return connection.pending.size() <
                 options_.max_inflight_per_connection;
        });
      }
      connection.pending.push_back(std::move(entry));
    }
    connection.entry_ready.notify_one();
  }

  void read_loop(Connection& connection) {
    std::string payload;
    bool frame_error = false;
    const ReadDeadlines deadlines{options_.idle_timeout_ms,
                                  options_.frame_timeout_ms};
    try {
      while (read_frame(connection.fd.get(), payload, options_.max_frame_bytes,
                        deadlines)) {
        obs::Registry::global().add("net.requests");
        obs::emit(nullptr, obs::EventKind::kCounter, "net.request",
                  /*a=*/payload.size());
        handle_frame(connection, payload);
      }
    } catch (const FrameError& error) {
      // Unframeable stream: no resync point exists, drop the connection. The
      // writer flushes what was already accepted, exactly like a plain EOF.
      obs::Registry::global().add("net.frame_errors");
      if (error.kind() == FrameError::Kind::kTimeout) {
        obs::Registry::global().add("net.timeouts");
        obs::emit(nullptr, obs::EventKind::kCounter, "net.read_timeout");
      }
      frame_error = true;
    }
    if (frame_error) {
      // Sever the socket both ways so the peer observes the cutoff promptly
      // (the fd itself lives until the connection object dies at shutdown).
      // The stream is beyond resync, so undelivered responses are already
      // lost; the writer keeps resolving futures and its writes fail fast.
      ::shutdown(connection.fd.get(), SHUT_RDWR);
    }
    const bool draining = connection.draining.load(std::memory_order_acquire);
    if (!draining || frame_error) {
      // The client is gone (or garbled): nobody will read the remaining
      // responses, so stop the outstanding solves at their next checkpoint.
      std::size_t cancelled = 0;
      {
        std::scoped_lock lock(connection.mutex);
        for (Entry& entry : connection.pending) {
          for (const auto& token : entry.tokens) {
            token->request_cancel();
            ++cancelled;
          }
        }
      }
      if (cancelled != 0) {
        obs::Registry::global().add("net.cancelled_on_disconnect", cancelled);
        obs::emit(nullptr, obs::EventKind::kCounter, "net.disconnect_cancel",
                  cancelled);
      }
    }
    {
      std::scoped_lock lock(connection.mutex);
      connection.reader_done = true;
    }
    connection.entry_ready.notify_one();
    if (!draining) prune(connection);
  }

  /// Moves a client-closed connection to the zombie list so
  /// connection_count() tracks live peers. The supervisor joins zombies at
  /// shutdown (their threads exit on their own long before that); detaching
  /// would let a late writer outlive the Impl it captures.
  void prune(Connection& connection) {
    std::scoped_lock lock(mutex_);
    for (auto it = connections_.begin(); it != connections_.end(); ++it) {
      if (it->get() == &connection) {
        zombies_.push_back(std::move(*it));
        connections_.erase(it);
        obs::Registry::global().add("net.disconnects");
        return;
      }
    }
  }

  void handle_frame(Connection& connection, std::string_view payload) {
    Request request;
    try {
      request = decode_request(payload);
    } catch (const ProtocolError& error) {
      obs::Registry::global().add("net.errors");
      Entry entry;
      entry.ready = encode_error_response(0, error.code(), error.what());
      entry.ready_status = error_code_name(error.code());
      enqueue(connection, std::move(entry));
      return;
    }
    // Adopt the client's trace context for the dispatch: net.request becomes
    // a root span whose *remote* parent is the client's client.solve span
    // (recorded as rparent; only mpss_trace's multi-file merge can resolve
    // it), and every event emitted below carries the client's trace id.
    std::optional<obs::TraceContextScope> trace_scope;
    if (request.trace_id != 0) {
      trace_scope.emplace(
          obs::TraceContext{request.trace_id, 0, request.parent_span});
    }
    obs::SpanScope request_span(nullptr, "net.request");
    switch (request.verb) {
      case Verb::kSolve:
      case Verb::kSolveMany:
        handle_solve(connection, std::move(request), request_span.id());
        return;
      case Verb::kStats: {
        Entry entry = payload_entry(request);
        entry.ready =
            encode_payload_response(request.id, "stats", stats_payload());
        enqueue(connection, std::move(entry));
        return;
      }
      case Verb::kHealth: {
        json::Value health;
        health.set("status", "ok");
        health.set("protocol", static_cast<double>(kProtocolVersion));
        Entry entry = payload_entry(request);
        entry.ready = encode_payload_response(request.id, "health", std::move(health));
        enqueue(connection, std::move(entry));
        return;
      }
      case Verb::kMetrics: {
        Entry entry = payload_entry(request);
        entry.ready = encode_payload_response(
            request.id, "metrics", json::Value(obs::render_prometheus()));
        enqueue(connection, std::move(entry));
        return;
      }
      case Verb::kShutdown: {
        // Ack first (the FIFO guarantees the ack is written after every
        // earlier response), then hand the drain to the supervisor.
        json::Value payload_value;
        payload_value.set("draining", true);
        Entry entry = payload_entry(request);
        entry.ready = encode_payload_response(request.id, "shutdown",
                                              std::move(payload_value));
        enqueue(connection, std::move(entry));
        obs::emit(nullptr, obs::EventKind::kCounter, "net.shutdown_verb");
        request_shutdown();
        return;
      }
    }
  }

  /// The shared Entry shape of the verb-payload responses (stats, health,
  /// metrics, shutdown): identified, timed, and pre-resolved as "ok".
  static Entry payload_entry(const Request& request) {
    Entry entry;
    entry.id = request.id;
    entry.verb = request.verb;
    entry.trace_id = request.trace_id;
    entry.ready_status = "ok";
    entry.received = CancelToken::Clock::now();
    return entry;
  }

  void handle_solve(Connection& connection, Request request,
                    obs::SpanId net_span) {
    Entry entry;
    entry.id = request.id;
    entry.verb = request.verb;
    entry.trace_id = request.trace_id;
    entry.engine = engine_name(request.options.engine);
    entry.received = CancelToken::Clock::now();
    entry.futures.reserve(request.instances.size());
    entry.tokens.reserve(request.instances.size());
    for (Instance& instance : request.instances) {
      auto token = std::make_shared<CancelToken>();
      if (request.deadline_ms > 0) {
        token->set_deadline(entry.received +
                            std::chrono::milliseconds(request.deadline_ms));
      }
      SolveRequest solve_request{std::move(instance), request.options};
      solve_request.options.cancel = token.get();
      solve_request.priority = request.priority;
      // The worker that picks this up re-installs the trace context with the
      // reader's net.request span as the *local* parent, so service.request
      // nests under it across the thread hop.
      solve_request.trace_id = request.trace_id;
      solve_request.parent_span = net_span;
      // Blocking submit: the bounded admission queue backpressures this
      // reader (and through TCP flow control, the client) instead of letting
      // requests pile up in memory.
      Submission submission = solver_.submit(std::move(solve_request));
      if (!submission.accepted()) {
        obs::Registry::global().add("net.errors");
        ErrorCode code = submission.status == SubmitStatus::kQueueFull
                             ? ErrorCode::kQueueFull
                             : ErrorCode::kShutdown;
        entry.ready = encode_error_response(
            request.id, code,
            std::string("admission failed: ") +
                submit_status_name(submission.status));
        entry.ready_status = error_code_name(code);
        break;  // accepted futures stay in the entry and still resolve
      }
      entry.futures.push_back(std::move(submission.future));
      entry.tokens.push_back(std::move(token));
    }
    enqueue(connection, std::move(entry));
  }

  void write_loop(Connection& connection) {
    obs::Histogram& request_us =
        obs::Registry::global().histogram("net.request_us");
    bool peer_writable = true;
    for (;;) {
      // The front entry stays in the deque while its futures resolve: the
      // reader's disconnect-cancel walk must still reach its tokens. Only the
      // writer pops, and deque push_back never invalidates front references,
      // so the pointer taken under the lock stays valid across the unlock.
      Entry* front = nullptr;
      {
        std::unique_lock lock(connection.mutex);
        connection.entry_ready.wait(lock, [&] {
          return connection.reader_done || !connection.pending.empty();
        });
        if (connection.pending.empty()) return;  // reader done, FIFO drained
        front = &connection.pending.front();
      }
      Entry& entry = *front;
      Completion completion;
      std::string response = resolve(entry, completion);
      const bool timed = entry.received != CancelToken::Clock::time_point{};
      std::uint64_t wall_us = 0;
      if (timed) {
        wall_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                CancelToken::Clock::now() - entry.received)
                .count());
        // The latency histogram keeps its pre-metrics meaning: solve wall
        // time only, not the (instant) verb payloads.
        if (entry.verb == Verb::kSolve || entry.verb == Verb::kSolveMany) {
          request_us.record(wall_us);
        }
      }
      if (timed && options_.slow_ms >= 0 &&
          wall_us / 1000 >= static_cast<std::uint64_t>(options_.slow_ms)) {
        obs::Registry::global().add("net.slow_requests");
        log_request(entry, completion, wall_us);
      }
      if (peer_writable) {
        try {
          write_frame(connection.fd.get(), response, options_.max_frame_bytes);
          obs::Registry::global().add("net.responses");
          obs::emit(nullptr, obs::EventKind::kCounter, "net.response",
                    /*a=*/response.size(), /*b=*/entry.futures.size(),
                    entry.received == CancelToken::Clock::time_point{}
                        ? 0.0
                        : std::chrono::duration<double>(
                              CancelToken::Clock::now() - entry.received)
                              .count());
        } catch (const FrameError& error) {
          // Peer gone mid-write -- or, under SO_SNDTIMEO, a peer that stopped
          // reading long enough to fill its receive window. Keep resolving
          // futures (the no-dropped-futures contract) but stop writing.
          peer_writable = false;
          obs::Registry::global().add("net.write_failures");
          if (error.kind() == FrameError::Kind::kTimeout) {
            obs::Registry::global().add("net.timeouts");
          }
        }
      }
      {
        std::scoped_lock lock(connection.mutex);
        connection.pending.pop_front();
      }
      connection.entry_popped.notify_one();
    }
  }

  /// Resolves an entry into its wire response. Every future is consumed even
  /// on the error paths -- an accepted request always runs to a result.
  /// `completion` collects what the log needs: the aggregated status and the
  /// queue-wait / cache-hit annotations the service stamped into the results.
  std::string resolve(Entry& entry, Completion& completion) {
    std::vector<SolveResult> results;
    results.reserve(entry.futures.size());
    std::string internal_error;
    for (std::future<SolveResult>& future : entry.futures) {
      try {
        results.push_back(future.get());
      } catch (const std::exception& error) {
        // InternalError propagated through the promise: a server-side bug,
        // reported as such (after the remaining futures are consumed).
        if (internal_error.empty()) internal_error = error.what();
      }
    }
    completion.status = "ok";
    for (const SolveResult& result : results) {
      completion.queue_wait_us =
          std::max(completion.queue_wait_us,
                   result.stats.counters.value("service.queue_wait_us"));
      if (result.stats.counters.value("service.cache_hit") != 0) {
        completion.cache_hit = true;
      }
      if (completion.status == "ok" && !result.ok()) {
        completion.status = solve_status_name(result.status);
      }
    }
    if (!entry.ready.empty()) {
      completion.status = entry.ready_status;
      return std::move(entry.ready);
    }
    if (!internal_error.empty()) {
      obs::Registry::global().add("net.errors");
      completion.status = error_code_name(ErrorCode::kInternal);
      return encode_error_response(entry.id, ErrorCode::kInternal,
                                   internal_error);
    }
    return encode_results_response(entry.id, results);
  }

  /// One machine-parseable completion record (a single JSON object per line),
  /// mirroring what an operator needs to chase a slow request back to its
  /// trace: `{"event":"request","id":7,"verb":"solve","engine":"exact",
  /// "status":"ok","queue_wait_us":120,"wall_us":5300,"cache_hit":false,
  /// "trace":"8589934593"}`. The trace id is a decimal string for the same
  /// reason it is on the wire (doubles truncate past 2^53).
  void log_request(const Entry& entry, const Completion& completion,
                   std::uint64_t wall_us) {
    json::Value record;
    record.set("event", "request");
    record.set("id", static_cast<double>(entry.id));
    record.set("verb", verb_name(entry.verb));
    if (!entry.engine.empty()) record.set("engine", entry.engine);
    record.set("status", completion.status);
    record.set("queue_wait_us", static_cast<double>(completion.queue_wait_us));
    record.set("wall_us", static_cast<double>(wall_us));
    record.set("cache_hit", completion.cache_hit);
    if (entry.trace_id != 0) record.set("trace", std::to_string(entry.trace_id));
    std::ostream* out =
        options_.request_log != nullptr ? options_.request_log : &std::clog;
    std::scoped_lock lock(log_mutex_);
    *out << json::serialize(record) << '\n' << std::flush;
  }

  json::Value stats_payload() {
    json::Value stats;
    stats.set("queue_depth", solver_.queue_depth());
    stats.set("workers", solver_.worker_count());
    stats.set("uptime_seconds",
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start_)
                  .count());
    BatchSolver::CacheStats cache = solver_.cache_stats();
    json::Value cache_value;
    cache_value.set("hits", static_cast<double>(cache.hits));
    cache_value.set("misses", static_cast<double>(cache.misses));
    cache_value.set("evictions", static_cast<double>(cache.evictions));
    stats.set("cache", std::move(cache_value));
    // Latency summaries of the two service-path histograms, in microseconds.
    // Quantiles are interpolated within log2 buckets (obs/histogram.hpp), so
    // they are estimates -- good to ~a factor of 2, like the buckets.
    json::Value latency;
    obs::HistogramMap histograms = obs::Registry::global().histogram_snapshot();
    for (const char* name : {"net.request_us", "service.queue_wait_us"}) {
      auto it = histograms.find(name);
      if (it == histograms.end()) continue;
      obs::Percentiles summary = obs::percentiles(it->second);
      json::Value quantiles;
      quantiles.set("p50", static_cast<double>(summary.p50));
      quantiles.set("p90", static_cast<double>(summary.p90));
      quantiles.set("p99", static_cast<double>(summary.p99));
      quantiles.set("count", static_cast<double>(it->second.count));
      latency.set(name, std::move(quantiles));
    }
    stats.set("latency", std::move(latency));
    {
      std::scoped_lock lock(mutex_);
      stats.set("connections", connections_.size());
    }
    return stats;
  }
};

SolveServer::SolveServer(SolveServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SolveServer::~SolveServer() = default;

std::uint16_t SolveServer::port() const { return impl_->port_; }

std::size_t SolveServer::connection_count() const {
  std::scoped_lock lock(impl_->mutex_);
  return impl_->connections_.size();
}

BatchSolver& SolveServer::solver() { return impl_->solver_; }

void SolveServer::shutdown() {
  impl_->request_shutdown();
  impl_->wait_done();
}

void SolveServer::wait() { impl_->wait_done(); }

}  // namespace mpss::net
