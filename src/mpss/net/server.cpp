#include "mpss/net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <future>
#include <list>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "mpss/net/framing.hpp"
#include "mpss/net/protocol.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/cancel.hpp"

namespace mpss::net {
namespace {

ScopedFd bind_and_listen(const std::string& host, std::uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw std::runtime_error(std::string("SolveServer: socket failed: ") +
                             std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("SolveServer: '" + host +
                             "' is not a numeric IPv4 address");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    throw std::runtime_error("SolveServer: bind to " + host + ":" +
                             std::to_string(port) +
                             " failed: " + std::strerror(errno));
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    throw std::runtime_error(std::string("SolveServer: listen failed: ") +
                             std::strerror(errno));
  }
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in address{};
  socklen_t length = sizeof address;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    throw std::runtime_error(std::string("SolveServer: getsockname failed: ") +
                             std::strerror(errno));
  }
  return ntohs(address.sin_port);
}

}  // namespace

class SolveServer::Impl {
 public:
  /// One response slot in a connection's FIFO. Either `futures` holds the
  /// solves to resolve (solve / solve_many), or `ready` holds a pre-encoded
  /// response (verb payloads and admission errors). When both are present the
  /// futures are consumed first and `ready` wins -- the partial-admission
  /// failure path, where already-accepted solves must still resolve.
  struct Entry {
    std::uint64_t id = 0;
    std::vector<std::future<SolveResult>> futures;
    std::vector<std::shared_ptr<CancelToken>> tokens;
    std::string ready;
    CancelToken::Clock::time_point received{};
  };

  struct Connection {
    ScopedFd fd;
    std::thread reader;
    std::thread writer;

    std::mutex mutex;
    std::condition_variable entry_ready;
    std::deque<Entry> pending;  // writer consumes the front; reader appends
    bool reader_done = false;
    /// Set (before SHUT_RD) by the graceful-drain path so the reader's EOF is
    /// not mistaken for a client disconnect -- drained requests keep running.
    std::atomic<bool> draining{false};
  };

  explicit Impl(SolveServerOptions options)
      : options_(std::move(options)),
        solver_(options_.service),
        listen_fd_(bind_and_listen(options_.host, options_.port)),
        port_(bound_port(listen_fd_.get())) {
    acceptor_ = std::thread([this] { accept_loop(); });
    supervisor_ = std::thread([this] { supervise(); });
  }

  ~Impl() {
    request_shutdown();
    if (supervisor_.joinable()) supervisor_.join();
  }

  SolveServerOptions options_;
  BatchSolver solver_;
  ScopedFd listen_fd_;
  std::uint16_t port_;

  std::thread acceptor_;
  std::thread supervisor_;

  mutable std::mutex mutex_;
  std::condition_variable shutdown_cv_;
  std::condition_variable done_cv_;
  std::list<std::shared_ptr<Connection>> connections_;
  std::list<std::shared_ptr<Connection>> zombies_;  // closed; joined at shutdown
  bool shutdown_requested_ = false;
  bool done_ = false;

  void request_shutdown() {
    {
      std::scoped_lock lock(mutex_);
      if (shutdown_requested_) return;
      shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
  }

  void wait_done() {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return done_; });
  }

  void accept_loop() {
    for (;;) {
      int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down (or a fatal accept error): stop serving
      }
      auto connection = std::make_shared<Connection>();
      connection->fd = ScopedFd(fd);
      {
        std::scoped_lock lock(mutex_);
        if (shutdown_requested_) continue;  // ScopedFd closes the late arrival
        obs::Registry::global().add("net.connections");
        connection->reader = std::thread(
            [this, connection] { read_loop(*connection); });
        connection->writer = std::thread(
            [this, connection] { write_loop(*connection); });
        connections_.push_back(connection);
      }
    }
  }

  /// The one shutdown sequence, run on the supervisor thread so a client's
  /// "shutdown" verb (observed on a reader thread) can trigger it without
  /// joining itself.
  void supervise() {
    {
      std::unique_lock lock(mutex_);
      shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
    }
    // Stop the listener; SHUT_RDWR pops the acceptor out of accept().
    ::shutdown(listen_fd_.get(), SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    listen_fd_.close();

    // Drain every connection: half-close the read side (the reader sees a
    // clean EOF, flagged as draining so nothing is cancelled), then join the
    // pair -- the writer exits only after the pending FIFO is empty, i.e.
    // after every accepted request resolved and its response was written.
    std::list<std::shared_ptr<Connection>> connections;
    {
      std::scoped_lock lock(mutex_);
      connections.swap(connections_);
    }
    for (const auto& connection : connections) {
      connection->draining.store(true, std::memory_order_release);
      ::shutdown(connection->fd.get(), SHUT_RD);
    }
    for (const auto& connection : connections) {
      if (connection->reader.joinable()) connection->reader.join();
      if (connection->writer.joinable()) connection->writer.join();
    }
    // Zombies (client-closed connections) exited on their own; a reader may
    // still be inside prune(), so keep draining the list until it settles.
    for (;;) {
      std::list<std::shared_ptr<Connection>> zombies;
      {
        std::scoped_lock lock(mutex_);
        zombies.swap(zombies_);
      }
      if (zombies.empty()) break;
      for (const auto& connection : zombies) {
        if (connection->reader.joinable()) connection->reader.join();
        if (connection->writer.joinable()) connection->writer.join();
      }
    }
    solver_.shutdown();
    {
      std::scoped_lock lock(mutex_);
      done_ = true;
    }
    done_cv_.notify_all();
  }

  void enqueue(Connection& connection, Entry entry) {
    {
      std::scoped_lock lock(connection.mutex);
      connection.pending.push_back(std::move(entry));
    }
    connection.entry_ready.notify_one();
  }

  void read_loop(Connection& connection) {
    std::string payload;
    bool frame_error = false;
    try {
      while (read_frame(connection.fd.get(), payload, options_.max_frame_bytes)) {
        obs::Registry::global().add("net.requests");
        obs::emit(nullptr, obs::EventKind::kCounter, "net.request",
                  /*a=*/payload.size());
        handle_frame(connection, payload);
      }
    } catch (const FrameError&) {
      // Unframeable stream: no resync point exists, drop the connection. The
      // writer flushes what was already accepted, exactly like a plain EOF.
      obs::Registry::global().add("net.frame_errors");
      frame_error = true;
    }
    const bool draining = connection.draining.load(std::memory_order_acquire);
    if (!draining || frame_error) {
      // The client is gone (or garbled): nobody will read the remaining
      // responses, so stop the outstanding solves at their next checkpoint.
      std::size_t cancelled = 0;
      {
        std::scoped_lock lock(connection.mutex);
        for (Entry& entry : connection.pending) {
          for (const auto& token : entry.tokens) {
            token->request_cancel();
            ++cancelled;
          }
        }
      }
      if (cancelled != 0) {
        obs::Registry::global().add("net.cancelled_on_disconnect", cancelled);
        obs::emit(nullptr, obs::EventKind::kCounter, "net.disconnect_cancel",
                  cancelled);
      }
    }
    {
      std::scoped_lock lock(connection.mutex);
      connection.reader_done = true;
    }
    connection.entry_ready.notify_one();
    if (!draining) prune(connection);
  }

  /// Moves a client-closed connection to the zombie list so
  /// connection_count() tracks live peers. The supervisor joins zombies at
  /// shutdown (their threads exit on their own long before that); detaching
  /// would let a late writer outlive the Impl it captures.
  void prune(Connection& connection) {
    std::scoped_lock lock(mutex_);
    for (auto it = connections_.begin(); it != connections_.end(); ++it) {
      if (it->get() == &connection) {
        zombies_.push_back(std::move(*it));
        connections_.erase(it);
        obs::Registry::global().add("net.disconnects");
        return;
      }
    }
  }

  void handle_frame(Connection& connection, std::string_view payload) {
    Request request;
    try {
      request = decode_request(payload);
    } catch (const ProtocolError& error) {
      obs::Registry::global().add("net.errors");
      Entry entry;
      entry.ready = encode_error_response(0, error.code(), error.what());
      enqueue(connection, std::move(entry));
      return;
    }
    switch (request.verb) {
      case Verb::kSolve:
      case Verb::kSolveMany:
        handle_solve(connection, std::move(request));
        return;
      case Verb::kStats: {
        Entry entry;
        entry.id = request.id;
        entry.ready =
            encode_payload_response(request.id, "stats", stats_payload());
        enqueue(connection, std::move(entry));
        return;
      }
      case Verb::kHealth: {
        json::Value health;
        health.set("status", "ok");
        health.set("protocol", static_cast<double>(kProtocolVersion));
        Entry entry;
        entry.id = request.id;
        entry.ready = encode_payload_response(request.id, "health", std::move(health));
        enqueue(connection, std::move(entry));
        return;
      }
      case Verb::kShutdown: {
        // Ack first (the FIFO guarantees the ack is written after every
        // earlier response), then hand the drain to the supervisor.
        json::Value payload_value;
        payload_value.set("draining", true);
        Entry entry;
        entry.id = request.id;
        entry.ready = encode_payload_response(request.id, "shutdown",
                                              std::move(payload_value));
        enqueue(connection, std::move(entry));
        obs::emit(nullptr, obs::EventKind::kCounter, "net.shutdown_verb");
        request_shutdown();
        return;
      }
    }
  }

  void handle_solve(Connection& connection, Request request) {
    Entry entry;
    entry.id = request.id;
    entry.received = CancelToken::Clock::now();
    entry.futures.reserve(request.instances.size());
    entry.tokens.reserve(request.instances.size());
    for (Instance& instance : request.instances) {
      auto token = std::make_shared<CancelToken>();
      if (request.deadline_ms > 0) {
        token->set_deadline(entry.received +
                            std::chrono::milliseconds(request.deadline_ms));
      }
      SolveRequest solve_request{std::move(instance), request.options};
      solve_request.options.cancel = token.get();
      solve_request.priority = request.priority;
      // Blocking submit: the bounded admission queue backpressures this
      // reader (and through TCP flow control, the client) instead of letting
      // requests pile up in memory.
      Submission submission = solver_.submit(std::move(solve_request));
      if (!submission.accepted()) {
        obs::Registry::global().add("net.errors");
        ErrorCode code = submission.status == SubmitStatus::kQueueFull
                             ? ErrorCode::kQueueFull
                             : ErrorCode::kShutdown;
        entry.ready = encode_error_response(
            request.id, code,
            std::string("admission failed: ") +
                submit_status_name(submission.status));
        break;  // accepted futures stay in the entry and still resolve
      }
      entry.futures.push_back(std::move(submission.future));
      entry.tokens.push_back(std::move(token));
    }
    enqueue(connection, std::move(entry));
  }

  void write_loop(Connection& connection) {
    obs::Histogram& request_us =
        obs::Registry::global().histogram("net.request_us");
    bool peer_writable = true;
    for (;;) {
      // The front entry stays in the deque while its futures resolve: the
      // reader's disconnect-cancel walk must still reach its tokens. Only the
      // writer pops, and deque push_back never invalidates front references,
      // so the pointer taken under the lock stays valid across the unlock.
      Entry* front = nullptr;
      {
        std::unique_lock lock(connection.mutex);
        connection.entry_ready.wait(lock, [&] {
          return connection.reader_done || !connection.pending.empty();
        });
        if (connection.pending.empty()) return;  // reader done, FIFO drained
        front = &connection.pending.front();
      }
      Entry& entry = *front;
      std::string response = resolve(entry);
      if (entry.received != CancelToken::Clock::time_point{}) {
        request_us.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                CancelToken::Clock::now() - entry.received)
                .count()));
      }
      if (peer_writable) {
        try {
          write_frame(connection.fd.get(), response, options_.max_frame_bytes);
          obs::Registry::global().add("net.responses");
          obs::emit(nullptr, obs::EventKind::kCounter, "net.response",
                    /*a=*/response.size(), /*b=*/entry.futures.size(),
                    entry.received == CancelToken::Clock::time_point{}
                        ? 0.0
                        : std::chrono::duration<double>(
                              CancelToken::Clock::now() - entry.received)
                              .count());
        } catch (const FrameError&) {
          // Peer gone mid-write. Keep resolving futures (the no-dropped-
          // futures contract) but stop writing.
          peer_writable = false;
          obs::Registry::global().add("net.write_failures");
        }
      }
      {
        std::scoped_lock lock(connection.mutex);
        connection.pending.pop_front();
      }
    }
  }

  /// Resolves an entry into its wire response. Every future is consumed even
  /// on the error paths -- an accepted request always runs to a result.
  std::string resolve(Entry& entry) {
    std::vector<SolveResult> results;
    results.reserve(entry.futures.size());
    std::string internal_error;
    for (std::future<SolveResult>& future : entry.futures) {
      try {
        results.push_back(future.get());
      } catch (const std::exception& error) {
        // InternalError propagated through the promise: a server-side bug,
        // reported as such (after the remaining futures are consumed).
        if (internal_error.empty()) internal_error = error.what();
      }
    }
    if (!entry.ready.empty()) return std::move(entry.ready);
    if (!internal_error.empty()) {
      obs::Registry::global().add("net.errors");
      return encode_error_response(entry.id, ErrorCode::kInternal,
                                   internal_error);
    }
    return encode_results_response(entry.id, results);
  }

  json::Value stats_payload() {
    json::Value stats;
    stats.set("queue_depth", solver_.queue_depth());
    stats.set("workers", solver_.worker_count());
    BatchSolver::CacheStats cache = solver_.cache_stats();
    json::Value cache_value;
    cache_value.set("hits", static_cast<double>(cache.hits));
    cache_value.set("misses", static_cast<double>(cache.misses));
    cache_value.set("evictions", static_cast<double>(cache.evictions));
    stats.set("cache", std::move(cache_value));
    {
      std::scoped_lock lock(mutex_);
      stats.set("connections", connections_.size());
    }
    return stats;
  }
};

SolveServer::SolveServer(SolveServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SolveServer::~SolveServer() = default;

std::uint16_t SolveServer::port() const { return impl_->port_; }

std::size_t SolveServer::connection_count() const {
  std::scoped_lock lock(impl_->mutex_);
  return impl_->connections_.size();
}

BatchSolver& SolveServer::solver() { return impl_->solver_; }

void SolveServer::shutdown() {
  impl_->request_shutdown();
  impl_->wait_done();
}

void SolveServer::wait() { impl_->wait_done(); }

}  // namespace mpss::net
