#include "mpss/ext/discrete_speeds.hpp"

#include <algorithm>

#include "mpss/util/error.hpp"

namespace mpss {

Schedule discretize_speeds(const Schedule& schedule, const std::vector<Q>& levels) {
  check_arg(!levels.empty(), "discretize_speeds: need at least one level");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    check_arg(levels[i].sign() > 0, "discretize_speeds: levels must be positive");
    check_arg(i == 0 || levels[i - 1] < levels[i],
              "discretize_speeds: levels must strictly ascend");
  }

  Schedule out(schedule.machines());
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    for (const Slice& slice : schedule.machine(machine)) {
      // Exact level: keep as is.
      if (std::find(levels.begin(), levels.end(), slice.speed) != levels.end()) {
        out.add(machine, slice);
        continue;
      }
      check_arg(slice.speed < levels.back(),
                "discretize_speeds: slice speed above the highest level");
      if (slice.speed < levels.front()) {
        // Run at the lowest level for work / level time units, then idle.
        Q duration = slice.work() / levels.front();
        out.add(machine,
                Slice{slice.start, slice.start + duration, levels.front(), slice.job});
        continue;
      }
      // Bracketing levels s_lo < s < s_hi; split so total work is preserved:
      // x * s_hi + (d - x) * s_lo = s * d  =>  x = d * (s - s_lo) / (s_hi - s_lo).
      auto hi = std::upper_bound(levels.begin(), levels.end(), slice.speed);
      const Q& s_hi = *hi;
      const Q& s_lo = *(hi - 1);
      Q d = slice.duration();
      Q x = d * (slice.speed - s_lo) / (s_hi - s_lo);
      out.add(machine, Slice{slice.start, slice.start + x, s_hi, slice.job});
      out.add(machine, Slice{slice.start + x, slice.end, s_lo, slice.job});
    }
  }
  return out;
}

std::vector<Q> geometric_levels(const Q& top, const Q& ratio, std::size_t count) {
  check_arg(top.sign() > 0, "geometric_levels: top must be positive");
  check_arg(Q(1) < ratio, "geometric_levels: ratio must exceed 1");
  check_arg(count >= 1, "geometric_levels: need at least one level");
  std::vector<Q> levels(count);
  Q current = top;
  for (std::size_t i = count; i-- > 0;) {
    levels[i] = current;
    current /= ratio;
  }
  return levels;
}

}  // namespace mpss
