#pragma once
// Speed scaling with a sleep state (extension S22; the paper's conclusion poses
// "combined speed scaling and power-down mechanisms in multi-processor
// environments" as future work, citing Irani et al. [9]).
//
// Model: busy power P(s) = s^alpha + static_power (leakage flows whenever the
// processor is awake, even at speed 0); a sleeping processor draws nothing. The
// classic single-processor insight [9]: below the *critical speed*
// s_crit = (static_power / (alpha - 1))^(1/alpha), running slower wastes leakage
// -- it is cheaper to run at s_crit and sleep the slack ("race to idle").
//
// We provide the race-to-idle transformation of any schedule (each slice slower
// than s_crit is compressed, inside its own window, to s_crit) plus awake/asleep
// energy accounting, so the E11 experiment can measure how much the paper's
// leakage-oblivious optimum leaves on the table once static power exists.

#include "mpss/core/schedule.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// Sleep-state energy model: P_awake(s) = s^alpha + static_power, sleep = 0.
struct SleepModel {
  double alpha = 3.0;
  double static_power = 1.0;

  /// argmin_{s>0} P(s)/s = (static_power / (alpha - 1))^(1/alpha): the most
  /// energy-efficient speed per unit of work.
  [[nodiscard]] double critical_speed() const;
};

/// Energy of `schedule` when processors can sleep during idle time: sum over
/// slices of (speed^alpha + static_power) * duration. (Transition costs are
/// modelled as zero, the simplest variant in [9].)
[[nodiscard]] double energy_with_sleep(const Schedule& schedule,
                                       const SleepModel& model);

/// Energy when processors can NOT sleep: busy energy plus static_power leaking on
/// every machine over the whole window [t0, t1).
[[nodiscard]] double energy_always_on(const Schedule& schedule, const SleepModel& model,
                                      const Q& t0, const Q& t1);

/// Race-to-idle transformation: every slice with speed below `floor_speed` is
/// compressed (same start, same work, speed = floor_speed, shorter duration);
/// faster slices are untouched. Feasibility is preserved exactly -- each new slice
/// is a subset of the old one's time span. Pass SleepModel::critical_speed()
/// rounded to a rational for the [9]-optimal floor.
[[nodiscard]] Schedule race_to_idle(const Schedule& schedule, const Q& floor_speed);

/// A rational lower approximation of the model's critical speed with denominator
/// `denominator` (floor to a grid); convenient for feeding race_to_idle.
[[nodiscard]] Q critical_speed_rational(const SleepModel& model,
                                        std::int64_t denominator = 1024);

}  // namespace mpss
