#include "mpss/ext/bounded_speed.hpp"

#include "mpss/core/intervals.hpp"
#include "mpss/flow/dinic.hpp"
#include "mpss/util/error.hpp"

namespace mpss {

bool feasible_with_cap(const Instance& instance, const Q& cap) {
  check_arg(cap.sign() > 0, "feasible_with_cap: cap must be positive");
  IntervalDecomposition intervals(instance.jobs());
  const std::size_t interval_count = intervals.count();

  Q total_time_demand;  // sum of w_k / cap
  FlowNetwork<Q> net;
  std::size_t source = net.add_node();
  std::vector<std::size_t> job_node;
  std::vector<std::size_t> job_index;
  for (std::size_t k = 0; k < instance.size(); ++k) {
    if (instance.job(k).work.sign() > 0) {
      job_node.push_back(net.add_node());
      job_index.push_back(k);
    }
  }
  if (job_index.empty()) return true;
  std::vector<std::size_t> interval_node(interval_count);
  for (std::size_t j = 0; j < interval_count; ++j) interval_node[j] = net.add_node();
  std::size_t sink = net.add_node();

  for (std::size_t pos = 0; pos < job_index.size(); ++pos) {
    const Job& job = instance.job(job_index[pos]);
    Q demand = job.work / cap;  // processing time needed at full cap speed
    total_time_demand += demand;
    net.add_edge(source, job_node[pos], demand);
    for (std::size_t j = 0; j < interval_count; ++j) {
      if (intervals.active(job, j)) {
        net.add_edge(job_node[pos], interval_node[j], intervals.length(j));
      }
    }
  }
  Q machines(static_cast<std::int64_t>(instance.machines()));
  for (std::size_t j = 0; j < interval_count; ++j) {
    net.add_edge(interval_node[j], sink, intervals.length(j) * machines);
  }
  return net.max_flow(source, sink) == total_time_demand;
}

Q minimal_peak_speed(const Instance& instance) {
  // The densest set J_1 is forced to average speed s_1 (Lemmas 3-5); any lower
  // cap leaves it unfinishable, and the optimal schedule witnesses feasibility at
  // exactly s_1.
  auto result = optimal_schedule(instance);
  if (result.phases.empty()) return Q(0);
  return result.phases.front().speed;
}

OptimalResult schedule_with_cap(const Instance& instance, const Q& cap) {
  check_arg(cap.sign() > 0, "schedule_with_cap: cap must be positive");
  OptimalResult result = optimal_schedule(instance);
  if (!result.phases.empty() && cap < result.phases.front().speed) {
    throw std::invalid_argument(
        "schedule_with_cap: instance infeasible under the speed cap (needs " +
        result.phases.front().speed.to_string() + ")");
  }
  return result;
}

}  // namespace mpss
