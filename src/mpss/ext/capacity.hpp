#pragma once
// Capacity planning helpers (S39): the questions a cluster operator asks on top
// of the paper's machinery. How many processors until the required peak speed
// drops below the hardware cap? What does each extra processor buy in energy?
// Both are monotone in m (more machines never hurt), which the tests assert and
// the implementations exploit.

#include <cstddef>
#include <vector>

#include "mpss/core/job.hpp"
#include "mpss/core/power.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// Smallest machine count m (1 <= m <= max_machines) whose minimal feasible peak
/// speed is <= `speed_cap`; returns 0 when even max_machines is not enough
/// (a single job's density can make any m insufficient -- jobs cannot
/// self-parallelize). Galloping + binary search over m; O(log m) optimal-schedule
/// computations.
[[nodiscard]] std::size_t machines_needed(const Instance& instance, const Q& speed_cap,
                                          std::size_t max_machines = 1024);

/// One row of an energy-vs-machines study.
struct CapacityPoint {
  std::size_t machines = 0;
  double energy = 0.0;  // optimal energy with this machine count
  Q peak_speed;         // minimal feasible peak speed
};

/// Optimal energy and peak speed for every machine count in [1, max_machines].
/// Energies are non-increasing in m; the marginal saving of the last machine
/// tells the operator when to stop buying hardware.
[[nodiscard]] std::vector<CapacityPoint> capacity_curve(const Instance& instance,
                                                        const PowerFunction& p,
                                                        std::size_t max_machines);

}  // namespace mpss
