#include "mpss/ext/capacity.hpp"

#include "mpss/core/optimal.hpp"
#include "mpss/ext/bounded_speed.hpp"
#include "mpss/util/error.hpp"

namespace mpss {

std::size_t machines_needed(const Instance& instance, const Q& speed_cap,
                            std::size_t max_machines) {
  check_arg(speed_cap.sign() > 0, "machines_needed: speed cap must be positive");
  check_arg(max_machines >= 1, "machines_needed: max_machines must be >= 1");
  if (instance.total_work().is_zero()) return 1;

  // No machine count can push the peak below the densest single job (no
  // self-parallelism), so bail out early when the cap is below every hope.
  Q densest(0);
  for (const Job& job : instance.jobs()) {
    if (job.work.sign() > 0) densest = max(densest, job.density());
  }
  if (speed_cap < densest) return 0;

  auto peak_ok = [&](std::size_t m) {
    return minimal_peak_speed(instance.with_machines(m)) <= speed_cap;
  };

  // Gallop up to the first sufficient count, then binary search below it.
  std::size_t hi = 1;
  while (hi < max_machines && !peak_ok(hi)) hi *= 2;
  if (hi > max_machines) hi = max_machines;
  if (!peak_ok(hi)) return 0;
  std::size_t lo = hi / 2 + 1;
  if (hi == 1) return 1;
  // Invariant: everything < lo failed or is unexplored-below-failure; hi works.
  while (lo < hi) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (peak_ok(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

std::vector<CapacityPoint> capacity_curve(const Instance& instance,
                                          const PowerFunction& p,
                                          std::size_t max_machines) {
  check_arg(max_machines >= 1, "capacity_curve: max_machines must be >= 1");
  std::vector<CapacityPoint> curve;
  curve.reserve(max_machines);
  for (std::size_t m = 1; m <= max_machines; ++m) {
    auto result = optimal_schedule(instance.with_machines(m));
    CapacityPoint point;
    point.machines = m;
    point.energy = result.schedule.energy(p);
    point.peak_speed = result.phases.empty() ? Q(0) : result.phases.front().speed;
    curve.push_back(std::move(point));
  }
  return curve;
}

}  // namespace mpss
