#pragma once
// Speed-bounded processors (extension S29; the related-work regime of refs
// [3, 7, 10] of the paper, where processors have a maximum speed and feasibility
// is no longer free).
//
// Three primitives:
//   * feasible_with_cap  -- can the instance be finished at all if no processor
//     may exceed `cap`? Decided exactly by one max-flow on the Section-2 network
//     shape (job -> interval edges bounded by |I_j|, interval -> sink by
//     m * |I_j|, source -> job by w_k / cap).
//   * minimal_peak_speed -- the smallest cap that keeps the instance feasible.
//     This equals the first phase speed s_1 of the optimal schedule (the densest
//     set's forced average speed); the test suite verifies that identity against
//     the flow oracle via exact binary search.
//   * schedule_with_cap  -- the energy-optimal schedule among those respecting
//     the cap, when one exists. Because the unconstrained optimum already
//     minimizes the peak speed (s_1 is forced), it IS the answer whenever the
//     instance is feasible; otherwise std::invalid_argument.

#include "mpss/core/job.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// Exact feasibility of `instance` when every processor speed is capped at `cap`
/// (cap > 0). One rational max-flow.
[[nodiscard]] bool feasible_with_cap(const Instance& instance, const Q& cap);

/// The smallest speed cap under which the instance stays feasible (0 for
/// zero-work instances). Equals the top speed of the optimal schedule.
[[nodiscard]] Q minimal_peak_speed(const Instance& instance);

/// Energy-optimal schedule subject to the cap; throws std::invalid_argument when
/// the instance is infeasible under `cap`.
[[nodiscard]] OptimalResult schedule_with_cap(const Instance& instance, const Q& cap);

}  // namespace mpss
