#pragma once
// Discrete speed-level post-processing (extension S18; experiment E10).
//
// Real processors offer a finite set of frequency steps. Following the classic
// two-adjacent-speeds construction (Li & Yao, refs [12, 13] of the paper), every
// slice running at a continuous speed s with s_lo <= s <= s_hi (adjacent available
// levels) is split, inside its own time window, into a piece at s_hi and a piece at
// s_lo completing the same work. Feasibility is preserved verbatim (sub-slices stay
// inside the original slice), and for convex P this is the energy-optimal way to
// emulate s with the two neighbours.

#include <vector>

#include "mpss/core/schedule.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// Rewrites `schedule` to use only speeds from `levels` (positive, ascending --
/// validated). Slices slower than the lowest level run at the lowest level for a
/// proportionally shorter time (the remainder idles). Throws std::invalid_argument
/// if any slice is faster than the highest level.
[[nodiscard]] Schedule discretize_speeds(const Schedule& schedule,
                                         const std::vector<Q>& levels);

/// Builds a geometric level ladder {top, top/ratio, top/ratio^2, ...} with `count`
/// levels, exact in Q. ratio must be > 1 (as a rational, e.g. Q(3,2)).
[[nodiscard]] std::vector<Q> geometric_levels(const Q& top, const Q& ratio,
                                              std::size_t count);

}  // namespace mpss
