#include "mpss/ext/sleep.hpp"

#include <cmath>

#include "mpss/util/error.hpp"

namespace mpss {

double SleepModel::critical_speed() const {
  check_arg(alpha > 1.0, "SleepModel: alpha must be > 1");
  check_arg(static_power >= 0.0, "SleepModel: static power must be >= 0");
  return std::pow(static_power / (alpha - 1.0), 1.0 / alpha);
}

double energy_with_sleep(const Schedule& schedule, const SleepModel& model) {
  double total = 0.0;
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    for (const Slice& slice : schedule.machine(machine)) {
      double speed = slice.speed.to_double();
      total += (std::pow(speed, model.alpha) + model.static_power) *
               slice.duration().to_double();
    }
  }
  return total;
}

double energy_always_on(const Schedule& schedule, const SleepModel& model, const Q& t0,
                        const Q& t1) {
  check_arg(t0 <= t1, "energy_always_on: t0 must be <= t1");
  double busy_dynamic = 0.0;
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    for (const Slice& slice : schedule.machine(machine)) {
      busy_dynamic += std::pow(slice.speed.to_double(), model.alpha) *
                      slice.duration().to_double();
    }
  }
  double window = (t1 - t0).to_double() * static_cast<double>(schedule.machines());
  return busy_dynamic + model.static_power * window;
}

Schedule race_to_idle(const Schedule& schedule, const Q& floor_speed) {
  check_arg(floor_speed.sign() > 0, "race_to_idle: floor speed must be positive");
  Schedule out(schedule.machines());
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    for (const Slice& slice : schedule.machine(machine)) {
      if (floor_speed <= slice.speed) {
        out.add(machine, slice);
        continue;
      }
      Q duration = slice.work() / floor_speed;
      out.add(machine,
              Slice{slice.start, slice.start + duration, floor_speed, slice.job});
    }
  }
  return out;
}

Q critical_speed_rational(const SleepModel& model, std::int64_t denominator) {
  check_arg(denominator >= 1, "critical_speed_rational: denominator must be >= 1");
  double critical = model.critical_speed();
  auto numerator =
      static_cast<std::int64_t>(std::floor(critical * static_cast<double>(denominator)));
  if (numerator < 1) numerator = 1;
  return Q(numerator, denominator);
}

}  // namespace mpss
