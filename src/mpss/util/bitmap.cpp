#include "mpss/util/bitmap.hpp"

#include <bit>

#include "mpss/util/error.hpp"

namespace mpss {

ActiveBitmap::ActiveBitmap(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_words_(words_for(cols)),
      words_(rows * row_words_, 0) {}

void ActiveBitmap::set(std::size_t row, std::size_t col) {
  check_arg(row < rows_ && col < cols_, "ActiveBitmap::set: index out of range");
  words_[row * row_words_ + col / 64] |= std::uint64_t{1} << (col % 64);
}

bool ActiveBitmap::test(std::size_t row, std::size_t col) const {
  check_arg(row < rows_ && col < cols_, "ActiveBitmap::test: index out of range");
  return (words_[row * row_words_ + col / 64] >> (col % 64)) & 1;
}

std::size_t ActiveBitmap::row_popcount(std::size_t row) const {
  check_arg(row < rows_, "ActiveBitmap::row_popcount: row out of range");
  std::size_t count = 0;
  const std::uint64_t* base = words_.data() + row * row_words_;
  for (std::size_t w = 0; w < row_words_; ++w) count += std::popcount(base[w]);
  return count;
}

std::size_t ActiveBitmap::row_and_popcount(
    std::size_t row, std::span<const std::uint64_t> mask) const {
  check_arg(row < rows_, "ActiveBitmap::row_and_popcount: row out of range");
  check_arg(mask.size() == row_words_,
            "ActiveBitmap::row_and_popcount: mask width mismatch");
  std::size_t count = 0;
  const std::uint64_t* base = words_.data() + row * row_words_;
  for (std::size_t w = 0; w < row_words_; ++w) {
    count += std::popcount(base[w] & mask[w]);
  }
  return count;
}

std::span<std::uint64_t> ActiveBitmap::row(std::size_t row) {
  check_arg(row < rows_, "ActiveBitmap::row: row out of range");
  return {words_.data() + row * row_words_, row_words_};
}

std::span<const std::uint64_t> ActiveBitmap::row(std::size_t row) const {
  check_arg(row < rows_, "ActiveBitmap::row: row out of range");
  return {words_.data() + row * row_words_, row_words_};
}

}  // namespace mpss
