#pragma once
// Deterministic pseudo-random generation for workloads and property tests.
//
// We use xoshiro256** rather than std::mt19937 so that streams are cheap to seed,
// cheap to split (jump()), and bit-for-bit reproducible across platforms -- the
// experiment harness records only (generator name, seed) per run.

#include <cstdint>
#include <vector>

namespace mpss {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference implementation
/// re-expressed in C++).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits from a 64-bit seed via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Advances the stream by 2^128 steps; used to carve independent substreams
  /// for parallel sweeps.
  void jump();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t state_[4];
};

}  // namespace mpss
