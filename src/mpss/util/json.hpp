#pragma once
// Minimal JSON document model + parser + serializer (substrate for S45).
//
// One JSON implementation now serves every structured-text consumer: the
// Instance codec (core/instance_json.hpp), the wire protocol (net/protocol.hpp)
// and the tools that read either. The model is deliberately small: a Value is
// null, bool, double, string, array, or object. Objects preserve insertion
// order, so serializing a freshly built document is deterministic -- the
// property the canonical Instance form and the protocol golden tests rely on.
//
// Numbers are doubles. Everything that must round-trip exactly -- rationals,
// 64-bit ids beyond 2^53 -- travels as a string; doubles themselves are
// serialized with max_digits10 precision, so parse(serialize(x)) == x bit for
// bit for every finite double.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace mpss::json {

class Value;

using Array = std::vector<Value>;
/// Insertion-ordered members; lookup is linear (documents here are small).
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}        // NOLINT: intentional
  Value(bool value) : data_(value) {}              // NOLINT: intentional
  Value(double value) : data_(value) {}            // NOLINT: intentional
  Value(int value)                                 // NOLINT: intentional
      : data_(static_cast<double>(value)) {}
  Value(std::size_t value)                         // NOLINT: intentional
      : data_(static_cast<double>(value)) {}
  Value(const char* value) : data_(std::string(value)) {}  // NOLINT: intentional
  Value(std::string value) : data_(std::move(value)) {}    // NOLINT: intentional
  Value(std::string_view value) : data_(std::string(value)) {}  // NOLINT
  Value(Array value) : data_(std::move(value)) {}  // NOLINT: intentional
  Value(Object value) : data_(std::move(value)) {} // NOLINT: intentional

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(data_); }

  /// Checked accessors: throw std::invalid_argument naming the expected type
  /// when the value holds something else (the codec's error style).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Member lookup on an object: the value, or nullptr when absent (also when
  /// this value is not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Member lookup that throws std::invalid_argument("missing field 'key'")
  /// when absent -- the decoder's required-field form.
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// Appends a member (builders only; no duplicate-key check).
  void set(std::string key, Value value);

  friend bool operator==(const Value&, const Value&) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses one JSON document (trailing whitespace allowed, anything else after
/// the document throws). Throws std::invalid_argument with an offset-carrying
/// message on malformed input. Depth is capped (kMaxDepth) so adversarial
/// nesting cannot overflow the stack -- this parser fronts a network protocol.
[[nodiscard]] Value parse(std::string_view text);

inline constexpr std::size_t kMaxDepth = 96;

/// Compact canonical serialization: no whitespace, members in insertion order,
/// doubles at max_digits10 (integers without exponent), strings escaped per
/// RFC 8259 (control characters as \uXXXX).
[[nodiscard]] std::string serialize(const Value& value);
void serialize_to(const Value& value, std::string& out);

}  // namespace mpss::json
