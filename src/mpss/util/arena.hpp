#pragma once
// Monotonic, reusable scratch arena (substrate S46, see DESIGN.md).
//
// The flow kernel and the offline engines burn their time in short-lived,
// fixed-shape scratch: BFS level/iterator/queue arrays, min-cut bitmaps,
// per-round interval tables. Allocating those from the general heap costs a
// malloc per array per solve and scatters them across the address space; the
// arena hands out bump-pointer slices from a few large blocks instead, and
// reset() rewinds to empty while KEEPING the blocks, so a warm-started round
// or a repeat service request touches the allocator not at all.
//
// Lifetime rules:
//   * allocate()/alloc_array() slices live until the next reset() -- never
//     free them individually.
//   * Only trivially-destructible element types may be placed in the arena
//     (alloc_array enforces this statically); non-trivial scratch such as
//     Rational temporaries is handled by eliminating the temporaries (the
//     fused in-place ops), not by arena-placing them.
//   * reset() is the owner's call (ScopedArena's destructor); borrowers like
//     FlowNetwork::set_scratch_arena never reset, they only carve.
//
// ScopedArena pools arenas per thread: acquisition pops a warmed arena from a
// thread_local free list, destruction rewinds and returns it. BatchSolver
// workers therefore reuse one arena per thread across requests for free, with
// no cross-thread sharing (TSan-clean by construction).
//
// Accounting (surfaced as mem.* counters through SolveStats -> Registry):
//   capacity_bytes  -- heap memory the arena currently owns
//   used_bytes      -- payload handed out since the last reset
//   reuses          -- resets that rewound retained capacity (warm cycles)
//   fallback_allocs -- heap blocks ever grabbed because capacity ran out;
//                      a steady-state solve must not move this.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "mpss/util/error.hpp"

namespace mpss {

class Arena {
 public:
  struct Stats {
    std::size_t capacity_bytes = 0;
    std::size_t used_bytes = 0;
    std::uint64_t reuses = 0;
    std::uint64_t fallback_allocs = 0;
  };

  Arena() = default;
  /// Pre-grows one block of at least `initial_capacity` bytes.
  explicit Arena(std::size_t initial_capacity);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `alignment` (a power of two, at most
  /// alignof(std::max_align_t)). Grows by appending a block -- counted as a
  /// fallback -- when the retained capacity is exhausted. Returns nullptr for
  /// a zero-byte request.
  void* allocate(std::size_t bytes, std::size_t alignment);

  /// Typed slice of `count` elements, uninitialized. T must be trivially
  /// destructible AND trivially copyable: the arena never runs destructors,
  /// and reset() abandons contents wholesale.
  template <typename T>
  [[nodiscard]] std::span<T> alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_copyable_v<T>,
                  "Arena holds trivially-destructible POD scratch only");
    T* data = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    return {data, count};
  }

  /// Typed slice with every element set to `fill`.
  template <typename T>
  [[nodiscard]] std::span<T> alloc_array(std::size_t count, const T& fill) {
    std::span<T> out = alloc_array<T>(count);
    for (T& value : out) value = fill;
    return out;
  }

  /// Rewinds to empty, keeping capacity. Multiple blocks are coalesced into
  /// one so the following cycle bump-allocates without block hops.
  void reset();

  /// Frees every block (capacity_bytes drops to 0); stats counters persist.
  void release();

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Appends a block of at least `min_bytes` (doubling policy), making it
  /// current. Counted in fallback_allocs.
  void grow(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // block being carved
  std::size_t offset_ = 0;   // within blocks_[current_]
  Stats stats_;
};

/// RAII handle on a pooled per-thread arena: construction pops a warmed arena
/// from this thread's free list (or creates a cold one), destruction rewinds
/// it and returns it to the list. One solve = one ScopedArena; nesting is
/// fine (inner scopes get their own arena).
class ScopedArena {
 public:
  ScopedArena();
  ~ScopedArena();

  ScopedArena(const ScopedArena&) = delete;
  ScopedArena& operator=(const ScopedArena&) = delete;

  [[nodiscard]] Arena& operator*() const { return *arena_; }
  [[nodiscard]] Arena* operator->() const { return arena_.get(); }
  [[nodiscard]] Arena* get() const { return arena_.get(); }

 private:
  std::unique_ptr<Arena> arena_;
};

}  // namespace mpss
