#pragma once
// Cooperative cancellation + soft deadlines for long-running solves (service
// layer S44, see DESIGN.md).
//
// A CancelToken is shared between the party that wants a solve stopped (a
// BatchSolver deadline sweep, a caller abandoning a request) and the engine
// doing the work. The offline engines poll the token at phase and round
// boundaries -- the natural preemption points of the paper's algorithm, where
// no flow network is in a half-edited state -- so cancellation latency is one
// max-flow round, not one full solve. Cancellation is *soft*: an engine that
// observes the token throws CancelledError, which the solve() facade converts
// into SolveStatus::kCancelled / kDeadlineExceeded; nothing is torn down
// mid-operation and the process stays healthy.

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace mpss {

/// Shared cancellation state. request_cancel() may be called from any thread
/// at any time; set_deadline() must happen before the token is handed to an
/// engine (it is plain data, synchronized only by the hand-off).
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// Asks every engine polling this token to stop at its next checkpoint.
  void request_cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Soft deadline: checkpoints after this instant abandon the solve with
  /// SolveStatus::kDeadlineExceeded. Clock::time_point::max() means none.
  void set_deadline(Clock::time_point deadline) noexcept { deadline_ = deadline; }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline_ != Clock::time_point::max();
  }
  [[nodiscard]] Clock::time_point deadline() const noexcept { return deadline_; }
  [[nodiscard]] bool deadline_exceeded() const noexcept {
    return has_deadline() && Clock::now() >= deadline_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_ = Clock::time_point::max();
};

/// Thrown by engine checkpoints when their CancelToken fires. Carries whether
/// the trigger was the soft deadline (-> kDeadlineExceeded) or an explicit
/// request_cancel() (-> kCancelled). Direct engine callers see this exception;
/// solve() callers see the status instead.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(bool deadline_exceeded)
      : std::runtime_error(deadline_exceeded
                               ? "solve abandoned: soft deadline exceeded"
                               : "solve abandoned: cancellation requested"),
        deadline_exceeded_(deadline_exceeded) {}

  [[nodiscard]] bool deadline_exceeded() const noexcept { return deadline_exceeded_; }

 private:
  bool deadline_exceeded_;
};

/// Engine checkpoint: throws CancelledError when `token` fires; a null token
/// never fires (one branch, the no-cancellation fast path). The explicit
/// cancel flag is checked before the deadline so a request that is both
/// cancelled and late reports the caller's action, not the clock's.
inline void poll_cancellation(const CancelToken* token) {
  if (token == nullptr) return;
  if (token->cancel_requested()) throw CancelledError(false);
  if (token->deadline_exceeded()) throw CancelledError(true);
}

}  // namespace mpss
