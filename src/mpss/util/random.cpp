#include "mpss/util/random.hpp"

#include <numeric>

namespace mpss {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
                                            0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    std::uint64_t sample = (*this)();
    if (sample >= threshold) return sample % bound;
  }
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  return lo + static_cast<std::int64_t>(below(span));
}

double Xoshiro256::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Xoshiro256::bernoulli(double p) { return uniform01() < p; }

std::vector<std::size_t> Xoshiro256::permutation(std::size_t n) {
  std::vector<std::size_t> out(n);
  std::iota(out.begin(), out.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = below(i);
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

}  // namespace mpss
