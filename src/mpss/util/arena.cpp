#include "mpss/util/arena.hpp"

#include <algorithm>
#include <utility>

namespace mpss {

namespace {

constexpr std::size_t kMinBlockBytes = 4096;

/// Arenas parked between ScopedArena scopes, one free list per thread. The
/// list is bounded so a burst of nested scopes cannot pin memory forever.
constexpr std::size_t kMaxPooledPerThread = 8;
thread_local std::vector<std::unique_ptr<Arena>> t_arena_pool;

}  // namespace

Arena::Arena(std::size_t initial_capacity) {
  if (initial_capacity > 0) grow(initial_capacity);
}

void* Arena::allocate(std::size_t bytes, std::size_t alignment) {
  check_arg(alignment != 0 && (alignment & (alignment - 1)) == 0 &&
                alignment <= alignof(std::max_align_t),
            "Arena::allocate: unsupported alignment");
  if (bytes == 0) return nullptr;
  for (;;) {
    if (current_ < blocks_.size()) {
      // Block bases are new[]-aligned (>= max_align_t), so aligning the
      // offset aligns the pointer.
      std::size_t aligned = (offset_ + alignment - 1) & ~(alignment - 1);
      if (aligned + bytes <= blocks_[current_].size) {
        void* out = blocks_[current_].data.get() + aligned;
        offset_ = aligned + bytes;
        stats_.used_bytes += bytes;
        return out;
      }
      if (current_ + 1 < blocks_.size()) {
        // Hop to the next retained block (its head space may fit).
        ++current_;
        offset_ = 0;
        continue;
      }
    }
    grow(bytes);
  }
}

void Arena::grow(std::size_t min_bytes) {
  std::size_t size =
      std::max(min_bytes, std::max(kMinBlockBytes, stats_.capacity_bytes));
  blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
  stats_.capacity_bytes += size;
  ++stats_.fallback_allocs;
  current_ = blocks_.size() - 1;
  offset_ = 0;
}

void Arena::reset() {
  if (blocks_.size() > 1) {
    // Fragmented first cycle: coalesce into one block of the total capacity
    // so steady-state cycles never hop blocks. Not a fallback -- this runs
    // between solves, not on the allocation hot path.
    std::size_t total = stats_.capacity_bytes;
    blocks_.clear();
    blocks_.push_back(Block{std::make_unique<std::byte[]>(total), total});
  }
  if (!blocks_.empty()) ++stats_.reuses;
  current_ = 0;
  offset_ = 0;
  stats_.used_bytes = 0;
}

void Arena::release() {
  blocks_.clear();
  current_ = 0;
  offset_ = 0;
  stats_.capacity_bytes = 0;
  stats_.used_bytes = 0;
}

ScopedArena::ScopedArena() {
  if (!t_arena_pool.empty()) {
    arena_ = std::move(t_arena_pool.back());
    t_arena_pool.pop_back();
  } else {
    arena_ = std::make_unique<Arena>();
  }
}

ScopedArena::~ScopedArena() {
  arena_->reset();
  if (t_arena_pool.size() < kMaxPooledPerThread) {
    t_arena_pool.push_back(std::move(arena_));
  }
}

}  // namespace mpss
