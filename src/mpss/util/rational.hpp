#pragma once
// Exact rational numbers over BigInt (substrate S2, see DESIGN.md).
//
// All scheduling quantities -- times, interval lengths, work volumes, speeds, flow
// values -- are represented as mpss::Q so that the offline algorithm's control flow
// (e.g. "max-flow value == W/s") uses the exact tests from the paper instead of
// floating-point tolerances.
//
// Normalization (the hottest call in the exact engine) rides BigInt's small-value
// representation: when numerator and denominator both fit a machine word it runs a
// binary GCD on int64 with zero allocations, counted in
// numeric_counters().rational_norm_small.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "mpss/util/bigint.hpp"

namespace mpss {

/// Exact rational number. Invariant: denominator > 0 and gcd(num, den) == 1;
/// zero is canonically 0/1.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}

  /// From integer.
  Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT: intentional
  Rational(int value) : num_(value), den_(1) {}           // NOLINT: intentional
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT: intentional

  /// num/den; throws std::domain_error when den == 0.
  Rational(BigInt num, BigInt den);
  Rational(std::int64_t num, std::int64_t den) : Rational(BigInt(num), BigInt(den)) {}

  /// Parses "a", "-a", or "a/b" decimal forms.
  static Rational from_string(std::string_view text);

  [[nodiscard]] const BigInt& num() const { return num_; }
  [[nodiscard]] const BigInt& den() const { return den_; }

  [[nodiscard]] bool is_zero() const { return num_.is_zero(); }
  [[nodiscard]] bool is_integer() const { return den_.is_one(); }
  [[nodiscard]] int sign() const { return num_.sign(); }

  [[nodiscard]] Rational abs() const;
  Rational operator-() const;

  /// Reciprocal; throws std::domain_error when zero.
  [[nodiscard]] Rational inverse() const;

  /// Fused in-place sum/difference (the flow kernel's augment/retract
  /// primitives). When all four parts fit machine words the cross products,
  /// the combine, and the gcd reduction run on int64 with overflow-checked
  /// builtins and ZERO BigInt temporaries; otherwise this is the classic
  /// cross-multiply-and-normalize. Result is canonical either way, so values
  /// are bit-identical to the operator chain they replace. operator+=/-=
  /// delegate here.
  Rational& add_assign(const Rational& rhs);
  Rational& sub_assign(const Rational& rhs);

  /// `*this = min(*this, other)` without constructing a temporary (uses
  /// compare(), so no cross-product BigInts on the small path).
  void min_in_place(const Rational& other) {
    if (other.compare(*this) < 0) *this = other;
  }

  /// Three-way compare (-1/0/+1) without materializing cross products: both
  /// denominators are positive by invariant, so on the small path the two
  /// int64 cross products are compared in 128-bit arithmetic with no BigInt
  /// construction and no normalization. operator<=> delegates here.
  [[nodiscard]] int compare(const Rational& rhs) const;

  Rational& operator+=(const Rational& rhs) { return add_assign(rhs); }
  Rational& operator-=(const Rational& rhs) { return sub_assign(rhs); }
  Rational& operator*=(const Rational& rhs);
  /// Throws std::domain_error on division by zero.
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }

  friend bool operator==(const Rational& lhs, const Rational& rhs) {
    return lhs.num_ == rhs.num_ && lhs.den_ == rhs.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& lhs, const Rational& rhs) {
    int order = lhs.compare(rhs);
    if (order < 0) return std::strong_ordering::less;
    if (order > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  /// Largest integer <= value.
  [[nodiscard]] BigInt floor() const;
  /// Smallest integer >= value.
  [[nodiscard]] BigInt ceil() const;

  [[nodiscard]] double to_double() const;

  /// "num" when integral, otherwise "num/den".
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t hash() const {
    return num_.hash() * 0x100000001b3ull ^ den_.hash();
  }

 private:
  void normalize();
  Rational& fused_add_sub(const Rational& rhs, bool subtract);

  BigInt num_;
  BigInt den_;
};

/// Canonical scalar type of the scheduling core.
using Q = Rational;

[[nodiscard]] inline const Q& min(const Q& a, const Q& b) { return b < a ? b : a; }
[[nodiscard]] inline const Q& max(const Q& a, const Q& b) { return a < b ? b : a; }

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace mpss

template <>
struct std::hash<mpss::Rational> {
  std::size_t operator()(const mpss::Rational& v) const noexcept { return v.hash(); }
};
