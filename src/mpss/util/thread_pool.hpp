#pragma once
// Fixed-size thread pool + parallel_for helper (substrate S20).
//
// The experiment harnesses sweep (alpha, m, seed) grids where each cell runs an
// exact-arithmetic scheduler; cells are independent, so a simple work-stealing-free
// pool with an atomic index is all that's needed. Exceptions thrown by tasks are
// captured and rethrown on the calling thread.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mpss {

/// Standard condition-variable task queue pool. Threads are joined in the
/// destructor; submitting after shutdown throws.
class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not block waiting for other pool tasks.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If tasks threw, rethrows:
  /// the sole captured exception verbatim when exactly one task failed, else a
  /// std::runtime_error carrying the first failure's message plus the count of
  /// further failures (so a multi-failure batch is never mistaken for a
  /// single bad task). Resets the error state either way.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::size_t error_count_ = 0;
};

/// Runs body(i) for i in [0, count) across `threads` workers (0 = hardware
/// concurrency). Blocks until done; rethrows the first task exception.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace mpss
