#include "mpss/util/thread_pool.hpp"

#include <chrono>
#include <stdexcept>
#include <string>

#include "mpss/obs/registry.hpp"
#include "mpss/obs/span.hpp"

namespace mpss {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    if (shutdown_) throw std::logic_error("ThreadPool::submit after shutdown");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  obs::Registry::global().add("pool.tasks");
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (!first_error_) return;
  std::exception_ptr error = first_error_;
  const std::size_t failures = error_count_;
  first_error_ = nullptr;
  error_count_ = 0;
  lock.unlock();
  if (failures <= 1) std::rethrow_exception(error);
  // Several tasks failed; surface the first message and the count of the rest
  // instead of silently pretending only one thing went wrong.
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string(e.what()) + " (+" +
                             std::to_string(failures - 1) +
                             " more pool task failures)");
  } catch (...) {
    throw std::runtime_error("ThreadPool: " + std::to_string(failures) +
                             " task failures (first was not a std::exception)");
  }
}

void ThreadPool::worker_loop() {
  // One registry lookup per worker thread, not per task: Histogram::record is
  // lock-free, the name lookup is not.
  obs::Histogram& task_us = obs::Registry::global().histogram("pool.task_us");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      obs::SpanScope task_span(nullptr, "pool.task");
      const auto start = std::chrono::steady_clock::now();
      task();
      task_us.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      ++error_count_;
    }
    {
      std::unique_lock lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads = std::min(threads, count);
  // One registry merge per call, not per item: concurrent bodies must not
  // serialize on the registry mutex.
  {
    obs::Counters local;
    local.add("pool.parallel_for.calls");
    local.add("pool.parallel_for.items", count);
    obs::Registry::global().merge(local);
  }
  if (threads == 1) {
    obs::SpanScope worker_span(nullptr, "pool.parallel_for.worker");
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      obs::SpanScope worker_span(nullptr, "pool.parallel_for.worker");
      for (;;) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mpss
