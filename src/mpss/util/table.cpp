#include "mpss/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "mpss/util/csv.hpp"

namespace mpss {

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void Table::print_csv(std::ostream& os) const {
  CsvWriter writer(os);
  writer.write_row(headers_);
  for (const auto& row : rows_) {
    std::vector<std::string> padded = row;
    padded.resize(headers_.size());
    writer.write_row(padded);
  }
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      os << text << std::string(widths[c] - text.size(), ' ');
    }
    os << " |\n";
  };

  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mpss
