#pragma once
// Tiny command-line flag parser shared by examples and experiment binaries.
// Supports --name=value, --name value, and boolean --name forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mpss {

/// Parsed command line. Unknown flags throw at parse time so typos in experiment
/// invocations fail loudly instead of silently using defaults.
class CliArgs {
 public:
  /// `spec` lists the accepted flag names (without leading dashes).
  CliArgs(int argc, const char* const* argv, std::vector<std::string> spec);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name, std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mpss
