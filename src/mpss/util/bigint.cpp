#include "mpss/util/bigint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace mpss {

BigInt::BigInt(std::int64_t value) {
  if (value == 0) return;
  negative_ = value < 0;
  // Avoid UB negating INT64_MIN by working in uint64.
  std::uint64_t magnitude =
      negative_ ? ~static_cast<std::uint64_t>(value) + 1 : static_cast<std::uint64_t>(value);
  while (magnitude != 0) {
    limbs_.push_back(static_cast<Limb>(magnitude & 0xffffffffu));
    magnitude >>= kLimbBits;
  }
}

BigInt BigInt::from_string(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt::from_string: empty string");
  bool negative = false;
  std::size_t pos = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) throw std::invalid_argument("BigInt::from_string: lone sign");
  BigInt result;
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9')
      throw std::invalid_argument("BigInt::from_string: non-digit character");
    result *= BigInt(10);
    result += BigInt(c - '0');
  }
  if (negative && !result.is_zero()) result.negative_ = true;
  return result;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::compare_magnitude(const std::vector<Limb>& a, const std::vector<Limb>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<BigInt::Limb> BigInt::add_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  const std::vector<Limb>& longer = a.size() >= b.size() ? a : b;
  const std::vector<Limb>& shorter = a.size() >= b.size() ? b : a;
  std::vector<Limb> out;
  out.reserve(longer.size() + 1);
  DoubleLimb carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    DoubleLimb sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    out.push_back(static_cast<Limb>(sum & 0xffffffffu));
    carry = sum >> kLimbBits;
  }
  if (carry != 0) out.push_back(static_cast<Limb>(carry));
  return out;
}

std::vector<BigInt::Limb> BigInt::sub_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  std::vector<Limb> out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += (std::int64_t{1} << kLimbBits);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<Limb>(diff));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<BigInt::Limb> BigInt::mul_magnitude(const std::vector<Limb>& a,
                                                const std::vector<Limb>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<Limb> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    DoubleLimb carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      DoubleLimb cur = static_cast<DoubleLimb>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> kLimbBits;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      DoubleLimb cur = carry + out[k];
      out[k] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> kLimbBits;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::pair<std::vector<BigInt::Limb>, std::vector<BigInt::Limb>> BigInt::divmod_magnitude(
    const std::vector<Limb>& num, const std::vector<Limb>& den) {
  if (den.empty()) throw std::domain_error("BigInt: division by zero");
  if (compare_magnitude(num, den) < 0) return {{}, num};

  // Fast path: single-limb divisor.
  if (den.size() == 1) {
    std::vector<Limb> quot(num.size(), 0);
    DoubleLimb rem = 0;
    for (std::size_t i = num.size(); i-- > 0;) {
      DoubleLimb cur = (rem << kLimbBits) | num[i];
      quot[i] = static_cast<Limb>(cur / den[0]);
      rem = cur % den[0];
    }
    while (!quot.empty() && quot.back() == 0) quot.pop_back();
    std::vector<Limb> remainder;
    if (rem != 0) remainder.push_back(static_cast<Limb>(rem));
    return {quot, remainder};
  }

  // Knuth algorithm D with normalization so the top divisor limb has its high bit set.
  int shift = 0;
  for (Limb top = den.back(); (top & 0x80000000u) == 0; top <<= 1) ++shift;

  auto shift_left = [](const std::vector<Limb>& v, int bits) {
    if (bits == 0) return v;
    std::vector<Limb> out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= static_cast<Limb>(static_cast<DoubleLimb>(v[i]) << bits);
      out[i + 1] = static_cast<Limb>(static_cast<DoubleLimb>(v[i]) >> (kLimbBits - bits));
    }
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  };
  auto shift_right = [](std::vector<Limb> v, int bits) {
    if (bits == 0) return v;
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] >>= bits;
      if (i + 1 < v.size())
        v[i] |= static_cast<Limb>(static_cast<DoubleLimb>(v[i + 1]) << (kLimbBits - bits));
    }
    while (!v.empty() && v.back() == 0) v.pop_back();
    return v;
  };

  std::vector<Limb> u = shift_left(num, shift);
  std::vector<Limb> v = shift_left(den, shift);
  const std::size_t n = v.size();
  const std::size_t m = u.size() >= n ? u.size() - n : 0;
  u.resize(u.size() + 1, 0);  // extra high limb for the algorithm

  std::vector<Limb> quot(m + 1, 0);
  const DoubleLimb base = DoubleLimb{1} << kLimbBits;
  for (std::size_t j = m + 1; j-- > 0;) {
    DoubleLimb numerator = (static_cast<DoubleLimb>(u[j + n]) << kLimbBits) | u[j + n - 1];
    DoubleLimb qhat = numerator / v[n - 1];
    DoubleLimb rhat = numerator % v[n - 1];
    while (qhat >= base ||
           qhat * v[n - 2] > ((rhat << kLimbBits) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= base) break;
    }
    // Multiply-subtract qhat*v from u[j .. j+n].
    std::int64_t borrow = 0;
    DoubleLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      DoubleLimb product = qhat * v[i] + carry;
      carry = product >> kLimbBits;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) - borrow -
                          static_cast<std::int64_t>(product & 0xffffffffu);
      if (diff < 0) {
        diff += static_cast<std::int64_t>(base);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<Limb>(diff);
    }
    std::int64_t top = static_cast<std::int64_t>(u[j + n]) - borrow -
                       static_cast<std::int64_t>(carry);
    if (top < 0) {
      // qhat was one too large: add v back once.
      top += static_cast<std::int64_t>(base);
      --qhat;
      DoubleLimb add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        DoubleLimb sum = static_cast<DoubleLimb>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<Limb>(sum & 0xffffffffu);
        add_carry = sum >> kLimbBits;
      }
      top += static_cast<std::int64_t>(add_carry);
      top &= static_cast<std::int64_t>(base - 1);
    }
    u[j + n] = static_cast<Limb>(top);
    quot[j] = static_cast<Limb>(qhat);
  }

  while (!quot.empty() && quot.back() == 0) quot.pop_back();
  u.resize(n);
  while (!u.empty() && u.back() == 0) u.pop_back();
  return {quot, shift_right(std::move(u), shift)};
}

BigInt BigInt::abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt BigInt::negated() const {
  BigInt out = *this;
  if (!out.limbs_.empty()) out.negative_ = !out.negative_;
  return out;
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (negative_ == rhs.negative_) {
    limbs_ = add_magnitude(limbs_, rhs.limbs_);
  } else {
    int cmp = compare_magnitude(limbs_, rhs.limbs_);
    if (cmp == 0) {
      limbs_.clear();
      negative_ = false;
    } else if (cmp > 0) {
      limbs_ = sub_magnitude(limbs_, rhs.limbs_);
    } else {
      limbs_ = sub_magnitude(rhs.limbs_, limbs_);
      negative_ = rhs.negative_;
    }
  }
  trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) { return *this += rhs.negated(); }

BigInt& BigInt::operator*=(const BigInt& rhs) {
  negative_ = negative_ != rhs.negative_;
  limbs_ = mul_magnitude(limbs_, rhs.limbs_);
  trim();
  return *this;
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  *this = divmod(*this, rhs).first;
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  *this = divmod(*this, rhs).second;
  return *this;
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& num, const BigInt& den) {
  auto [q_mag, r_mag] = divmod_magnitude(num.limbs_, den.limbs_);
  BigInt quotient;
  quotient.limbs_ = std::move(q_mag);
  quotient.negative_ = num.negative_ != den.negative_;
  quotient.trim();
  BigInt remainder;
  remainder.limbs_ = std::move(r_mag);
  remainder.negative_ = num.negative_;
  remainder.trim();
  return {std::move(quotient), std::move(remainder)};
}

bool operator==(const BigInt& lhs, const BigInt& rhs) {
  return lhs.negative_ == rhs.negative_ && lhs.limbs_ == rhs.limbs_;
}

std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.negative_ != rhs.negative_)
    return lhs.negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  int cmp = BigInt::compare_magnitude(lhs.limbs_, rhs.limbs_);
  if (lhs.negative_) cmp = -cmp;
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Repeatedly divide by 10^9 to peel decimal chunks.
  std::vector<Limb> mag = limbs_;
  std::string digits;
  constexpr Limb kChunk = 1000000000u;
  while (!mag.empty()) {
    DoubleLimb rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      DoubleLimb cur = (rem << kLimbBits) | mag[i];
      mag[i] = static_cast<Limb>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int k = 0; k < 9; ++k) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

double BigInt::to_double() const {
  double out = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

bool BigInt::fits_int64() const {
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  std::uint64_t mag = (static_cast<std::uint64_t>(limbs_[1]) << kLimbBits) | limbs_[0];
  return negative_ ? mag <= (std::uint64_t{1} << 63)
                   : mag < (std::uint64_t{1} << 63);
}

std::int64_t BigInt::to_int64() const {
  if (!fits_int64()) throw std::overflow_error("BigInt::to_int64: out of range");
  std::uint64_t mag = 0;
  if (limbs_.size() >= 1) mag |= limbs_[0];
  if (limbs_.size() >= 2) mag |= static_cast<std::uint64_t>(limbs_[1]) << kLimbBits;
  return negative_ ? -static_cast<std::int64_t>(mag - 1) - 1
                   : static_cast<std::int64_t>(mag);
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * kLimbBits;
  Limb top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::size_t BigInt::hash() const {
  std::size_t h = negative_ ? 0x9e3779b97f4a7c15ull : 0x2545f4914f6cdd1dull;
  for (Limb limb : limbs_) h = h * 1099511628211ull ^ limb;
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.to_string();
}

}  // namespace mpss
