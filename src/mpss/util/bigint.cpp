#include "mpss/util/bigint.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "mpss/util/numeric_counters.hpp"

namespace mpss {

namespace {

constexpr std::uint64_t kInt64MinMagnitude = std::uint64_t{1} << 63;

/// Magnitude of an int64 without UB on INT64_MIN.
std::uint64_t magnitude_of(std::int64_t value) {
  return value < 0 ? std::uint64_t{0} - static_cast<std::uint64_t>(value)
                   : static_cast<std::uint64_t>(value);
}

/// -1 / 0 / +1 comparing a limb magnitude against a raw 64-bit magnitude.
int compare_limbs_vs_u64(const std::vector<std::uint32_t>& limbs,
                         std::uint64_t magnitude) {
  if (limbs.size() > 2) return 1;
  std::uint64_t value = 0;
  if (limbs.size() >= 1) value |= limbs[0];
  if (limbs.size() == 2) value |= static_cast<std::uint64_t>(limbs[1]) << 32;
  return (value > magnitude) - (value < magnitude);
}

}  // namespace

bool BigInt::test_force_big_ = false;

BigInt::BigInt(std::int64_t value) : small_(value) {
  if (test_force_big_) promote();
}

BigInt::BigInt(const BigInt& other) : big_(other.big_), negative_(other.negative_) {
  if (big_) {
    new (&limbs_) LimbVec(other.limbs_);
  } else {
    small_ = other.small_;
  }
}

BigInt::BigInt(BigInt&& other) noexcept
    : big_(other.big_), negative_(other.negative_) {
  if (big_) {
    new (&limbs_) LimbVec(std::move(other.limbs_));
    other.negative_ = false;  // moved-from becomes canonical zero
  } else {
    small_ = other.small_;
  }
}

BigInt& BigInt::operator=(const BigInt& other) {
  if (this == &other) return *this;
  if (big_ && other.big_) {
    limbs_ = other.limbs_;  // reuse capacity
  } else if (other.big_) {
    new (&limbs_) LimbVec(other.limbs_);
    big_ = true;
  } else {
    if (big_) {
      limbs_.~LimbVec();
      big_ = false;
    }
    small_ = other.small_;
  }
  negative_ = other.negative_;
  return *this;
}

BigInt& BigInt::operator=(BigInt&& other) noexcept {
  if (this == &other) return *this;
  if (big_ && other.big_) {
    limbs_ = std::move(other.limbs_);
  } else if (other.big_) {
    new (&limbs_) LimbVec(std::move(other.limbs_));
    big_ = true;
  } else {
    if (big_) {
      limbs_.~LimbVec();
      big_ = false;
    }
    small_ = other.small_;
  }
  negative_ = other.negative_;
  if (other.big_) other.negative_ = false;
  return *this;
}

BigInt::~BigInt() {
  if (big_) limbs_.~LimbVec();
}

void BigInt::promote() {
  if (big_) return;
  std::uint64_t magnitude = magnitude_of(small_);
  bool negative = small_ < 0;
  new (&limbs_) LimbVec();
  big_ = true;
  negative_ = negative;
  while (magnitude != 0) {
    limbs_.push_back(static_cast<Limb>(magnitude & 0xffffffffu));
    magnitude >>= kLimbBits;
  }
}

void BigInt::demote_if_fits() {
  if (!big_ || test_force_big_) return;
  if (limbs_.size() > 2) return;
  std::uint64_t magnitude = 0;
  if (limbs_.size() >= 1) magnitude |= limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<std::uint64_t>(limbs_[1]) << kLimbBits;
  if (negative_ ? magnitude > kInt64MinMagnitude : magnitude >= kInt64MinMagnitude)
    return;
  std::int64_t value =
      negative_ ? -static_cast<std::int64_t>(magnitude - 1) - 1
                : static_cast<std::int64_t>(magnitude);
  limbs_.~LimbVec();
  big_ = false;
  negative_ = false;
  small_ = value;
}

void BigInt::adopt_limbs(LimbVec limbs, bool negative) {
  while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
  if (big_) {
    limbs_ = std::move(limbs);
  } else {
    new (&limbs_) LimbVec(std::move(limbs));
    big_ = true;
  }
  negative_ = negative && !limbs_.empty();
  demote_if_fits();
}

BigInt BigInt::from_u64(std::uint64_t magnitude, bool negative) {
  BigInt out;
  if (!test_force_big_ &&
      (negative ? magnitude <= kInt64MinMagnitude : magnitude < kInt64MinMagnitude)) {
    out.small_ = negative ? -static_cast<std::int64_t>(magnitude - 1) - 1
                          : static_cast<std::int64_t>(magnitude);
    if (magnitude == 0) out.small_ = 0;
    return out;
  }
  LimbVec limbs;
  while (magnitude != 0) {
    limbs.push_back(static_cast<Limb>(magnitude & 0xffffffffu));
    magnitude >>= kLimbBits;
  }
  out.adopt_limbs(std::move(limbs), negative);
  return out;
}

void BigInt::force_big() { promote(); }

namespace {
/// Big-representation view of `value`: `value` itself when already big,
/// otherwise a promoted copy parked in `storage`.
const BigInt& ensure_big(const BigInt& value, BigInt& storage) {
  if (!value.is_small()) return value;
  storage = value;
  storage.force_big();
  return storage;
}
}  // namespace

BigInt BigInt::from_string(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("BigInt::from_string: empty string");
  bool negative = false;
  std::size_t pos = 0;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) throw std::invalid_argument("BigInt::from_string: lone sign");
  BigInt result;
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9')
      throw std::invalid_argument("BigInt::from_string: non-digit character");
    result *= BigInt(10);
    result += BigInt(c - '0');
  }
  if (negative) result = result.negated();
  return result;
}

int BigInt::compare_magnitude(const LimbVec& a, const LimbVec& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<BigInt::Limb> BigInt::add_magnitude(const LimbVec& a, const LimbVec& b) {
  const LimbVec& longer = a.size() >= b.size() ? a : b;
  const LimbVec& shorter = a.size() >= b.size() ? b : a;
  LimbVec out;
  out.reserve(longer.size() + 1);
  DoubleLimb carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    DoubleLimb sum = carry + longer[i];
    if (i < shorter.size()) sum += shorter[i];
    out.push_back(static_cast<Limb>(sum & 0xffffffffu));
    carry = sum >> kLimbBits;
  }
  if (carry != 0) out.push_back(static_cast<Limb>(carry));
  return out;
}

std::vector<BigInt::Limb> BigInt::sub_magnitude(const LimbVec& a, const LimbVec& b) {
  LimbVec out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += (std::int64_t{1} << kLimbBits);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<Limb>(diff));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<BigInt::Limb> BigInt::mul_magnitude(const LimbVec& a, const LimbVec& b) {
  if (a.empty() || b.empty()) return {};
  LimbVec out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    DoubleLimb carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      DoubleLimb cur = static_cast<DoubleLimb>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> kLimbBits;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      DoubleLimb cur = carry + out[k];
      out[k] = static_cast<Limb>(cur & 0xffffffffu);
      carry = cur >> kLimbBits;
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::pair<std::vector<BigInt::Limb>, std::vector<BigInt::Limb>> BigInt::divmod_magnitude(
    const LimbVec& num, const LimbVec& den) {
  if (den.empty()) throw std::domain_error("BigInt: division by zero");
  if (compare_magnitude(num, den) < 0) return {{}, num};

  // Fast path: single-limb divisor.
  if (den.size() == 1) {
    LimbVec quot(num.size(), 0);
    DoubleLimb rem = 0;
    for (std::size_t i = num.size(); i-- > 0;) {
      DoubleLimb cur = (rem << kLimbBits) | num[i];
      quot[i] = static_cast<Limb>(cur / den[0]);
      rem = cur % den[0];
    }
    while (!quot.empty() && quot.back() == 0) quot.pop_back();
    LimbVec remainder;
    if (rem != 0) remainder.push_back(static_cast<Limb>(rem));
    return {quot, remainder};
  }

  // Knuth algorithm D with normalization so the top divisor limb has its high bit set.
  int shift = 0;
  for (Limb top = den.back(); (top & 0x80000000u) == 0; top <<= 1) ++shift;

  auto shift_left = [](const LimbVec& v, int bits) {
    if (bits == 0) return v;
    LimbVec out(v.size() + 1, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      out[i] |= static_cast<Limb>(static_cast<DoubleLimb>(v[i]) << bits);
      out[i + 1] = static_cast<Limb>(static_cast<DoubleLimb>(v[i]) >> (kLimbBits - bits));
    }
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  };
  auto shift_right = [](LimbVec v, int bits) {
    if (bits == 0) return v;
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] >>= bits;
      if (i + 1 < v.size())
        v[i] |= static_cast<Limb>(static_cast<DoubleLimb>(v[i + 1]) << (kLimbBits - bits));
    }
    while (!v.empty() && v.back() == 0) v.pop_back();
    return v;
  };

  LimbVec u = shift_left(num, shift);
  LimbVec v = shift_left(den, shift);
  const std::size_t n = v.size();
  const std::size_t m = u.size() >= n ? u.size() - n : 0;
  u.resize(u.size() + 1, 0);  // extra high limb for the algorithm

  LimbVec quot(m + 1, 0);
  const DoubleLimb base = DoubleLimb{1} << kLimbBits;
  for (std::size_t j = m + 1; j-- > 0;) {
    DoubleLimb numerator = (static_cast<DoubleLimb>(u[j + n]) << kLimbBits) | u[j + n - 1];
    DoubleLimb qhat = numerator / v[n - 1];
    DoubleLimb rhat = numerator % v[n - 1];
    while (qhat >= base ||
           qhat * v[n - 2] > ((rhat << kLimbBits) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= base) break;
    }
    // Multiply-subtract qhat*v from u[j .. j+n].
    std::int64_t borrow = 0;
    DoubleLimb carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      DoubleLimb product = qhat * v[i] + carry;
      carry = product >> kLimbBits;
      std::int64_t diff = static_cast<std::int64_t>(u[i + j]) - borrow -
                          static_cast<std::int64_t>(product & 0xffffffffu);
      if (diff < 0) {
        diff += static_cast<std::int64_t>(base);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<Limb>(diff);
    }
    std::int64_t top = static_cast<std::int64_t>(u[j + n]) - borrow -
                       static_cast<std::int64_t>(carry);
    if (top < 0) {
      // qhat was one too large: add v back once.
      top += static_cast<std::int64_t>(base);
      --qhat;
      DoubleLimb add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        DoubleLimb sum = static_cast<DoubleLimb>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<Limb>(sum & 0xffffffffu);
        add_carry = sum >> kLimbBits;
      }
      top += static_cast<std::int64_t>(add_carry);
      top &= static_cast<std::int64_t>(base - 1);
    }
    u[j + n] = static_cast<Limb>(top);
    quot[j] = static_cast<Limb>(qhat);
  }

  while (!quot.empty() && quot.back() == 0) quot.pop_back();
  u.resize(n);
  while (!u.empty() && u.back() == 0) u.pop_back();
  return {quot, shift_right(std::move(u), shift)};
}

BigInt BigInt::abs() const {
  if (small_repr()) return small_ < 0 ? negated() : *this;
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt BigInt::negated() const {
  if (small_repr()) {
    if (small_ == std::numeric_limits<std::int64_t>::min())
      return from_u64(kInt64MinMagnitude, false);
    BigInt out;
    out.small_ = -small_;
    return out;
  }
  BigInt out = *this;
  if (!out.limbs_.empty()) out.negative_ = !out.negative_;
  return out;
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (small_repr() && rhs.small_repr() && !test_force_big_) {
    std::int64_t sum;
    if (!__builtin_add_overflow(small_, rhs.small_, &sum)) {
      small_ = sum;
      ++numeric_counters().bigint_small_hits;
      return *this;
    }
    // Same-sign overflow: the exact sum's magnitude is at most 2^64, so build
    // it from the wrapped unsigned sum directly. The lone magnitude-2^64 case
    // (INT64_MIN + INT64_MIN wraps to 0) needs a third limb.
    ++numeric_counters().bigint_promotions;
    std::uint64_t wrapped =
        static_cast<std::uint64_t>(small_) + static_cast<std::uint64_t>(rhs.small_);
    if (small_ >= 0) {
      *this = from_u64(wrapped, false);
    } else if (wrapped == 0) {
      adopt_limbs({0, 0, 1}, true);
    } else {
      *this = from_u64(std::uint64_t{0} - wrapped, true);
    }
    return *this;
  }
  BigInt lhs_storage, rhs_storage;
  const BigInt& a = ensure_big(*this, lhs_storage);
  const BigInt& b = ensure_big(rhs, rhs_storage);
  bool negative;
  LimbVec magnitude;
  if (a.negative_ == b.negative_) {
    negative = a.negative_;
    magnitude = add_magnitude(a.limbs_, b.limbs_);
  } else {
    int cmp = compare_magnitude(a.limbs_, b.limbs_);
    if (cmp == 0) {
      adopt_limbs({}, false);
      return *this;
    }
    if (cmp > 0) {
      negative = a.negative_;
      magnitude = sub_magnitude(a.limbs_, b.limbs_);
    } else {
      negative = b.negative_;
      magnitude = sub_magnitude(b.limbs_, a.limbs_);
    }
  }
  adopt_limbs(std::move(magnitude), negative);
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  if (small_repr() && rhs.small_repr() && !test_force_big_) {
    std::int64_t diff;
    if (!__builtin_sub_overflow(small_, rhs.small_, &diff)) {
      small_ = diff;
      ++numeric_counters().bigint_small_hits;
      return *this;
    }
    ++numeric_counters().bigint_promotions;
    std::uint64_t wrapped =
        static_cast<std::uint64_t>(small_) - static_cast<std::uint64_t>(rhs.small_);
    *this = small_ >= 0 ? from_u64(wrapped, false)
                        : from_u64(std::uint64_t{0} - wrapped, true);
    return *this;
  }
  return *this += rhs.negated();
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (small_repr() && rhs.small_repr() && !test_force_big_) {
    std::int64_t product;
    if (!__builtin_mul_overflow(small_, rhs.small_, &product)) {
      small_ = product;
      ++numeric_counters().bigint_small_hits;
      return *this;
    }
    ++numeric_counters().bigint_promotions;
#if defined(__SIZEOF_INT128__)
    bool negative = (small_ < 0) != (rhs.small_ < 0);
    unsigned __int128 product128 = static_cast<unsigned __int128>(magnitude_of(small_)) *
                                   magnitude_of(rhs.small_);
    LimbVec limbs;
    while (product128 != 0) {
      limbs.push_back(static_cast<Limb>(static_cast<std::uint64_t>(product128) &
                                        0xffffffffu));
      product128 >>= kLimbBits;
    }
    adopt_limbs(std::move(limbs), negative);
    return *this;
#endif
  }
  BigInt lhs_storage, rhs_storage;
  const BigInt& a = ensure_big(*this, lhs_storage);
  const BigInt& b = ensure_big(rhs, rhs_storage);
  bool negative = a.negative_ != b.negative_;
  adopt_limbs(mul_magnitude(a.limbs_, b.limbs_), negative);
  return *this;
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  *this = divmod(*this, rhs).first;
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  *this = divmod(*this, rhs).second;
  return *this;
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& num, const BigInt& den) {
  if (num.small_repr() && den.small_repr() && !test_force_big_) {
    if (den.small_ == 0) throw std::domain_error("BigInt: division by zero");
    ++numeric_counters().bigint_small_hits;
    if (num.small_ == std::numeric_limits<std::int64_t>::min() && den.small_ == -1)
      return {from_u64(kInt64MinMagnitude, false), BigInt()};
    BigInt quotient, remainder;
    quotient.small_ = num.small_ / den.small_;
    remainder.small_ = num.small_ % den.small_;
    return {std::move(quotient), std::move(remainder)};
  }
  BigInt num_storage, den_storage;
  const BigInt& a = ensure_big(num, num_storage);
  const BigInt& b = ensure_big(den, den_storage);
  auto [q_mag, r_mag] = divmod_magnitude(a.limbs_, b.limbs_);
  BigInt quotient, remainder;
  quotient.adopt_limbs(std::move(q_mag), a.negative_ != b.negative_);
  remainder.adopt_limbs(std::move(r_mag), a.negative_);
  return {std::move(quotient), std::move(remainder)};
}

int BigInt::compare_values(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.small_repr() && rhs.small_repr())
    return (lhs.small_ > rhs.small_) - (lhs.small_ < rhs.small_);
  int lhs_sign = lhs.sign();
  int rhs_sign = rhs.sign();
  if (lhs_sign != rhs_sign) return lhs_sign < rhs_sign ? -1 : 1;
  if (lhs_sign == 0) return 0;
  int magnitude_cmp;
  if (!lhs.small_repr() && !rhs.small_repr()) {
    magnitude_cmp = compare_magnitude(lhs.limbs_, rhs.limbs_);
  } else if (lhs.small_repr()) {
    magnitude_cmp = -compare_limbs_vs_u64(rhs.limbs_, magnitude_of(lhs.small_));
  } else {
    magnitude_cmp = compare_limbs_vs_u64(lhs.limbs_, magnitude_of(rhs.small_));
  }
  return lhs_sign > 0 ? magnitude_cmp : -magnitude_cmp;
}

bool operator==(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.big_ == rhs.big_) {
    if (!lhs.big_) return lhs.small_ == rhs.small_;
    return lhs.negative_ == rhs.negative_ && lhs.limbs_ == rhs.limbs_;
  }
  return BigInt::compare_values(lhs, rhs) == 0;
}

std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs) {
  int cmp = BigInt::compare_values(lhs, rhs);
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::uint64_t BigInt::gcd_u64(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0) return b;
  if (b == 0) return a;
  int a_twos = __builtin_ctzll(a);
  int b_twos = __builtin_ctzll(b);
  int shift = a_twos < b_twos ? a_twos : b_twos;
  b >>= b_twos;
  while (a != 0) {
    a >>= __builtin_ctzll(a);
    if (a < b) std::swap(a, b);
    a -= b;
  }
  return b << shift;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  // Euclid on big operands demotes as magnitudes shrink, dropping into the
  // allocation-free binary GCD the moment both fit a machine word.
  while (true) {
    if (a.small_repr() && b.small_repr() && !test_force_big_) {
      ++numeric_counters().bigint_small_hits;
      return from_u64(gcd_u64(magnitude_of(a.small_), magnitude_of(b.small_)), false);
    }
    if (b.is_zero()) return a.abs();
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
}

std::string BigInt::to_string() const {
  if (small_repr()) return std::to_string(small_);
  if (limbs_.empty()) return "0";
  // Repeatedly divide by 10^9 to peel decimal chunks.
  LimbVec mag = limbs_;
  std::string digits;
  constexpr Limb kChunk = 1000000000u;
  while (!mag.empty()) {
    DoubleLimb rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      DoubleLimb cur = (rem << kLimbBits) | mag[i];
      mag[i] = static_cast<Limb>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int k = 0; k < 9; ++k) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

double BigInt::to_double() const {
  if (small_repr()) return static_cast<double>(small_);
  double out = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

bool BigInt::fits_int64() const {
  if (small_repr()) return true;
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  std::uint64_t mag = (static_cast<std::uint64_t>(limbs_[1]) << kLimbBits) | limbs_[0];
  return negative_ ? mag <= kInt64MinMagnitude : mag < kInt64MinMagnitude;
}

std::int64_t BigInt::to_int64() const {
  if (small_repr()) return small_;
  if (!fits_int64()) throw std::overflow_error("BigInt::to_int64: out of range");
  std::uint64_t mag = 0;
  if (limbs_.size() >= 1) mag |= limbs_[0];
  if (limbs_.size() >= 2) mag |= static_cast<std::uint64_t>(limbs_[1]) << kLimbBits;
  return negative_ ? -static_cast<std::int64_t>(mag - 1) - 1
                   : static_cast<std::int64_t>(mag);
}

std::size_t BigInt::bit_length() const {
  if (small_repr()) {
    std::uint64_t mag = magnitude_of(small_);
    return mag == 0 ? 0 : 64 - static_cast<std::size_t>(__builtin_clzll(mag));
  }
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * kLimbBits;
  Limb top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::size_t BigInt::hash() const {
  // Representation independent: walk the little-endian limb decomposition of
  // the magnitude whether it lives inline or in the vector.
  std::size_t h = is_negative() ? 0x9e3779b97f4a7c15ull : 0x2545f4914f6cdd1dull;
  if (small_repr()) {
    std::uint64_t mag = magnitude_of(small_);
    while (mag != 0) {
      h = h * 1099511628211ull ^ static_cast<Limb>(mag & 0xffffffffu);
      mag >>= kLimbBits;
    }
    return h;
  }
  for (Limb limb : limbs_) h = h * 1099511628211ull ^ limb;
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.to_string();
}

}  // namespace mpss
