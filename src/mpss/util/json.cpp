#include "mpss/util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mpss::json {
namespace {

[[noreturn]] void fail(const char* what, std::size_t offset) {
  throw std::invalid_argument("json: " + std::string(what) + " at offset " +
                              std::to_string(offset));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content", pos_);
    return value;
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep", pos_);
    skip_whitespace();
    char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal", pos_);
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal", pos_);
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal", pos_);
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object(std::size_t depth) {
    expect('{');
    Object members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(members));
      if (c != ',') fail("expected ',' or '}'", pos_ - 1);
    }
  }

  Value parse_array(std::size_t depth) {
    expect('[');
    Array elements;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(elements));
    }
    for (;;) {
      elements.push_back(parse_value(depth + 1));
      skip_whitespace();
      char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(elements));
      if (c != ',') fail("expected ',' or ']'", pos_ - 1);
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("bad \\u escape", pos_);
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape", pos_ - 1);
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character", pos_ - 1);
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate must follow for a full code point.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned low = parse_hex4();
              if (low < 0xDC00 || low > 0xDFFF) fail("bad surrogate pair", pos_);
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              fail("lone surrogate", pos_);
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone surrogate", pos_);
          }
          append_utf8(out, code);
          break;
        }
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      digits = true;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (!digits) fail("invalid number", start);
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number", start);
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string_view text, std::string& out) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(double value, std::string& out) {
  if (!std::isfinite(value)) {
    // JSON has no NaN/Inf; null is the conventional stand-in and the decoders
    // here reject it with "expected number", which is the right failure.
    out += "null";
    return;
  }
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 1e15) {
    out += std::to_string(static_cast<long long>(value));
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += buffer;
}

}  // namespace

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  throw std::invalid_argument("json: expected bool");
}

double Value::as_double() const {
  if (const double* d = std::get_if<double>(&data_)) return *d;
  throw std::invalid_argument("json: expected number");
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  throw std::invalid_argument("json: expected string");
}

const Array& Value::as_array() const {
  if (const Array* a = std::get_if<Array>(&data_)) return *a;
  throw std::invalid_argument("json: expected array");
}

const Object& Value::as_object() const {
  if (const Object* o = std::get_if<Object>(&data_)) return *o;
  throw std::invalid_argument("json: expected object");
}

const Value* Value::find(std::string_view key) const {
  const Object* members = std::get_if<Object>(&data_);
  if (members == nullptr) return nullptr;
  for (const auto& [name, value] : *members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  if (const Value* value = find(key)) return *value;
  throw std::invalid_argument("json: missing field '" + std::string(key) + "'");
}

void Value::set(std::string key, Value value) {
  Object* members = std::get_if<Object>(&data_);
  if (members == nullptr) {
    data_ = Object{};
    members = std::get_if<Object>(&data_);
  }
  members->emplace_back(std::move(key), std::move(value));
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

void serialize_to(const Value& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    append_number(value.as_double(), out);
  } else if (value.is_string()) {
    append_escaped(value.as_string(), out);
  } else if (value.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const Value& element : value.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      serialize_to(element, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [key, member] : value.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      append_escaped(key, out);
      out.push_back(':');
      serialize_to(member, out);
    }
    out.push_back('}');
  }
}

std::string serialize(const Value& value) {
  std::string out;
  serialize_to(value, out);
  return out;
}

}  // namespace mpss::json
