#include "mpss/util/numeric_counters.hpp"

#include "mpss/obs/registry.hpp"

namespace mpss {

namespace {
thread_local NumericCounters g_numeric_counters;
}  // namespace

NumericCounters& numeric_counters() noexcept { return g_numeric_counters; }

void publish_numeric_counters() {
  NumericCounters& local = numeric_counters();
  if (local.bigint_small_hits != 0)
    obs::Registry::global().add("bigint.small_hits", local.bigint_small_hits);
  if (local.bigint_promotions != 0)
    obs::Registry::global().add("bigint.promotions", local.bigint_promotions);
  if (local.rational_norm_small != 0)
    obs::Registry::global().add("rational.norm_small", local.rational_norm_small);
  local = NumericCounters{};
}

}  // namespace mpss
