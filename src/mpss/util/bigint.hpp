#pragma once
// Arbitrary-precision signed integer (sign-magnitude, 32-bit limbs).
//
// Substrate S1 (see DESIGN.md): the offline optimal algorithm branches on exact
// equalities between flow values and work/speed quotients, so every quantity in the
// scheduling core is an exact rational over BigInt. The class implements only what
// the scheduler and its tests need -- full ring arithmetic, ordering, divmod, gcd,
// decimal I/O -- with no allocation tricks beyond a small inline buffer in
// std::vector's control of the limb array.

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mpss {

/// Arbitrary-precision signed integer.
///
/// Representation: `negative_` flag plus little-endian vector of 32-bit limbs with
/// no trailing zero limbs; zero is the empty limb vector with `negative_ == false`.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From built-in integer.
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor): intentional
  BigInt(int value) : BigInt(static_cast<std::int64_t>(value)) {}

  /// Parses an optionally signed decimal string. Throws std::invalid_argument on
  /// malformed input (empty, non-digits, lone sign).
  static BigInt from_string(std::string_view text);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] bool is_one() const {
    return !negative_ && limbs_.size() == 1 && limbs_[0] == 1;
  }

  /// -1, 0, +1.
  [[nodiscard]] int sign() const {
    if (limbs_.empty()) return 0;
    return negative_ ? -1 : 1;
  }

  [[nodiscard]] BigInt abs() const;
  [[nodiscard]] BigInt negated() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  /// Throws std::domain_error on division by zero.
  BigInt& operator/=(const BigInt& rhs);
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }
  BigInt operator-() const { return negated(); }

  /// Quotient and remainder in one pass; remainder has the dividend's sign.
  [[nodiscard]] static std::pair<BigInt, BigInt> divmod(const BigInt& num,
                                                        const BigInt& den);

  friend bool operator==(const BigInt& lhs, const BigInt& rhs);
  friend std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs);

  /// Greatest common divisor (always non-negative; gcd(0,0) == 0).
  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);

  /// Decimal representation (with leading '-' when negative).
  [[nodiscard]] std::string to_string() const;

  /// Nearest double (may overflow to +/-inf for huge values).
  [[nodiscard]] double to_double() const;

  /// Exact conversion; throws std::overflow_error if the value does not fit.
  [[nodiscard]] std::int64_t to_int64() const;

  /// True iff the value fits in int64.
  [[nodiscard]] bool fits_int64() const;

  /// Number of bits in the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;

  /// FNV-style hash over the canonical representation.
  [[nodiscard]] std::size_t hash() const;

 private:
  using Limb = std::uint32_t;
  using DoubleLimb = std::uint64_t;
  static constexpr int kLimbBits = 32;

  void trim();
  static int compare_magnitude(const std::vector<Limb>& a, const std::vector<Limb>& b);
  static std::vector<Limb> add_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  // Requires |a| >= |b|.
  static std::vector<Limb> sub_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  static std::vector<Limb> mul_magnitude(const std::vector<Limb>& a,
                                         const std::vector<Limb>& b);
  // Schoolbook long division on magnitudes; returns {quotient, remainder}.
  static std::pair<std::vector<Limb>, std::vector<Limb>> divmod_magnitude(
      const std::vector<Limb>& num, const std::vector<Limb>& den);

  bool negative_ = false;
  std::vector<Limb> limbs_;
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace mpss

template <>
struct std::hash<mpss::BigInt> {
  std::size_t operator()(const mpss::BigInt& v) const noexcept { return v.hash(); }
};
