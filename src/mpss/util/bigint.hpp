#pragma once
// Arbitrary-precision signed integer with a small-value fast path.
//
// Substrate S1 (see DESIGN.md): the offline optimal algorithm branches on exact
// equalities between flow values and work/speed quotients, so every quantity in the
// scheduling core is an exact rational over BigInt. On realistic instances almost
// every intermediate value fits in a machine word, so the class keeps two
// representations behind one API:
//
//   * small: the value lives in an in-object int64 -- no heap allocation, and
//     arithmetic is a single overflow-checked machine operation
//     (__builtin_add_overflow family) plus a binary GCD for Rational
//     normalization;
//   * big: the original sign-magnitude vector of 32-bit limbs, entered only when
//     a small-path operation overflows or an operand is already big.
//
// The representation is canonical: outside the test-only force-big hooks, a
// BigInt is big if and only if its value does not fit in int64 (results of limb
// arithmetic demote on the way out). Equality, ordering, and hashing are value
// based either way, so the hooks can pin a value in the limb representation
// without changing observable behaviour. Promotion/demotion traffic is counted
// in mpss::numeric_counters() (util/numeric_counters.hpp).

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mpss {

/// Arbitrary-precision signed integer.
///
/// Representation: a tagged union of an inline `int64` (small values, the common
/// case) and a little-endian vector of 32-bit limbs with no trailing zero limbs
/// plus a sign flag (big values). Zero is canonically small.
class BigInt {
 public:
  /// Zero.
  BigInt() noexcept : small_(0) {}

  /// From built-in integer. Always small (unless the test force-big mode is on).
  BigInt(std::int64_t value);  // NOLINT(google-explicit-constructor): intentional
  BigInt(int value) : BigInt(static_cast<std::int64_t>(value)) {}

  BigInt(const BigInt& other);
  BigInt(BigInt&& other) noexcept;
  BigInt& operator=(const BigInt& other);
  BigInt& operator=(BigInt&& other) noexcept;
  ~BigInt();

  /// Parses an optionally signed decimal string. Throws std::invalid_argument on
  /// malformed input (empty, non-digits, lone sign).
  static BigInt from_string(std::string_view text);

  [[nodiscard]] bool is_zero() const { return small_repr() ? small_ == 0 : limbs_.empty(); }
  [[nodiscard]] bool is_negative() const { return small_repr() ? small_ < 0 : negative_; }
  [[nodiscard]] bool is_one() const {
    return small_repr() ? small_ == 1
                        : (!negative_ && limbs_.size() == 1 && limbs_[0] == 1);
  }

  /// -1, 0, +1.
  [[nodiscard]] int sign() const {
    if (small_repr()) return (small_ > 0) - (small_ < 0);
    if (limbs_.empty()) return 0;
    return negative_ ? -1 : 1;
  }

  [[nodiscard]] BigInt abs() const;
  [[nodiscard]] BigInt negated() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  /// Throws std::domain_error on division by zero.
  BigInt& operator/=(const BigInt& rhs);
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }
  BigInt operator-() const { return negated(); }

  /// Quotient and remainder in one pass; remainder has the dividend's sign.
  [[nodiscard]] static std::pair<BigInt, BigInt> divmod(const BigInt& num,
                                                        const BigInt& den);

  friend bool operator==(const BigInt& lhs, const BigInt& rhs);
  friend std::strong_ordering operator<=>(const BigInt& lhs, const BigInt& rhs);

  /// Greatest common divisor (always non-negative; gcd(0,0) == 0).
  [[nodiscard]] static BigInt gcd(BigInt a, BigInt b);

  /// Binary GCD on raw 64-bit magnitudes: the allocation-free kernel behind
  /// gcd() and Rational normalization on the small path.
  [[nodiscard]] static std::uint64_t gcd_u64(std::uint64_t a,
                                             std::uint64_t b) noexcept;

  /// Decimal representation (with leading '-' when negative).
  [[nodiscard]] std::string to_string() const;

  /// Nearest double (may overflow to +/-inf for huge values).
  [[nodiscard]] double to_double() const;

  /// Exact conversion; throws std::overflow_error if the value does not fit.
  [[nodiscard]] std::int64_t to_int64() const;

  /// True iff the value fits in int64.
  [[nodiscard]] bool fits_int64() const;

  /// Number of bits in the magnitude (0 for zero).
  [[nodiscard]] std::size_t bit_length() const;

  /// FNV-style hash over the canonical limb decomposition (representation
  /// independent: a forced-big value hashes like its small twin).
  [[nodiscard]] std::size_t hash() const;

  /// True when the value currently lives in the inline-int64 representation.
  [[nodiscard]] bool is_small() const { return small_repr(); }

  /// The inline value. Precondition: is_small().
  [[nodiscard]] std::int64_t small_value() const { return small_; }

  /// Test-only hook: pins this value in the limb representation (a
  /// representation change only -- comparisons, hashing, and arithmetic stay
  /// value-correct). The differential tests use it to force the limb path on
  /// operands that would otherwise ride the int64 path.
  void force_big();

  /// Test-only global mode: while on, constructors produce the limb
  /// representation and results never demote, so whole computations replay the
  /// pre-fast-path behaviour. Not thread-safe; flip only around single-threaded
  /// test sections.
  static void set_test_force_big(bool on) { test_force_big_ = on; }
  [[nodiscard]] static bool test_force_big() { return test_force_big_; }

 private:
  using Limb = std::uint32_t;
  using DoubleLimb = std::uint64_t;
  using LimbVec = std::vector<Limb>;
  static constexpr int kLimbBits = 32;

  [[nodiscard]] bool small_repr() const { return !big_; }

  // Representation management (bigint.cpp).
  void promote();            // small -> big, value preserved
  void demote_if_fits();     // big -> small when the magnitude fits int64
  void adopt_limbs(LimbVec limbs, bool negative);  // become big with these limbs
  static BigInt from_u64(std::uint64_t magnitude, bool negative);

  static int compare_values(const BigInt& lhs, const BigInt& rhs);

  static int compare_magnitude(const LimbVec& a, const LimbVec& b);
  static LimbVec add_magnitude(const LimbVec& a, const LimbVec& b);
  // Requires |a| >= |b|.
  static LimbVec sub_magnitude(const LimbVec& a, const LimbVec& b);
  static LimbVec mul_magnitude(const LimbVec& a, const LimbVec& b);
  // Schoolbook long division on magnitudes; returns {quotient, remainder}.
  static std::pair<LimbVec, LimbVec> divmod_magnitude(const LimbVec& num,
                                                      const LimbVec& den);

  static bool test_force_big_;

  // Tagged union: `small_` is the value when !big_; `limbs_` plus `negative_`
  // (sign-magnitude, no trailing zero limbs) when big_.
  bool big_ = false;
  bool negative_ = false;  // meaningful only when big_
  union {
    std::int64_t small_;
    LimbVec limbs_;
  };
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace mpss

template <>
struct std::hash<mpss::BigInt> {
  std::size_t operator()(const mpss::BigInt& v) const noexcept { return v.hash(); }
};
