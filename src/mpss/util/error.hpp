#pragma once
// Error types and invariant-checking helpers used across the library.

#include <stdexcept>
#include <string>

namespace mpss {

/// Thrown when an internal invariant of an algorithm is violated. Seeing this
/// exception always indicates a bug in the library (or memory corruption), never a
/// caller error; caller errors raise std::invalid_argument.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& message)
      : std::logic_error("mpss internal error: " + message) {}
};

/// Throws InternalError when `condition` is false. Used for algorithm invariants
/// that are cheap enough to verify in release builds.
inline void check_internal(bool condition, const char* message) {
  if (!condition) throw InternalError(message);
}

/// Throws std::invalid_argument when `condition` is false.
inline void check_arg(bool condition, const char* message) {
  if (!condition) throw std::invalid_argument(message);
}

}  // namespace mpss
