#pragma once
// Streaming statistics accumulators used by the experiment harnesses.

#include <cstddef>
#include <vector>

namespace mpss {

/// Single-pass accumulator (Welford) for mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Merge another accumulator (parallel reduction of per-thread stats).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores all samples; supports exact quantiles. Intended for harness-sized data
/// (thousands of samples), not telemetry-sized.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated quantile, q in [0,1]. Throws std::invalid_argument on
  /// empty set or q outside [0,1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace mpss
