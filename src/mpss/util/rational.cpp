#include "mpss/util/rational.hpp"

#include <cstdint>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "mpss/util/numeric_counters.hpp"

namespace mpss {

Rational::Rational(BigInt num, BigInt den) : num_(std::move(num)), den_(std::move(den)) {
  if (den_.is_zero()) throw std::domain_error("Rational: zero denominator");
  normalize();
}

void Rational::normalize() {
  // Small path: both parts word-sized (the overwhelmingly common case on
  // realistic instances). Sign fixup, binary GCD, and the divisions all run on
  // int64 with zero allocations. INT64_MIN is excluded so every negation below
  // stays in range.
  if (num_.is_small() && den_.is_small() && !BigInt::test_force_big()) {
    std::int64_t n = num_.small_value();
    std::int64_t d = den_.small_value();
    if (n != std::numeric_limits<std::int64_t>::min() &&
        d != std::numeric_limits<std::int64_t>::min()) {
      ++numeric_counters().rational_norm_small;
      if (d < 0) {
        n = -n;
        d = -d;
      }
      if (n == 0) {
        num_ = BigInt();
        den_ = BigInt(1);
        return;
      }
      std::uint64_t g = BigInt::gcd_u64(n < 0 ? static_cast<std::uint64_t>(-n)
                                              : static_cast<std::uint64_t>(n),
                                        static_cast<std::uint64_t>(d));
      if (g != 1) {
        n /= static_cast<std::int64_t>(g);
        d /= static_cast<std::int64_t>(g);
      }
      num_ = BigInt(n);
      den_ = BigInt(d);
      return;
    }
  }
  if (den_.sign() < 0) {
    num_ = num_.negated();
    den_ = den_.negated();
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::gcd(num_, den_);
  if (!g.is_one()) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::from_string(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return Rational(BigInt::from_string(text));
  return Rational(BigInt::from_string(text.substr(0, slash)),
                  BigInt::from_string(text.substr(slash + 1)));
}

Rational Rational::abs() const {
  Rational out = *this;
  out.num_ = out.num_.abs();
  return out;
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = out.num_.negated();
  return out;
}

Rational Rational::inverse() const {
  if (is_zero()) throw std::domain_error("Rational::inverse: zero");
  return Rational(den_, num_);
}

Rational& Rational::operator+=(const Rational& rhs) {
  num_ = num_ * rhs.den_ + rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  num_ = num_ * rhs.den_ - rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  num_ *= rhs.num_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.is_zero()) throw std::domain_error("Rational: division by zero");
  num_ *= rhs.den_;
  den_ *= rhs.num_;
  normalize();
  return *this;
}

std::strong_ordering operator<=>(const Rational& lhs, const Rational& rhs) {
  // Denominators are positive, so cross-multiplication preserves order.
  return lhs.num_ * rhs.den_ <=> rhs.num_ * lhs.den_;
}

BigInt Rational::floor() const {
  auto [quotient, remainder] = BigInt::divmod(num_, den_);
  if (remainder.sign() < 0) quotient -= BigInt(1);
  return quotient;
}

BigInt Rational::ceil() const {
  auto [quotient, remainder] = BigInt::divmod(num_, den_);
  if (remainder.sign() > 0) quotient += BigInt(1);
  return quotient;
}

double Rational::to_double() const { return num_.to_double() / den_.to_double(); }

std::string Rational::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.to_string();
}

}  // namespace mpss
