#include "mpss/util/rational.hpp"

#include <cstdint>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "mpss/util/numeric_counters.hpp"

namespace mpss {

Rational::Rational(BigInt num, BigInt den) : num_(std::move(num)), den_(std::move(den)) {
  if (den_.is_zero()) throw std::domain_error("Rational: zero denominator");
  normalize();
}

void Rational::normalize() {
  // Small path: both parts word-sized (the overwhelmingly common case on
  // realistic instances). Sign fixup, binary GCD, and the divisions all run on
  // int64 with zero allocations. INT64_MIN is excluded so every negation below
  // stays in range.
  if (num_.is_small() && den_.is_small() && !BigInt::test_force_big()) {
    std::int64_t n = num_.small_value();
    std::int64_t d = den_.small_value();
    if (n != std::numeric_limits<std::int64_t>::min() &&
        d != std::numeric_limits<std::int64_t>::min()) {
      ++numeric_counters().rational_norm_small;
      if (d < 0) {
        n = -n;
        d = -d;
      }
      if (n == 0) {
        num_ = BigInt();
        den_ = BigInt(1);
        return;
      }
      std::uint64_t g = BigInt::gcd_u64(n < 0 ? static_cast<std::uint64_t>(-n)
                                              : static_cast<std::uint64_t>(n),
                                        static_cast<std::uint64_t>(d));
      if (g != 1) {
        n /= static_cast<std::int64_t>(g);
        d /= static_cast<std::int64_t>(g);
      }
      num_ = BigInt(n);
      den_ = BigInt(d);
      return;
    }
  }
  if (den_.sign() < 0) {
    num_ = num_.negated();
    den_ = den_.negated();
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::gcd(num_, den_);
  if (!g.is_one()) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::from_string(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return Rational(BigInt::from_string(text));
  return Rational(BigInt::from_string(text.substr(0, slash)),
                  BigInt::from_string(text.substr(slash + 1)));
}

Rational Rational::abs() const {
  Rational out = *this;
  out.num_ = out.num_.abs();
  return out;
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = out.num_.negated();
  return out;
}

Rational Rational::inverse() const {
  if (is_zero()) throw std::domain_error("Rational::inverse: zero");
  return Rational(den_, num_);
}

namespace {

/// True when every part of both operands is on BigInt's inline-int64 path
/// (and the test hook isn't forcing the limb representation).
inline bool all_small(const Rational& lhs, const Rational& rhs) {
  return lhs.num().is_small() && lhs.den().is_small() && rhs.num().is_small() &&
         rhs.den().is_small() && !BigInt::test_force_big();
}

}  // namespace

Rational& Rational::fused_add_sub(const Rational& rhs, bool subtract) {
  if (all_small(*this, rhs)) {
    // Fused small path: cross products, combine, and gcd all on int64 with
    // overflow-checked builtins -- no BigInt temporaries, one counter bump.
    // Operands are canonical (den > 0), so the result denominator is positive
    // whenever its product doesn't overflow.
    const std::int64_t ln = num_.small_value();
    const std::int64_t ld = den_.small_value();
    const std::int64_t rn = rhs.num_.small_value();
    const std::int64_t rd = rhs.den_.small_value();
    std::int64_t cross_l = 0;
    std::int64_t cross_r = 0;
    std::int64_t den = 0;
    std::int64_t num = 0;
    if (!__builtin_mul_overflow(ln, rd, &cross_l) &&
        !__builtin_mul_overflow(rn, ld, &cross_r) &&
        !__builtin_mul_overflow(ld, rd, &den) &&
        !(subtract ? __builtin_sub_overflow(cross_l, cross_r, &num)
                   : __builtin_add_overflow(cross_l, cross_r, &num))) {
      if (num == 0) {
        num_ = BigInt();
        den_ = BigInt(1);
        ++numeric_counters().rational_norm_small;
        return *this;
      }
      if (num != std::numeric_limits<std::int64_t>::min()) {
        ++numeric_counters().rational_norm_small;
        std::uint64_t g = BigInt::gcd_u64(
            num < 0 ? static_cast<std::uint64_t>(-num)
                    : static_cast<std::uint64_t>(num),
            static_cast<std::uint64_t>(den));
        if (g != 1) {
          num /= static_cast<std::int64_t>(g);
          den /= static_cast<std::int64_t>(g);
        }
        num_ = BigInt(num);
        den_ = BigInt(den);
        return *this;
      }
      // num == INT64_MIN: representable, but normalize()'s negation-free
      // small path excludes it. Store and take the generic reduction.
      num_ = BigInt(num);
      den_ = BigInt(den);
      normalize();
      return *this;
    }
  }
  num_ = subtract ? num_ * rhs.den_ - rhs.num_ * den_
                  : num_ * rhs.den_ + rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::add_assign(const Rational& rhs) {
  return fused_add_sub(rhs, /*subtract=*/false);
}

Rational& Rational::sub_assign(const Rational& rhs) {
  return fused_add_sub(rhs, /*subtract=*/true);
}

Rational& Rational::operator*=(const Rational& rhs) {
  num_ *= rhs.num_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.is_zero()) throw std::domain_error("Rational: division by zero");
  num_ *= rhs.den_;
  den_ *= rhs.num_;
  normalize();
  return *this;
}

int Rational::compare(const Rational& rhs) const {
  // Denominators are positive, so cross-multiplication preserves order.
  if (all_small(*this, rhs)) {
    // 128-bit cross products: no overflow cases, no BigInt construction.
    const __int128 lhs_cross =
        static_cast<__int128>(num_.small_value()) * rhs.den_.small_value();
    const __int128 rhs_cross =
        static_cast<__int128>(rhs.num_.small_value()) * den_.small_value();
    return static_cast<int>(lhs_cross > rhs_cross) -
           static_cast<int>(lhs_cross < rhs_cross);
  }
  BigInt lhs_cross = num_ * rhs.den_;
  BigInt rhs_cross = rhs.num_ * den_;
  auto order = lhs_cross <=> rhs_cross;
  return order < 0 ? -1 : (order > 0 ? 1 : 0);
}

BigInt Rational::floor() const {
  auto [quotient, remainder] = BigInt::divmod(num_, den_);
  if (remainder.sign() < 0) quotient -= BigInt(1);
  return quotient;
}

BigInt Rational::ceil() const {
  auto [quotient, remainder] = BigInt::divmod(num_, den_);
  if (remainder.sign() > 0) quotient += BigInt(1);
  return quotient;
}

double Rational::to_double() const { return num_.to_double() / den_.to_double(); }

std::string Rational::to_string() const {
  if (is_integer()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.to_string();
}

}  // namespace mpss
