#pragma once
// Fixed-width console table printing for the experiment harnesses. Every exp_*
// binary prints its result rows through this so all tables in EXPERIMENTS.md share
// one format.

#include <iosfwd>
#include <string>
#include <vector>

namespace mpss {

/// Column-aligned text table. Collects rows, then renders once (so column widths
/// fit the data).
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Adds one row; pads/truncates to the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: accepts any streamable mix of values.
  template <typename... Args>
  void row(const Args&... args) {
    add_row({cell(args)...});
  }

  /// Formats a double with fixed precision (default 4 digits).
  static std::string num(double value, int precision = 4);

  void print(std::ostream& os) const;

  /// Machine-readable form of the same table (header row + data rows, RFC-4180
  /// quoting) so experiment outputs can feed plotting scripts directly.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string cell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      return num(static_cast<double>(value));
    } else if constexpr (std::is_integral_v<T>) {
      return std::to_string(value);
    } else {
      return value.to_string();
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpss
