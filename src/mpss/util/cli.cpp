#include "mpss/util/cli.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpss {

CliArgs::CliArgs(int argc, const char* const* argv, std::vector<std::string> spec) {
  auto known = [&spec](const std::string& name) {
    return std::find(spec.begin(), spec.end(), name) != spec.end();
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool have_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      have_value = true;
    } else {
      name = body;
    }
    if (!known(name)) throw std::invalid_argument("unknown flag: --" + name);
    if (!have_value && i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
      have_value = true;
    }
    values_[name] = have_value ? value : "true";
  }
}

bool CliArgs::has(const std::string& name) const { return values_.count(name) != 0; }

std::string CliArgs::get(const std::string& name, std::string fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoll(it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace mpss
