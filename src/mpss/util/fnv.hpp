#pragma once
// FNV-1a accumulation helpers shared by the value-identity fingerprints
// (PowerFunction::fingerprint, solve_fingerprint). Not a cryptographic hash:
// fingerprints gate a result cache, where a collision is astronomically
// unlikely 64-bit bad luck, not an attack surface.

#include <bit>
#include <cstdint>

namespace mpss {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Folds the eight bytes of `value` (little-endian order) into `state`.
[[nodiscard]] inline std::uint64_t fnv_mix(std::uint64_t state,
                                           std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    state ^= (value >> (8 * byte)) & 0xffu;
    state *= kFnvPrime;
  }
  return state;
}

/// Doubles are folded by bit pattern: fingerprint equality must imply value
/// equality, and bit-identical parameters are the only cheap guarantee.
[[nodiscard]] inline std::uint64_t fnv_mix(std::uint64_t state, double value) {
  return fnv_mix(state, std::bit_cast<std::uint64_t>(value));
}

}  // namespace mpss
