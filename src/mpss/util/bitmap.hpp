#pragma once
// Word-packed bitmaps shared across layers (substrate S46, see DESIGN.md).
//
// ActiveBitmap started life in core/intervals as the offline engines' job-
// activity matrix; the flow kernel's min-cut now returns one too (a single
// row over the node set), so the class lives here where both can reach it
// without core depending on flow or vice versa.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mpss {

/// Dense 2D bit matrix in 64-bit words, rows packed contiguously. The offline
/// engines keep job activity as one ActiveBitmap with a row per atomic
/// interval and a column per job, so the per-round "how many candidates are
/// active in I_j" recount collapses into word-ANDs with the candidate mask
/// plus popcounts. FlowNetwork::min_cut_source_side returns a 1-row bitmap
/// over the node set.
class ActiveBitmap {
 public:
  ActiveBitmap() = default;
  ActiveBitmap(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  /// Words per row (= words_for(cols())); the width masks must have.
  [[nodiscard]] std::size_t row_words() const { return row_words_; }

  void set(std::size_t row, std::size_t col);
  [[nodiscard]] bool test(std::size_t row, std::size_t col) const;

  /// Number of set bits in `row`.
  [[nodiscard]] std::size_t row_popcount(std::size_t row) const;

  /// Number of set bits in `row & mask`; `mask` must hold row_words() words.
  [[nodiscard]] std::size_t row_and_popcount(
      std::size_t row, std::span<const std::uint64_t> mask) const;

  /// Raw word storage of `row` -- lets hot loops use the static mask_* ops
  /// (no per-bit bounds check) and word-granular scans on a row they own.
  [[nodiscard]] std::span<std::uint64_t> row(std::size_t row);
  [[nodiscard]] std::span<const std::uint64_t> row(std::size_t row) const;

  /// Words needed for a `bits`-wide standalone mask (candidate sets).
  [[nodiscard]] static std::size_t words_for(std::size_t bits) {
    return (bits + 63) / 64;
  }
  static void mask_set(std::span<std::uint64_t> mask, std::size_t bit) {
    mask[bit / 64] |= std::uint64_t{1} << (bit % 64);
  }
  static void mask_clear(std::span<std::uint64_t> mask, std::size_t bit) {
    mask[bit / 64] &= ~(std::uint64_t{1} << (bit % 64));
  }
  [[nodiscard]] static bool mask_test(std::span<const std::uint64_t> mask,
                                      std::size_t bit) {
    return (mask[bit / 64] >> (bit % 64)) & 1;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t row_words_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mpss
