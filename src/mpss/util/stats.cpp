#include "mpss/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mpss {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  std::size_t total = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double combined_mean =
      mean_ + delta * static_cast<double>(other.count_) / static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / static_cast<double>(total);
  mean_ = combined_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::min() const {
  if (samples_.empty()) throw std::invalid_argument("SampleSet::min: empty");
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) throw std::invalid_argument("SampleSet::max: empty");
  ensure_sorted();
  return samples_.back();
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) throw std::invalid_argument("SampleSet::quantile: empty");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("SampleSet::quantile: q out of range");
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  double pos = q * static_cast<double>(samples_.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= samples_.size()) return samples_.back();
  double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

}  // namespace mpss
