#include "mpss/util/csv.hpp"

#include <charconv>
#include <ostream>
#include <stdexcept>

namespace mpss {

namespace detail {

std::string csv_escape(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string to_field_string(double value) {
  char buffer[64];
  auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value,
                                 std::chars_format::general, 17);
  if (ec != std::errc{}) return "nan";
  return std::string(buffer, ptr);
}

}  // namespace detail

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << detail::csv_escape(fields[i]);
  }
  *out_ << '\n';
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // a comma implies a (possibly empty) next field
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (!row.empty() || field_started || !field.empty()) end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) throw std::invalid_argument("parse_csv: unterminated quoted field");
  if (!row.empty() || field_started || !field.empty()) end_row();
  return rows;
}

}  // namespace mpss
