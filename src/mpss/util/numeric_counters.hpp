#pragma once
// Thread-local telemetry of the exact-arithmetic substrate (S1/S2).
//
// BigInt and Rational sit under every flow computation of the offline optimal
// algorithm, so their counters cannot afford a mutex (or even an atomic) per
// operation. Each thread accumulates into this plain struct; callers that want
// the numbers in obs::Registry (the solve() facade, the benches) call
// publish_numeric_counters() once per solve, which merges the deltas under the
// canonical counter names and resets the local slots.

#include <cstdint>

namespace mpss {

/// Per-thread counters of the small-value fast path (see bigint.hpp).
struct NumericCounters {
  /// Arithmetic operations served entirely by the inline-int64 representation
  /// (published as "bigint.small_hits").
  std::uint64_t bigint_small_hits = 0;
  /// Small-path overflows that forced promotion to the limb-vector
  /// representation (published as "bigint.promotions").
  std::uint64_t bigint_promotions = 0;
  /// Rational normalizations that ran allocation-free because numerator and
  /// denominator were both small (published as "rational.norm_small").
  std::uint64_t rational_norm_small = 0;
};

/// The calling thread's counters. Constant-initialized: no TLS guard on access.
[[nodiscard]] NumericCounters& numeric_counters() noexcept;

/// Merges the calling thread's counters into obs::Registry::global() under
/// "bigint.small_hits" / "bigint.promotions" / "rational.norm_small" and resets
/// them, so repeated publishes never double-count.
void publish_numeric_counters();

}  // namespace mpss
