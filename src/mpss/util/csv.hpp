#pragma once
// Minimal CSV reading/writing for workload traces and experiment outputs.
// Supports RFC-4180-style quoting for fields containing commas/quotes/newlines.

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mpss {

/// Streams rows to an ostream, quoting fields when necessary.
class CsvWriter {
 public:
  /// The writer does not own the stream; it must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats each argument with operator<< into one row.
  template <typename... Args>
  void row(const Args&... args) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(args));
    (fields.push_back(format_field(args)), ...);
    write_row(fields);
  }

 private:
  template <typename T>
  static std::string format_field(const T& value);

  std::ostream* out_;
};

/// Parses CSV content into rows of fields. Handles quoted fields with embedded
/// commas, escaped quotes ("") and newlines. Throws std::invalid_argument on
/// unterminated quotes.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(std::string_view text);

namespace detail {
std::string csv_escape(std::string_view field);
std::string to_field_string(double value);
}  // namespace detail

template <typename T>
std::string CsvWriter::format_field(const T& value) {
  if constexpr (std::is_same_v<T, std::string>) {
    return value;
  } else if constexpr (std::is_convertible_v<T, std::string_view>) {
    return std::string(std::string_view(value));
  } else if constexpr (std::is_floating_point_v<T>) {
    return detail::to_field_string(static_cast<double>(value));
  } else if constexpr (std::is_integral_v<T>) {
    return std::to_string(value);
  } else {
    // Anything streamable (BigInt, Rational, ...).
    return value.to_string();
  }
}

}  // namespace mpss
