#pragma once
// Dense two-phase tableau simplex LP solver (substrate S4, see DESIGN.md).
//
// Built for the LP baseline of experiment E8 (the paper's intro contrasts its
// combinatorial algorithm against the linear-programming approach of Bingham &
// Greenstreet [6], noting the LP's "complexity is too high for most practical
// applications" -- which E8 measures). Bland's rule guarantees termination; the
// implementation favours clarity over sparse-revised-simplex performance, which is
// exactly the point of the comparison.

#include <cstddef>
#include <string>
#include <vector>

namespace mpss {

namespace obs {
class TraceSink;
}  // namespace obs

/// Row relation in a linear constraint.
enum class Relation { kLessEqual, kEqual, kGreaterEqual };

/// minimize objective . x   subject to  rows, x >= 0.
struct LpProblem {
  std::size_t num_vars = 0;
  std::vector<double> objective;  // size num_vars

  struct Row {
    std::vector<std::pair<std::size_t, double>> coefficients;  // (var, coeff)
    Relation relation = Relation::kLessEqual;
    double rhs = 0.0;
  };
  std::vector<Row> rows;

  /// Appends a constraint; returns its index.
  std::size_t add_row(std::vector<std::pair<std::size_t, double>> coefficients,
                      Relation relation, double rhs);
};

struct LpSolution {
  enum class Status { kOptimal, kInfeasible, kUnbounded };
  Status status = Status::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // primal solution, size num_vars (when optimal)
  std::size_t iterations = 0;  // total pivots across both phases
  /// Pivots whose ratio test was (numerically) zero -- the objective did not
  /// move. Bland's rule guarantees these terminate; telemetry exposes how much
  /// of the pivot budget degeneracy eats.
  std::size_t degenerate_pivots = 0;

  [[nodiscard]] std::string status_name() const;
};

/// Solves the LP. Throws std::invalid_argument on malformed input (objective size
/// mismatch, variable index out of range). With a non-null `trace`, every pivot
/// emits an obs::EventKind::kSimplexPivot event (a=entering column, b=leaving
/// row's basic variable, value=ratio).
[[nodiscard]] LpSolution solve_lp(const LpProblem& problem,
                                  obs::TraceSink* trace = nullptr);

}  // namespace mpss
