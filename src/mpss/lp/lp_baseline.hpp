#pragma once
// LP-based offline baseline (substrate S16; experiments E1 and E8).
//
// Stands in for the Bingham-Greenstreet linear-programming route [6] the paper's
// introduction compares against. Speeds are restricted to a finite grid
// v_1 < ... < v_V; variables t[k][j][v] give the time job k runs at grid speed v
// inside atomic interval I_j:
//
//     minimize   sum P(v) * t[k][j][v]
//     subject to sum_{j,v} v * t[k][j][v]  = w_k          (work completion)
//                sum_v     t[k][j][v]     <= |I_j|        (no self-parallelism)
//                sum_{k,v} t[k][j][v]     <= m * |I_j|    (machine capacity)
//
// Any feasible point converts to a feasible migratory schedule (per-interval
// McNaughton wrap), so the LP optimum is an *upper* bound on OPT; convexity of P
// makes it converge to OPT from above as the grid refines. DESIGN.md documents why
// this substitution preserves the comparison the paper makes.

#include <cstddef>

#include "mpss/core/job.hpp"
#include "mpss/core/power.hpp"
#include "mpss/lp/simplex.hpp"
#include "mpss/obs/stats.hpp"

namespace mpss {

struct LpBaselineResult {
  LpSolution::Status status = LpSolution::Status::kInfeasible;
  double energy = 0.0;        // LP objective (>= OPT energy, -> OPT as grid grows)
  std::size_t variables = 0;  // LP size, reported by experiment E8
  std::size_t constraints = 0;
  std::size_t iterations = 0;  // simplex pivots
  /// Telemetry: simplex pivot counts (total + degenerate), wall time, and the
  /// LP dimensions under "lp.variables" / "lp.constraints".
  obs::SolveStats stats;
};

/// Solves the discretized-speed LP. `grid_size` is the number of speed levels
/// (>= 2); `max_speed_hint`, when positive, overrides the built-in safe upper
/// bound W_total / min_interval_length (pass the known optimal top speed to get a
/// tight grid). Returns kInfeasible only if the grid's top speed is too low, which
/// cannot happen with the built-in bound. With a non-null `trace`, simplex pivots
/// are emitted as trace events.
[[nodiscard]] LpBaselineResult lp_baseline(const Instance& instance,
                                           const PowerFunction& p,
                                           std::size_t grid_size,
                                           double max_speed_hint = 0.0,
                                           obs::TraceSink* trace = nullptr);

}  // namespace mpss
