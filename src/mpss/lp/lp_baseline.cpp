#include "mpss/lp/lp_baseline.hpp"

#include <vector>

#include "mpss/core/intervals.hpp"
#include "mpss/obs/counters.hpp"
#include "mpss/obs/histogram.hpp"
#include "mpss/obs/span.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/error.hpp"

namespace mpss {

LpBaselineResult lp_baseline(const Instance& instance, const PowerFunction& p,
                             std::size_t grid_size, double max_speed_hint,
                             obs::TraceSink* trace) {
  check_arg(grid_size >= 2, "lp_baseline: grid needs at least two speed levels");

  IntervalDecomposition intervals(instance.jobs());
  const std::size_t interval_count = intervals.count();
  LpBaselineResult result;
  // Span before timer: the solve span covers stats.wall_seconds (see optimal.cpp).
  // Declared before the early return below so trivial instances are spanned too.
  obs::SpanScope solve_span(trace, "lp.solve");
  obs::ScopedTimer timer;
  obs::emit(trace, obs::EventKind::kSolveStart, "lp.solve", instance.size(),
            grid_size);
  if (interval_count == 0 || instance.total_work().is_zero()) {
    result.status = LpSolution::Status::kOptimal;
    obs::emit(trace, obs::EventKind::kSolveEnd, "lp.solve");
    result.stats.wall_seconds = timer.elapsed_seconds();
    return result;
  }

  // Safe top speed: the fastest set's speed s_1 = W_1 / P_1 satisfies
  // W_1 <= W_total and P_1 >= min |I_j|.
  double top_speed = max_speed_hint;
  if (top_speed <= 0.0) {
    Q min_length = intervals.length(0);
    for (std::size_t j = 1; j < interval_count; ++j) {
      min_length = min(min_length, intervals.length(j));
    }
    top_speed = (instance.total_work() / min_length).to_double();
  }
  std::vector<double> grid(grid_size);
  for (std::size_t v = 0; v < grid_size; ++v) {
    grid[v] = top_speed * static_cast<double>(v + 1) / static_cast<double>(grid_size);
  }

  // Variable layout: var(k, j, v) for active (job, interval) pairs only.
  struct VarBlock {
    std::size_t job;
    std::size_t interval;
    std::size_t first_var;  // grid_size consecutive variables
  };
  std::vector<VarBlock> blocks;
  LpProblem problem;
  for (std::size_t k = 0; k < instance.size(); ++k) {
    if (instance.job(k).work.is_zero()) continue;
    for (std::size_t j = 0; j < interval_count; ++j) {
      if (!intervals.active(instance.job(k), j)) continue;
      blocks.push_back(VarBlock{k, j, problem.num_vars});
      problem.num_vars += grid_size;
    }
  }
  problem.objective.resize(problem.num_vars);
  for (const VarBlock& block : blocks) {
    for (std::size_t v = 0; v < grid_size; ++v) {
      problem.objective[block.first_var + v] = p.power(grid[v]);
    }
  }

  // Work completion per job (equality).
  for (std::size_t k = 0; k < instance.size(); ++k) {
    if (instance.job(k).work.is_zero()) continue;
    std::vector<std::pair<std::size_t, double>> coefficients;
    for (const VarBlock& block : blocks) {
      if (block.job != k) continue;
      for (std::size_t v = 0; v < grid_size; ++v) {
        coefficients.emplace_back(block.first_var + v, grid[v]);
      }
    }
    problem.add_row(std::move(coefficients), Relation::kEqual,
                    instance.job(k).work.to_double());
  }
  // No self-parallelism: per (job, interval), total time <= |I_j|.
  for (const VarBlock& block : blocks) {
    std::vector<std::pair<std::size_t, double>> coefficients;
    for (std::size_t v = 0; v < grid_size; ++v) {
      coefficients.emplace_back(block.first_var + v, 1.0);
    }
    problem.add_row(std::move(coefficients), Relation::kLessEqual,
                    intervals.length(block.interval).to_double());
  }
  // Machine capacity per interval.
  for (std::size_t j = 0; j < interval_count; ++j) {
    std::vector<std::pair<std::size_t, double>> coefficients;
    for (const VarBlock& block : blocks) {
      if (block.interval != j) continue;
      for (std::size_t v = 0; v < grid_size; ++v) {
        coefficients.emplace_back(block.first_var + v, 1.0);
      }
    }
    if (coefficients.empty()) continue;
    problem.add_row(std::move(coefficients), Relation::kLessEqual,
                    static_cast<double>(instance.machines()) *
                        intervals.length(j).to_double());
  }

  result.variables = problem.num_vars;
  result.constraints = problem.rows.size();
  LpSolution solution = solve_lp(problem, trace);
  result.status = solution.status;
  result.energy = solution.objective;
  result.iterations = solution.iterations;
  result.stats.simplex_pivots = solution.iterations;
  result.stats.simplex_degenerate_pivots = solution.degenerate_pivots;
  result.stats.counters.add("lp.variables", result.variables);
  result.stats.counters.add("lp.constraints", result.constraints);
  result.stats.histograms["lp.pivots_per_solve"].record(solution.iterations);
  obs::emit(trace, obs::EventKind::kSolveEnd, "lp.solve", solution.iterations, 0,
            solution.objective);
  result.stats.wall_seconds = timer.elapsed_seconds();
  return result;
}

}  // namespace mpss
