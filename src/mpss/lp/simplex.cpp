#include "mpss/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mpss/obs/span.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/error.hpp"

namespace mpss {
namespace {

constexpr double kEps = 1e-9;
constexpr double kFeasibilityTolerance = 1e-7;

/// Dense tableau with an explicit basis. Columns: structural variables, then
/// slack/surplus, then artificial; final column is the RHS.
struct Tableau {
  std::size_t rows = 0;
  std::size_t cols = 0;  // variable columns (excluding RHS)
  std::vector<std::vector<double>> a;  // rows x (cols + 1)
  std::vector<std::size_t> basis;      // row -> basic variable

  double& at(std::size_t r, std::size_t c) { return a[r][c]; }
  double& rhs(std::size_t r) { return a[r][cols]; }
};

enum class PhaseOutcome { kOptimal, kUnbounded };

/// Runs simplex with Bland's rule on `t` minimizing `cost` (size t.cols).
/// `reduced` is scratch for the objective row. Returns the outcome; the objective
/// value is recoverable from the basis.
PhaseOutcome run_simplex(Tableau& t, const std::vector<double>& cost,
                         LpSolution* solution, obs::TraceSink* trace) {
  // One span per simplex phase (two per two-phase solve); the kSimplexPivot
  // events below nest under it.
  obs::SpanScope simplex_span(trace, "lp.simplex");
  // Reduced-cost row r_j = c_j - sum_i c_B(i) * a(i, j).
  std::vector<double> reduced(t.cols + 1, 0.0);
  for (std::size_t j = 0; j <= t.cols; ++j) {
    double z = 0.0;
    for (std::size_t i = 0; i < t.rows; ++i) z += cost[t.basis[i]] * t.a[i][j];
    reduced[j] = (j < t.cols ? cost[j] : 0.0) - z;
  }

  for (;;) {
    // Bland: smallest-index entering column with negative reduced cost.
    std::size_t entering = t.cols;
    for (std::size_t j = 0; j < t.cols; ++j) {
      if (reduced[j] < -kEps) {
        entering = j;
        break;
      }
    }
    if (entering == t.cols) return PhaseOutcome::kOptimal;

    // Ratio test; Bland tie-break by smallest basic variable index.
    std::size_t leaving = t.rows;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < t.rows; ++i) {
      if (t.a[i][entering] > kEps) {
        double ratio = t.rhs(i) / t.a[i][entering];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (leaving == t.rows || t.basis[i] < t.basis[leaving]))) {
          best_ratio = ratio;
          leaving = i;
        }
      }
    }
    if (leaving == t.rows) return PhaseOutcome::kUnbounded;

    // Pivot on (leaving, entering).
    ++solution->iterations;
    if (best_ratio <= kEps) ++solution->degenerate_pivots;
    obs::emit(trace, obs::EventKind::kSimplexPivot, "simplex.pivot", entering,
              t.basis[leaving], best_ratio);
    double pivot = t.a[leaving][entering];
    for (std::size_t j = 0; j <= t.cols; ++j) t.a[leaving][j] /= pivot;
    for (std::size_t i = 0; i < t.rows; ++i) {
      if (i == leaving) continue;
      double factor = t.a[i][entering];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t j = 0; j <= t.cols; ++j) {
        t.a[i][j] -= factor * t.a[leaving][j];
      }
    }
    double reduced_factor = reduced[entering];
    for (std::size_t j = 0; j <= t.cols; ++j) {
      reduced[j] -= reduced_factor * t.a[leaving][j];
    }
    t.basis[leaving] = entering;
  }
}

}  // namespace

std::size_t LpProblem::add_row(std::vector<std::pair<std::size_t, double>> coefficients,
                               Relation relation, double rhs) {
  rows.push_back(Row{std::move(coefficients), relation, rhs});
  return rows.size() - 1;
}

std::string LpSolution::status_name() const {
  switch (status) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kUnbounded: return "unbounded";
  }
  return "unknown";
}

LpSolution solve_lp(const LpProblem& problem, obs::TraceSink* trace) {
  check_arg(problem.objective.size() == problem.num_vars,
            "solve_lp: objective size must equal num_vars");
  for (const auto& row : problem.rows) {
    for (const auto& [var, coeff] : row.coefficients) {
      (void)coeff;
      check_arg(var < problem.num_vars, "solve_lp: variable index out of range");
    }
  }

  const std::size_t n = problem.num_vars;
  const std::size_t r = problem.rows.size();

  // Per-row normalized relation (rhs made non-negative first) so auxiliary-column
  // counts are exact before the tableau is allocated.
  std::vector<Relation> normalized(r);
  std::size_t slack_count = 0;
  std::size_t artificial_count = 0;
  for (std::size_t i = 0; i < r; ++i) {
    Relation relation = problem.rows[i].relation;
    if (problem.rows[i].rhs < 0.0) {
      if (relation == Relation::kLessEqual) relation = Relation::kGreaterEqual;
      else if (relation == Relation::kGreaterEqual) relation = Relation::kLessEqual;
    }
    normalized[i] = relation;
    if (relation != Relation::kEqual) ++slack_count;
    if (relation != Relation::kLessEqual) ++artificial_count;
  }

  Tableau t;
  t.rows = r;
  t.cols = n + slack_count + artificial_count;
  t.a.assign(r, std::vector<double>(t.cols + 1, 0.0));
  t.basis.assign(r, 0);

  std::size_t next_slack = n;
  std::size_t next_artificial = n + slack_count;
  std::vector<bool> is_artificial(t.cols, false);

  for (std::size_t i = 0; i < r; ++i) {
    const auto& row = problem.rows[i];
    double sign = row.rhs < 0.0 ? -1.0 : 1.0;  // normalize rhs >= 0
    for (const auto& [var, coeff] : row.coefficients) {
      t.a[i][var] += sign * coeff;
    }
    t.rhs(i) = sign * row.rhs;

    if (normalized[i] == Relation::kLessEqual) {
      t.a[i][next_slack] = 1.0;
      t.basis[i] = next_slack++;  // slack starts basic
      continue;
    }
    if (normalized[i] == Relation::kGreaterEqual) {
      t.a[i][next_slack++] = -1.0;  // surplus
    }
    t.a[i][next_artificial] = 1.0;
    t.basis[i] = next_artificial;
    is_artificial[next_artificial] = true;
    ++next_artificial;
  }

  LpSolution solution;

  // Phase 1: minimize the sum of artificial variables.
  std::vector<double> phase1_cost(t.cols, 0.0);
  for (std::size_t j = 0; j < t.cols; ++j) {
    if (is_artificial[j]) phase1_cost[j] = 1.0;
  }
  if (run_simplex(t, phase1_cost, &solution, trace) == PhaseOutcome::kUnbounded) {
    // Phase 1 objective is bounded below by 0; unbounded means a logic error.
    throw InternalError("solve_lp: phase-1 simplex reported unbounded");
  }
  double infeasibility = 0.0;
  for (std::size_t i = 0; i < t.rows; ++i) {
    if (is_artificial[t.basis[i]]) infeasibility += t.rhs(i);
  }
  if (infeasibility > kFeasibilityTolerance) {
    solution.status = LpSolution::Status::kInfeasible;
    return solution;
  }

  // Drive any remaining (zero-valued) artificial out of the basis, or drop its row.
  for (std::size_t i = 0; i < t.rows; ++i) {
    if (!is_artificial[t.basis[i]]) continue;
    std::size_t pivot_col = t.cols;
    for (std::size_t j = 0; j < t.cols; ++j) {
      if (!is_artificial[j] && std::abs(t.a[i][j]) > kEps) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col == t.cols) {
      // Redundant row: zero it out; it can never pivot again.
      std::fill(t.a[i].begin(), t.a[i].end(), 0.0);
      continue;
    }
    double pivot = t.a[i][pivot_col];
    for (std::size_t j = 0; j <= t.cols; ++j) t.a[i][j] /= pivot;
    for (std::size_t k = 0; k < t.rows; ++k) {
      if (k == i) continue;
      double factor = t.a[k][pivot_col];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t j = 0; j <= t.cols; ++j) t.a[k][j] -= factor * t.a[i][j];
    }
    t.basis[i] = pivot_col;
  }

  // Phase 2: original objective; artificial columns get a prohibitive cost of 0 but
  // are excluded by never letting them re-enter (their reduced costs stay >= 0
  // because we zero their columns).
  for (std::size_t j = 0; j < t.cols; ++j) {
    if (is_artificial[j]) {
      for (std::size_t i = 0; i < t.rows; ++i) t.a[i][j] = 0.0;
    }
  }
  std::vector<double> phase2_cost(t.cols, 0.0);
  for (std::size_t j = 0; j < n; ++j) phase2_cost[j] = problem.objective[j];
  if (run_simplex(t, phase2_cost, &solution, trace) == PhaseOutcome::kUnbounded) {
    solution.status = LpSolution::Status::kUnbounded;
    return solution;
  }

  solution.status = LpSolution::Status::kOptimal;
  solution.values.assign(n, 0.0);
  for (std::size_t i = 0; i < t.rows; ++i) {
    if (t.basis[i] < n) solution.values[t.basis[i]] = t.rhs(i);
  }
  solution.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    solution.objective += problem.objective[j] * solution.values[j];
  }
  return solution;
}

}  // namespace mpss
