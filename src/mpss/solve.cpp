#include "mpss/solve.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "mpss/lp/lp_baseline.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/util/numeric_counters.hpp"

namespace mpss {
namespace {

/// Resolves the power function for one solve; precedence, highest first:
/// an explicit SolveOptions::power override, then the instance's PowerSpec.
/// `owned` keeps a spec instantiation alive for the call.
const PowerFunction& effective_power(const Instance& instance,
                                     const SolveOptions& options,
                                     std::unique_ptr<PowerFunction>& owned) {
  static const AlphaPower kCube(3.0);
  if (options.power != nullptr) return *options.power;
  if (instance.power().is_default()) return kCube;  // no allocation on the default
  owned = instance.power().instantiate();
  return *owned;
}

/// The one place sink precedence is decided (documented on SolveOptions::trace):
/// facade knob > process-wide Registry default. Engines get the resolved sink
/// explicitly, so their own fallback never runs on this path.
obs::TraceSink* resolve_trace_sink(const SolveOptions& options) {
  if (options.trace != nullptr) return options.trace;
  return obs::Registry::global().sink();
}

SolveResult run_engine(const Instance& instance, const SolveOptions& options) {
  std::unique_ptr<PowerFunction> owned_power;
  const PowerFunction& p = effective_power(instance, options, owned_power);
  obs::TraceSink* sink = resolve_trace_sink(options);
  SolveResult result;

  // Catch a token that fired before dispatch (queue wait, cancelled batch), so
  // even the engines without internal checkpoints (OA, AVR, LP) honour it.
  poll_cancellation(options.cancel);

  switch (options.engine) {
    case Engine::kExact: {
      OptimalOptions exact = options.exact;
      exact.cancel = options.cancel;
      OptimalResult r = optimal_schedule(instance, exact, sink);
      result.energy = r.schedule.energy(p);
      result.stats = std::move(r.stats);
      result.schedule = std::move(r.schedule);
      return result;
    }
    case Engine::kFast: {
      FastOptimalOptions fast;
      fast.epsilon = options.fast_epsilon;
      fast.incremental = options.fast_incremental;
      fast.cancel = options.cancel;
      FastOptimalResult r = optimal_schedule_fast(instance, fast, sink);
      result.energy = r.schedule.energy(p);
      result.stats = std::move(r.stats);
      result.schedule = std::move(r.schedule);
      return result;
    }
    case Engine::kOa: {
      OnlineRunResult r = oa_schedule(instance, sink);
      result.energy = r.schedule.energy(p);
      result.stats = std::move(r.stats);
      result.schedule = std::move(r.schedule);
      return result;
    }
    case Engine::kAvr: {
      AvrResult r = avr_schedule(instance, options.avr, sink);
      result.energy = r.schedule.energy(p);
      result.stats = std::move(r.stats);
      result.schedule = std::move(r.schedule);
      return result;
    }
    case Engine::kLp: {
      LpBaselineResult r = lp_baseline(instance, p, options.lp_grid,
                                       options.lp_max_speed_hint, sink);
      result.stats = std::move(r.stats);
      switch (r.status) {
        case LpSolution::Status::kOptimal:
          result.energy = r.energy;
          break;
        case LpSolution::Status::kInfeasible:
          result.status = SolveStatus::kInfeasible;
          result.error_detail = "lp_baseline: speed grid too low for the instance";
          break;
        case LpSolution::Status::kUnbounded:
          result.status = SolveStatus::kUnbounded;
          result.error_detail = "lp_baseline: LP reported unbounded";
          break;
      }
      return result;
    }
  }
  throw std::invalid_argument("solve: unknown engine");
}

}  // namespace

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kExact: return "exact";
    case Engine::kFast: return "fast";
    case Engine::kOa: return "oa";
    case Engine::kAvr: return "avr";
    case Engine::kLp: return "lp";
  }
  return "unknown";
}

std::optional<Engine> engine_from_name(std::string_view name) {
  if (name == "exact" || name == "opt") return Engine::kExact;
  if (name == "fast") return Engine::kFast;
  if (name == "oa") return Engine::kOa;
  if (name == "avr") return Engine::kAvr;
  if (name == "lp") return Engine::kLp;
  return std::nullopt;
}

const char* solve_status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOk: return "ok";
    case SolveStatus::kInvalidInstance: return "invalid_instance";
    case SolveStatus::kInvalidOptions: return "invalid_options";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kCancelled: return "cancelled";
    case SolveStatus::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

std::optional<SolveStatus> solve_status_from_name(std::string_view name) {
  if (name == "ok") return SolveStatus::kOk;
  if (name == "invalid_instance") return SolveStatus::kInvalidInstance;
  if (name == "invalid_options") return SolveStatus::kInvalidOptions;
  if (name == "infeasible") return SolveStatus::kInfeasible;
  if (name == "unbounded") return SolveStatus::kUnbounded;
  if (name == "cancelled") return SolveStatus::kCancelled;
  if (name == "deadline_exceeded") return SolveStatus::kDeadlineExceeded;
  return std::nullopt;
}

std::optional<std::string> SolveOptions::validate() const {
  if (lp_grid < 2) {
    return "SolveOptions: lp_grid must be >= 2 (got " + std::to_string(lp_grid) +
           ")";
  }
  if (!(fast_epsilon > 0.0)) {
    return "SolveOptions: fast_epsilon must be positive (got " +
           std::to_string(fast_epsilon) + ")";
  }
  if (lp_max_speed_hint < 0.0) {
    return "SolveOptions: lp_max_speed_hint must be >= 0 (got " +
           std::to_string(lp_max_speed_hint) + ")";
  }
  return std::nullopt;
}

std::size_t SolveResult::violations(const Instance& instance,
                                    double fast_tolerance) const {
  if (const Schedule* exact = exact_schedule())
    return count_violations(instance, *exact);
  if (const FastSchedule* fast = fast_schedule())
    return count_fast_violations(instance, *fast, fast_tolerance);
  return 0;
}

SolveResult solve(const Instance& instance, const SolveOptions& options) {
  // Delta the numeric-substrate counters across the engine run so each result
  // reports how well the BigInt small path served this solve, then publish the
  // same deltas process-wide.
  const NumericCounters before = numeric_counters();
  auto finish = [&](SolveResult result) {
    const NumericCounters& after = numeric_counters();
    std::uint64_t small_hits = after.bigint_small_hits - before.bigint_small_hits;
    std::uint64_t promotions = after.bigint_promotions - before.bigint_promotions;
    std::uint64_t norm_small = after.rational_norm_small - before.rational_norm_small;
    if (small_hits != 0) result.stats.counters.add("bigint.small_hits", small_hits);
    if (promotions != 0) result.stats.counters.add("bigint.promotions", promotions);
    if (norm_small != 0) result.stats.counters.add("rational.norm_small", norm_small);
    publish_numeric_counters();
    // Publish the warm-start telemetry of the offline engines process-wide,
    // mirroring the numeric counters above (process dashboards read Registry).
    for (const auto& [name, value] : result.stats.counters.items()) {
      if (value != 0 && name.starts_with("flow.")) {
        obs::Registry::global().add(name, value);
      }
    }
    // Same treatment for the per-solve distributions: fold them into the
    // Registry's global histograms so dashboards see cross-solve aggregates.
    for (const auto& [name, data] : result.stats.histograms) {
      if (data.count != 0) obs::Registry::global().histogram(name).merge(data);
    }
    return result;
  };
  if (std::optional<std::string> problem = options.validate()) {
    SolveResult result;
    result.status = SolveStatus::kInvalidOptions;
    result.error_detail = std::move(*problem);
    return finish(std::move(result));
  }
  try {
    return finish(run_engine(instance, options));
  } catch (const CancelledError& error) {
    // A fired CancelToken is an expected outcome (deadline pressure, a batch
    // torn down early), not an input mistake -- it gets its own status pair.
    SolveResult result;
    result.status = error.deadline_exceeded() ? SolveStatus::kDeadlineExceeded
                                              : SolveStatus::kCancelled;
    result.error_detail = error.what();
    return finish(std::move(result));
  } catch (const std::invalid_argument& error) {
    // Caller errors (check_arg across the engines) become a status; an
    // InternalError stays an exception -- it marks a library bug.
    SolveResult result;
    result.status = SolveStatus::kInvalidInstance;
    result.error_detail = error.what();
    return finish(std::move(result));
  }
}

SolveResult solve(std::vector<Job> jobs, std::size_t machines,
                  const SolveOptions& options) {
  try {
    return solve(Instance(std::move(jobs), machines), options);
  } catch (const std::invalid_argument& error) {
    // The Instance constructor's validation, converted to the facade's status
    // convention (the Instance overload never sees an invalid instance).
    SolveResult result;
    result.status = SolveStatus::kInvalidInstance;
    result.error_detail = error.what();
    return result;
  }
}

}  // namespace mpss
