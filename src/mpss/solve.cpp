#include "mpss/solve.hpp"

#include <stdexcept>
#include <utility>

#include "mpss/lp/lp_baseline.hpp"
#include "mpss/online/oa.hpp"

namespace mpss {
namespace {

const PowerFunction& effective_power(const SolveOptions& options) {
  static const AlphaPower kCube(3.0);
  return options.power != nullptr ? *options.power : kCube;
}

SolveResult run_engine(const Instance& instance, const SolveOptions& options) {
  const PowerFunction& p = effective_power(options);
  SolveResult result;

  switch (options.engine) {
    case Engine::kExact: {
      OptimalOptions exact = options.exact;
      if (options.trace != nullptr) exact.trace = options.trace;
      OptimalResult r = optimal_schedule(instance, exact);
      result.energy = r.schedule.energy(p);
      result.stats = std::move(r.stats);
      result.schedule = std::move(r.schedule);
      return result;
    }
    case Engine::kFast: {
      FastOptimalResult r =
          optimal_schedule_fast(instance, options.fast_epsilon, options.trace);
      result.energy = r.schedule.energy(p);
      result.stats = std::move(r.stats);
      result.schedule = std::move(r.schedule);
      return result;
    }
    case Engine::kOa: {
      OnlineRunResult r = oa_schedule(instance, options.trace);
      result.energy = r.schedule.energy(p);
      result.stats = std::move(r.stats);
      result.schedule = std::move(r.schedule);
      return result;
    }
    case Engine::kAvr: {
      AvrOptions avr = options.avr;
      if (options.trace != nullptr) avr.trace = options.trace;
      AvrResult r = avr_schedule(instance, avr);
      result.energy = r.schedule.energy(p);
      result.stats = std::move(r.stats);
      result.schedule = std::move(r.schedule);
      return result;
    }
    case Engine::kLp: {
      LpBaselineResult r = lp_baseline(instance, p, options.lp_grid,
                                       options.lp_max_speed_hint, options.trace);
      result.stats = std::move(r.stats);
      switch (r.status) {
        case LpSolution::Status::kOptimal:
          result.energy = r.energy;
          break;
        case LpSolution::Status::kInfeasible:
          result.status = SolveStatus::kInfeasible;
          result.message = "lp_baseline: speed grid too low for the instance";
          break;
        case LpSolution::Status::kUnbounded:
          result.status = SolveStatus::kUnbounded;
          result.message = "lp_baseline: LP reported unbounded";
          break;
      }
      return result;
    }
  }
  throw std::invalid_argument("solve: unknown engine");
}

}  // namespace

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kExact: return "exact";
    case Engine::kFast: return "fast";
    case Engine::kOa: return "oa";
    case Engine::kAvr: return "avr";
    case Engine::kLp: return "lp";
  }
  return "unknown";
}

const char* solve_status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOk: return "ok";
    case SolveStatus::kInvalidInstance: return "invalid_instance";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
  }
  return "unknown";
}

SolveResult solve(const Instance& instance, const SolveOptions& options) {
  try {
    return run_engine(instance, options);
  } catch (const std::invalid_argument& error) {
    // Caller errors (check_arg across the engines) become a status; an
    // InternalError stays an exception -- it marks a library bug.
    SolveResult result;
    result.status = SolveStatus::kInvalidInstance;
    result.message = error.what();
    return result;
  }
}

}  // namespace mpss
