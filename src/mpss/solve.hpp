#pragma once
// Unified solve() facade (S41, see DESIGN.md): one entry point over every
// scheduling engine the library implements.
//
// The per-engine free functions (optimal_schedule, optimal_schedule_fast,
// oa_schedule, avr_schedule, lp_baseline) remain the primary API for callers
// that want an engine's full result type. The facade serves callers that treat
// the engine as a knob -- the CLI tools, the benches, and comparative
// experiments -- and gives them a common result shape: a status code instead of
// an exception for predictable input errors, one energy number, the schedule
// (exact or double-precision, whichever the engine produces), and the engine's
// obs::SolveStats telemetry.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "mpss/core/job.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/core/optimal_fast.hpp"
#include "mpss/core/power.hpp"
#include "mpss/core/schedule.hpp"
#include "mpss/obs/stats.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/util/cancel.hpp"

namespace mpss {

/// The scheduling engines reachable through solve().
enum class Engine {
  kExact,  // optimal_schedule: the paper's combinatorial algorithm, exact Q
  kFast,   // optimal_schedule_fast: same structure over doubles
  kOa,     // oa_schedule: Optimal Available, re-planning at every arrival
  kAvr,    // avr_schedule: Average Rate (needs integral release/deadlines)
  kLp,     // lp_baseline: discretized-speed LP upper bound
};

/// Stable lowercase name ("exact", "fast", "oa", "avr", "lp") for CLI flags and
/// table headers.
[[nodiscard]] const char* engine_name(Engine engine);

/// Inverse of engine_name: the one engine-flag parser for CLI tools, examples,
/// and benches. Round-trips every Engine (engine_from_name(engine_name(e)) ==
/// e) and additionally accepts the historical CLI alias "opt" for the exact
/// engine. Unknown names yield nullopt -- the caller owns the error message.
[[nodiscard]] std::optional<Engine> engine_from_name(std::string_view name);

/// How a solve() call ended. Predictable input problems come back as statuses;
/// exceptions are reserved for InternalError (broken invariants -- a bug, not
/// an input).
enum class SolveStatus {
  kOk,
  kInvalidInstance,   // engine rejected the input (e.g. AVR on fractional times)
  kInvalidOptions,    // SolveOptions::validate() rejected the knobs
  kInfeasible,        // LP grid's top speed too low for the instance
  kUnbounded,         // LP reported unbounded (cannot happen on valid input)
  kCancelled,         // a CancelToken's request_cancel() fired mid-solve
  kDeadlineExceeded,  // a CancelToken's soft deadline passed mid-solve
};

/// Stable lowercase name ("ok", "invalid_instance", "invalid_options",
/// "infeasible", "unbounded", "cancelled", "deadline_exceeded").
[[nodiscard]] const char* solve_status_name(SolveStatus status);

/// Inverse of solve_status_name (exact names only); nullopt for unknown names.
[[nodiscard]] std::optional<SolveStatus> solve_status_from_name(
    std::string_view name);

/// Knobs of solve(). Default-constructed options run the exact engine with the
/// library defaults and P(s) = s^3.
struct SolveOptions {
  Engine engine = Engine::kExact;

  /// Power function used to measure the returned energy (and to drive the LP
  /// objective). Null means "use the instance's PowerSpec" (whose default is
  /// P(s) = s^3); a non-null pointer overrides the spec -- the escape hatch
  /// for arbitrary callables the serializable spec cannot express. Not owned;
  /// must outlive the call.
  const PowerFunction* power = nullptr;

  /// Exact engine (also the planner inside OA).
  OptimalOptions exact;

  /// Fast engine: relative tolerance of the flow-saturation tests.
  double fast_epsilon = 1e-9;
  /// Fast engine: warm-started incremental phase rounds (the exact engine's
  /// knob lives on `exact.incremental`).
  bool fast_incremental = true;

  /// AVR engine.
  AvrOptions avr;

  /// LP engine: number of speed levels (>= 2) and optional top-speed override.
  std::size_t lp_grid = 8;
  double lp_max_speed_hint = 0.0;

  /// THE trace-sink knob. solve() is the single place that resolves which sink
  /// an engine sees; precedence, highest first:
  ///
  ///   1. this field,
  ///   2. the process-wide default attached to obs::Registry::global().
  ///
  /// The facade resolves the chain eagerly and hands every engine an explicit
  /// sink, so the engines' own Registry fallback never triggers on this path.
  /// Not owned; must outlive the call.
  obs::TraceSink* trace = nullptr;

  /// Cooperative cancellation / soft deadline, polled before dispatch and (for
  /// the offline engines) at phase and round boundaries. A fired token turns
  /// into SolveStatus::kCancelled / kDeadlineExceeded, never an exception.
  /// Not owned; must outlive the call. BatchSolver populates this per request.
  const CancelToken* cancel = nullptr;

  /// Checks the knobs that have constrained domains (`lp_grid >= 2`,
  /// `fast_epsilon > 0`, `lp_max_speed_hint >= 0`). Returns the first
  /// violation's message, or nullopt when the options are usable. solve()
  /// calls this up front and reports failures as kInvalidOptions.
  [[nodiscard]] std::optional<std::string> validate() const;
};

/// Common result shape of every engine.
struct SolveResult {
  SolveStatus status = SolveStatus::kOk;
  /// Human-readable reason, set uniformly whenever status != kOk (the
  /// rejecting check's message, the engine's invalid-instance explanation, the
  /// LP's infeasibility note, ...). Empty exactly when ok(). The wire protocol
  /// forwards it verbatim in its error payload.
  std::string error_detail;

  /// Energy of the produced schedule under the options' power function
  /// (the LP engine reports its objective). 0 when status != kOk.
  double energy = 0.0;

  /// The schedule, when the engine produces one: exact engines yield Schedule,
  /// the fast engine yields FastSchedule, the LP engine yields no schedule
  /// (it is an energy bound). Monostate also on failure.
  std::variant<std::monostate, Schedule, FastSchedule> schedule;

  /// The engine's telemetry (fields the engine does not exercise stay 0).
  obs::SolveStats stats;

  [[nodiscard]] bool ok() const { return status == SolveStatus::kOk; }

  /// The exact schedule, or null if this result does not hold one.
  [[nodiscard]] const Schedule* exact_schedule() const {
    return std::get_if<Schedule>(&schedule);
  }
  /// The double-precision schedule, or null if this result does not hold one.
  [[nodiscard]] const FastSchedule* fast_schedule() const {
    return std::get_if<FastSchedule>(&schedule);
  }

  /// Feasibility violations of whichever schedule variant this result holds:
  /// count_violations (exact check) for Schedule, count_fast_violations with
  /// `fast_tolerance` for FastSchedule, and 0 when there is no schedule (the
  /// LP engine, or a failed solve). Saves callers the std::variant visitation.
  [[nodiscard]] std::size_t violations(const Instance& instance,
                                       double fast_tolerance = 1e-7) const;
};

/// Runs the selected engine on `instance`. Never throws on predictable input
/// problems (those come back as statuses); InternalError still propagates.
[[nodiscard]] SolveResult solve(const Instance& instance,
                                const SolveOptions& options = SolveOptions{});

/// Thin delegating wrapper over the Instance form, for callers holding loose
/// (jobs, machines) pairs. Instance validation failures (machines == 0, a job
/// with release >= deadline) come back as kInvalidInstance instead of the
/// constructor's exception, matching the facade's no-throw contract.
[[nodiscard]] SolveResult solve(std::vector<Job> jobs, std::size_t machines,
                                const SolveOptions& options = SolveOptions{});

}  // namespace mpss
