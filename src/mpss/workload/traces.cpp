#include "mpss/workload/traces.hpp"

#include <fstream>
#include <sstream>

#include "mpss/core/instance_json.hpp"
#include "mpss/util/csv.hpp"
#include "mpss/util/error.hpp"

namespace mpss {
namespace {

bool has_json_suffix(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
}

}  // namespace

void write_instance_csv(const Instance& instance, std::ostream& out) {
  CsvWriter writer(out);
  writer.row(std::string("machines"), instance.machines());
  writer.row(std::string("release"), std::string("deadline"), std::string("work"));
  for (const Job& job : instance.jobs()) {
    writer.row(job.release, job.deadline, job.work);
  }
}

std::string instance_to_csv(const Instance& instance) {
  std::ostringstream os;
  write_instance_csv(instance, os);
  return os.str();
}

Instance instance_from_csv(const std::string& text) {
  auto rows = parse_csv(text);
  check_arg(rows.size() >= 2, "instance_from_csv: need machines row and header");
  check_arg(rows[0].size() == 2 && rows[0][0] == "machines",
            "instance_from_csv: first row must be 'machines,<m>'");
  auto machines = static_cast<std::size_t>(std::stoull(rows[0][1]));
  check_arg(rows[1].size() == 3 && rows[1][0] == "release",
            "instance_from_csv: second row must be the job header");

  std::vector<Job> jobs;
  jobs.reserve(rows.size() - 2);
  for (std::size_t i = 2; i < rows.size(); ++i) {
    check_arg(rows[i].size() == 3, "instance_from_csv: job rows need 3 fields");
    jobs.push_back(Job{Q::from_string(rows[i][0]), Q::from_string(rows[i][1]),
                       Q::from_string(rows[i][2])});
  }
  return Instance(std::move(jobs), machines);
}

void save_instance(const Instance& instance, const std::string& path) {
  if (has_json_suffix(path)) {
    save_instance_json(instance, path);
    return;
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_instance: cannot open " + path);
  write_instance_csv(instance, out);
  if (!out) throw std::runtime_error("save_instance: write failed for " + path);
}

Instance load_instance(const std::string& path) {
  if (has_json_suffix(path)) return load_instance_json(path);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_instance: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return instance_from_csv(buffer.str());
}

void save_instance_json(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_instance_json: cannot open " + path);
  out << instance_to_json(instance) << "\n";
  if (!out) throw std::runtime_error("save_instance_json: write failed for " + path);
}

Instance load_instance_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_instance_json: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return instance_from_json(buffer.str());
}

void write_schedule_csv(const Schedule& schedule, std::ostream& out) {
  CsvWriter writer(out);
  writer.row(std::string("machines"), schedule.machines());
  writer.row(std::string("machine"), std::string("start"), std::string("end"),
             std::string("speed"), std::string("job"));
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    for (const Slice& slice : schedule.machine(machine)) {
      writer.row(machine, slice.start, slice.end, slice.speed, slice.job);
    }
  }
}

std::string schedule_to_csv(const Schedule& schedule) {
  std::ostringstream os;
  write_schedule_csv(schedule, os);
  return os.str();
}

Schedule schedule_from_csv(const std::string& text) {
  auto rows = parse_csv(text);
  check_arg(rows.size() >= 2, "schedule_from_csv: need machines row and header");
  check_arg(rows[0].size() == 2 && rows[0][0] == "machines",
            "schedule_from_csv: first row must be 'machines,<m>'");
  auto machines = static_cast<std::size_t>(std::stoull(rows[0][1]));
  check_arg(rows[1].size() == 5 && rows[1][0] == "machine",
            "schedule_from_csv: second row must be the slice header");
  Schedule schedule(machines);
  for (std::size_t i = 2; i < rows.size(); ++i) {
    check_arg(rows[i].size() == 5, "schedule_from_csv: slice rows need 5 fields");
    auto machine = static_cast<std::size_t>(std::stoull(rows[i][0]));
    schedule.add(machine, Slice{Q::from_string(rows[i][1]), Q::from_string(rows[i][2]),
                                Q::from_string(rows[i][3]),
                                static_cast<std::size_t>(std::stoull(rows[i][4]))});
  }
  return schedule;
}

void save_schedule(const Schedule& schedule, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_schedule: cannot open " + path);
  write_schedule_csv(schedule, out);
  if (!out) throw std::runtime_error("save_schedule: write failed for " + path);
}

Schedule load_schedule(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_schedule: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return schedule_from_csv(buffer.str());
}

}  // namespace mpss
