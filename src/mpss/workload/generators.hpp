#pragma once
// Workload generators (substrate S17). All generators produce integral release
// times and deadlines (so AVR(m) applies directly) and integral works; all are
// deterministic functions of their parameters and the seed.

#include <cstddef>
#include <cstdint>

#include "mpss/core/job.hpp"

namespace mpss {

/// Uniform random jobs: release ~ U{0..horizon-1}, window ~ U{1..max_window}
/// (clamped to the horizon), work ~ U{1..max_work}.
struct UniformWorkload {
  std::size_t jobs = 20;
  std::size_t machines = 4;
  std::int64_t horizon = 50;
  std::int64_t max_window = 20;
  std::int64_t max_work = 10;
};
[[nodiscard]] Instance generate_uniform(const UniformWorkload& config,
                                        std::uint64_t seed);

/// Bursty arrivals: `bursts` release points; each burst releases a batch of jobs
/// with short windows -- the regime where multi-processor parallelism matters most.
struct BurstyWorkload {
  std::size_t bursts = 4;
  std::size_t jobs_per_burst = 6;
  std::size_t machines = 4;
  std::int64_t horizon = 60;
  std::int64_t burst_window = 6;  // max deadline slack within a burst
  std::int64_t max_work = 8;
};
[[nodiscard]] Instance generate_bursty(const BurstyWorkload& config,
                                       std::uint64_t seed);

/// Laminar (nested) windows: windows form a hierarchy [0, horizon) at depth 0,
/// halves at depth 1, etc.; jobs pick a random node. Exercises deeply layered
/// phase structure in the offline algorithm.
struct LaminarWorkload {
  std::size_t jobs = 20;
  std::size_t machines = 4;
  std::size_t depth = 4;  // horizon = 2^depth
  std::int64_t max_work = 10;
};
[[nodiscard]] Instance generate_laminar(const LaminarWorkload& config,
                                        std::uint64_t seed);

/// Agreeable deadlines: later release implies later (or equal) deadline.
struct AgreeableWorkload {
  std::size_t jobs = 20;
  std::size_t machines = 4;
  std::int64_t horizon = 50;
  std::int64_t min_window = 2;
  std::int64_t max_window = 12;
  std::int64_t max_work = 10;
};
[[nodiscard]] Instance generate_agreeable(const AgreeableWorkload& config,
                                          std::uint64_t seed);

/// Periodic task system: `tasks` task types, each with a period from `periods`
/// drawn at random, releasing one job per period with deadline = next period.
struct PeriodicWorkload {
  std::size_t tasks = 5;
  std::size_t machines = 4;
  std::int64_t hyperperiods = 2;
  std::int64_t max_work = 6;
};
[[nodiscard]] Instance generate_periodic(const PeriodicWorkload& config,
                                         std::uint64_t seed);

/// Heavy-tailed works (discretized bounded Pareto): most jobs are small, a few
/// are giants -- the shape of batch-cluster traces. Windows scale with work so
/// giants stay schedulable without dwarfing the rest of the instance.
struct HeavyTailWorkload {
  std::size_t jobs = 20;
  std::size_t machines = 4;
  std::int64_t horizon = 60;
  double shape = 1.5;          // Pareto tail exponent (smaller = heavier)
  std::int64_t max_work = 64;  // truncation cap
};
[[nodiscard]] Instance generate_heavy_tail(const HeavyTailWorkload& config,
                                           std::uint64_t seed);

/// Surprise mix -- the regime that hurts OA (experiment E2): roughly half the jobs
/// are relaxed (deadline at the horizon, so OA spreads them thin), the other half
/// arrive later with tight windows, forcing OA to re-plan at high speed on work it
/// already committed to doing slowly. A clairvoyant optimum pre-accelerates.
struct SurpriseWorkload {
  std::size_t jobs = 12;
  std::size_t machines = 2;
  std::int64_t horizon = 20;
  std::int64_t max_work = 6;
  std::int64_t urgent_window = 3;  // max window of the urgent half
};
[[nodiscard]] Instance generate_surprise(const SurpriseWorkload& config,
                                         std::uint64_t seed);

/// The expiring-stack adversary for AVR (experiment E6): n unit-work jobs released
/// at 0, 1, ..., n-1, all with deadline n. Active densities pile up as the common
/// deadline nears, forcing AVR's speed toward the harmonic sum while the optimum
/// runs flat.
[[nodiscard]] Instance generate_avr_adversary(std::size_t jobs, std::size_t machines);

/// Fully parallel batch: slots * machines identical unit jobs in `slots`
/// consecutive unit windows (each window holds exactly `machines` jobs). The
/// optimum is trivially known: every machine runs at speed `work` everywhere --
/// used as a closed-form oracle in tests.
[[nodiscard]] Instance generate_parallel_batch(std::size_t slots, std::size_t machines,
                                               std::int64_t work);

}  // namespace mpss
