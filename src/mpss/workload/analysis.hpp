#pragma once
// Instance analysis: the structural quantities the algorithms' behaviour depends
// on (density profile, peak parallelism demand, maximum intensity). Experiment
// harnesses print these next to results so tables are interpretable; tests use
// them to characterize generator output.

#include <cstddef>
#include <string>

#include "mpss/core/job.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

struct InstanceProfile {
  std::size_t jobs = 0;
  std::size_t machines = 0;
  Q total_work;
  Q horizon;  // horizon_end - horizon_start

  /// Peak number of simultaneously active jobs over the horizon (the most
  /// processors any schedule could ever use at once).
  std::size_t peak_parallelism = 0;

  /// Maximum over atomic intervals of the total active density -- the speed
  /// AVR(1) would reach; AVR(m) tops out at max(peak density / m, max job density).
  Q peak_density;

  /// Maximum intensity over windows [t, t'] (YDS's g for the first critical
  /// interval): a lower bound on the top speed of any single-processor schedule.
  Q max_intensity;

  /// Average utilization: total work / (machines * horizon).
  Q average_load;

  [[nodiscard]] std::string to_string() const;
};

/// Computes the profile (O(n^2) over atomic intervals / window pairs).
[[nodiscard]] InstanceProfile analyze(const Instance& instance);

}  // namespace mpss
