#pragma once
// Instance and schedule transformations with exact covariance laws (S37).
//
// The scheduling problem has three symmetries, and the optimal solution
// transforms covariantly under each -- which the property tests assert exactly:
//
//   time shift  t -> t + c  : schedules shift; every speed and energy unchanged.
//   time scale  t -> c * t  : speeds scale by 1/c; under P(s) = s^alpha the
//                             optimal energy scales by c^(1 - alpha).
//   work scale  w -> c * w  : speeds scale by c; energy scales by c^alpha.
//
// Besides test leverage, these are practical: rescaling a trace to integral
// times for AVR, or normalizing horizons before cross-workload comparisons.

#include "mpss/core/job.hpp"
#include "mpss/core/schedule.hpp"

namespace mpss {

/// All times shifted by `offset` (any sign, as long as the result is valid).
[[nodiscard]] Instance shift_time(const Instance& instance, const Q& offset);

/// All times multiplied by `factor` (> 0). Works are unchanged, so densities
/// and optimal speeds scale by 1/factor.
[[nodiscard]] Instance scale_time(const Instance& instance, const Q& factor);

/// All works multiplied by `factor` (>= 0).
[[nodiscard]] Instance scale_work(const Instance& instance, const Q& factor);

/// The same transformations applied to schedules (so a transformed schedule can
/// be checked against a transformed instance).
[[nodiscard]] Schedule shift_time(const Schedule& schedule, const Q& offset);
[[nodiscard]] Schedule scale_time(const Schedule& schedule, const Q& factor);
[[nodiscard]] Schedule scale_work(const Schedule& schedule, const Q& factor);

}  // namespace mpss
