#include "mpss/workload/transform.hpp"

#include "mpss/util/error.hpp"

namespace mpss {

Instance shift_time(const Instance& instance, const Q& offset) {
  std::vector<Job> jobs;
  jobs.reserve(instance.size());
  for (const Job& job : instance.jobs()) {
    jobs.push_back(Job{job.release + offset, job.deadline + offset, job.work});
  }
  return Instance(std::move(jobs), instance.machines());
}

Instance scale_time(const Instance& instance, const Q& factor) {
  check_arg(factor.sign() > 0, "scale_time: factor must be positive");
  std::vector<Job> jobs;
  jobs.reserve(instance.size());
  for (const Job& job : instance.jobs()) {
    jobs.push_back(Job{job.release * factor, job.deadline * factor, job.work});
  }
  return Instance(std::move(jobs), instance.machines());
}

Instance scale_work(const Instance& instance, const Q& factor) {
  check_arg(factor.sign() >= 0, "scale_work: factor must be non-negative");
  std::vector<Job> jobs;
  jobs.reserve(instance.size());
  for (const Job& job : instance.jobs()) {
    jobs.push_back(Job{job.release, job.deadline, job.work * factor});
  }
  return Instance(std::move(jobs), instance.machines());
}

Schedule shift_time(const Schedule& schedule, const Q& offset) {
  Schedule out(schedule.machines());
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    for (const Slice& slice : schedule.machine(machine)) {
      out.add(machine,
              Slice{slice.start + offset, slice.end + offset, slice.speed, slice.job});
    }
  }
  return out;
}

Schedule scale_time(const Schedule& schedule, const Q& factor) {
  check_arg(factor.sign() > 0, "scale_time: factor must be positive");
  Schedule out(schedule.machines());
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    for (const Slice& slice : schedule.machine(machine)) {
      // Same work over a stretched window: speed divides by the factor.
      out.add(machine, Slice{slice.start * factor, slice.end * factor,
                             slice.speed / factor, slice.job});
    }
  }
  return out;
}

Schedule scale_work(const Schedule& schedule, const Q& factor) {
  check_arg(factor.sign() > 0,
            "scale_work(schedule): factor must be positive (zero would erase slices)");
  Schedule out(schedule.machines());
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    for (const Slice& slice : schedule.machine(machine)) {
      out.add(machine,
              Slice{slice.start, slice.end, slice.speed * factor, slice.job});
    }
  }
  return out;
}

}  // namespace mpss
