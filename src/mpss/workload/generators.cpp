#include "mpss/workload/generators.hpp"

#include <algorithm>
#include <cmath>

#include "mpss/util/error.hpp"
#include "mpss/util/random.hpp"

namespace mpss {

Instance generate_uniform(const UniformWorkload& config, std::uint64_t seed) {
  check_arg(config.horizon >= 2 && config.max_window >= 1 && config.max_work >= 1,
            "generate_uniform: degenerate configuration");
  Xoshiro256 rng(seed);
  std::vector<Job> jobs;
  jobs.reserve(config.jobs);
  for (std::size_t i = 0; i < config.jobs; ++i) {
    std::int64_t release = rng.uniform_int(0, config.horizon - 1);
    std::int64_t window =
        rng.uniform_int(1, std::min(config.max_window, config.horizon - release));
    std::int64_t work = rng.uniform_int(1, config.max_work);
    jobs.push_back(Job{Q(release), Q(release + window), Q(work)});
  }
  return Instance(std::move(jobs), config.machines);
}

Instance generate_bursty(const BurstyWorkload& config, std::uint64_t seed) {
  check_arg(config.bursts >= 1 && config.horizon >= 2,
            "generate_bursty: degenerate configuration");
  Xoshiro256 rng(seed);
  std::vector<Job> jobs;
  jobs.reserve(config.bursts * config.jobs_per_burst);
  for (std::size_t b = 0; b < config.bursts; ++b) {
    // Burst release points spread over the horizon, jittered.
    std::int64_t base = static_cast<std::int64_t>(b) * config.horizon /
                        static_cast<std::int64_t>(config.bursts);
    std::int64_t release = std::min(base + rng.uniform_int(0, 2), config.horizon - 2);
    for (std::size_t i = 0; i < config.jobs_per_burst; ++i) {
      std::int64_t slack =
          rng.uniform_int(1, std::min(config.burst_window, config.horizon - release));
      std::int64_t work = rng.uniform_int(1, config.max_work);
      jobs.push_back(Job{Q(release), Q(release + slack), Q(work)});
    }
  }
  return Instance(std::move(jobs), config.machines);
}

Instance generate_laminar(const LaminarWorkload& config, std::uint64_t seed) {
  check_arg(config.depth >= 1 && config.depth <= 20,
            "generate_laminar: depth out of range");
  Xoshiro256 rng(seed);
  const std::int64_t horizon = std::int64_t{1} << config.depth;
  std::vector<Job> jobs;
  jobs.reserve(config.jobs);
  for (std::size_t i = 0; i < config.jobs; ++i) {
    auto level = static_cast<std::size_t>(rng.below(config.depth + 1));
    std::int64_t width = horizon >> level;
    std::int64_t position = rng.uniform_int(0, (horizon / width) - 1);
    std::int64_t work = rng.uniform_int(1, config.max_work);
    jobs.push_back(Job{Q(position * width), Q((position + 1) * width), Q(work)});
  }
  return Instance(std::move(jobs), config.machines);
}

Instance generate_agreeable(const AgreeableWorkload& config, std::uint64_t seed) {
  check_arg(config.min_window >= 1 && config.min_window <= config.max_window,
            "generate_agreeable: bad window range");
  Xoshiro256 rng(seed);
  std::vector<std::int64_t> releases;
  releases.reserve(config.jobs);
  for (std::size_t i = 0; i < config.jobs; ++i) {
    releases.push_back(rng.uniform_int(0, config.horizon - 1));
  }
  std::sort(releases.begin(), releases.end());
  std::vector<Job> jobs;
  jobs.reserve(config.jobs);
  std::int64_t last_deadline = 0;
  for (std::size_t i = 0; i < config.jobs; ++i) {
    std::int64_t window = rng.uniform_int(config.min_window, config.max_window);
    // Force agreeability: deadlines non-decreasing in release order.
    std::int64_t deadline = std::max(releases[i] + window, last_deadline);
    last_deadline = deadline;
    std::int64_t work = rng.uniform_int(1, config.max_work);
    jobs.push_back(Job{Q(releases[i]), Q(deadline), Q(work)});
  }
  return Instance(std::move(jobs), config.machines);
}

Instance generate_periodic(const PeriodicWorkload& config, std::uint64_t seed) {
  check_arg(config.tasks >= 1 && config.hyperperiods >= 1,
            "generate_periodic: degenerate configuration");
  Xoshiro256 rng(seed);
  static constexpr std::int64_t kPeriods[] = {2, 3, 4, 6, 12};  // lcm = 12
  static constexpr std::int64_t kHyper = 12;
  std::vector<Job> jobs;
  for (std::size_t task = 0; task < config.tasks; ++task) {
    std::int64_t period = kPeriods[rng.below(std::size(kPeriods))];
    std::int64_t work = rng.uniform_int(1, config.max_work);
    for (std::int64_t release = 0; release < kHyper * config.hyperperiods;
         release += period) {
      jobs.push_back(Job{Q(release), Q(release + period), Q(work)});
    }
  }
  return Instance(std::move(jobs), config.machines);
}

Instance generate_heavy_tail(const HeavyTailWorkload& config, std::uint64_t seed) {
  check_arg(config.horizon >= 4 && config.max_work >= 2 && config.shape > 0.0,
            "generate_heavy_tail: degenerate configuration");
  Xoshiro256 rng(seed);
  std::vector<Job> jobs;
  jobs.reserve(config.jobs);
  for (std::size_t i = 0; i < config.jobs; ++i) {
    // Bounded Pareto via inverse transform, then floored to an integer >= 1.
    double u = rng.uniform01();
    double pareto = std::pow(1.0 - u, -1.0 / config.shape);
    auto work = static_cast<std::int64_t>(pareto);
    work = std::max<std::int64_t>(1, std::min(work, config.max_work));
    // Window at least proportional to the work's share of the horizon so giants
    // remain schedulable at sane speeds.
    std::int64_t min_window =
        std::max<std::int64_t>(1, std::min(work / 2, config.horizon / 2));
    std::int64_t release = rng.uniform_int(0, config.horizon - min_window - 1);
    std::int64_t window =
        rng.uniform_int(min_window, std::min(config.horizon - release,
                                             min_window + config.horizon / 3));
    jobs.push_back(Job{Q(release), Q(release + window), Q(work)});
  }
  return Instance(std::move(jobs), config.machines);
}

Instance generate_surprise(const SurpriseWorkload& config, std::uint64_t seed) {
  check_arg(config.horizon >= 4 && config.max_work >= 1 && config.urgent_window >= 1,
            "generate_surprise: degenerate configuration");
  Xoshiro256 rng(seed);
  std::vector<Job> jobs;
  jobs.reserve(config.jobs);
  for (std::size_t i = 0; i < config.jobs; ++i) {
    std::int64_t work = rng.uniform_int(1, config.max_work);
    if (i % 2 == 0) {
      // Relaxed: released early, due at the horizon.
      std::int64_t release = rng.uniform_int(0, config.horizon / 2);
      jobs.push_back(Job{Q(release), Q(config.horizon), Q(work)});
    } else {
      // Urgent: arrives anywhere, tight window.
      std::int64_t release = rng.uniform_int(1, config.horizon - 2);
      std::int64_t window = rng.uniform_int(
          1, std::min(config.urgent_window, config.horizon - release));
      jobs.push_back(Job{Q(release), Q(release + window), Q(work)});
    }
  }
  return Instance(std::move(jobs), config.machines);
}

Instance generate_avr_adversary(std::size_t jobs, std::size_t machines) {
  check_arg(jobs >= 1, "generate_avr_adversary: need at least one job");
  std::vector<Job> out;
  out.reserve(jobs);
  const auto n = static_cast<std::int64_t>(jobs);
  for (std::int64_t i = 0; i < n; ++i) {
    out.push_back(Job{Q(i), Q(n), Q(1)});
  }
  return Instance(std::move(out), machines);
}

Instance generate_parallel_batch(std::size_t slots, std::size_t machines,
                                 std::int64_t work) {
  check_arg(slots >= 1 && work >= 1, "generate_parallel_batch: degenerate configuration");
  std::vector<Job> jobs;
  jobs.reserve(slots * machines);
  for (std::size_t slot = 0; slot < slots; ++slot) {
    for (std::size_t machine = 0; machine < machines; ++machine) {
      jobs.push_back(Job{Q(static_cast<std::int64_t>(slot)),
                         Q(static_cast<std::int64_t>(slot + 1)), Q(work)});
    }
  }
  return Instance(std::move(jobs), machines);
}

}  // namespace mpss
