#pragma once
// CSV trace import/export for problem instances (substrate S17).
//
// Format: first row "machines,<m>", then a header "release,deadline,work", then
// one row per job. Times and works are exact rationals serialized as "a" or "a/b",
// so a round-trip is lossless.

#include <iosfwd>
#include <string>

#include "mpss/core/job.hpp"
#include "mpss/core/schedule.hpp"

namespace mpss {

/// Serializes `instance` as CSV.
void write_instance_csv(const Instance& instance, std::ostream& out);
[[nodiscard]] std::string instance_to_csv(const Instance& instance);

/// Parses an instance from CSV text. Throws std::invalid_argument on malformed
/// content (missing machines row, wrong column count, bad rationals).
[[nodiscard]] Instance instance_from_csv(const std::string& text);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
/// save_instance/load_instance pick the format from the path suffix: ".json"
/// uses the canonical JSON codec (core/instance_json.hpp -- the same one the
/// wire protocol and make_corpus use), anything else the CSV form above.
void save_instance(const Instance& instance, const std::string& path);
[[nodiscard]] Instance load_instance(const std::string& path);

/// Explicit-format JSON file wrappers over the canonical codec.
void save_instance_json(const Instance& instance, const std::string& path);
[[nodiscard]] Instance load_instance_json(const std::string& path);

/// Schedule serialization. Format: "machines,<m>", then a header
/// "machine,start,end,speed,job", then one row per slice (exact rationals) --
/// lossless round-trip, so verified schedules can be archived next to the traces
/// that produced them.
void write_schedule_csv(const Schedule& schedule, std::ostream& out);
[[nodiscard]] std::string schedule_to_csv(const Schedule& schedule);
[[nodiscard]] Schedule schedule_from_csv(const std::string& text);
void save_schedule(const Schedule& schedule, const std::string& path);
[[nodiscard]] Schedule load_schedule(const std::string& path);

}  // namespace mpss
