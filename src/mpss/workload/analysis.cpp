#include "mpss/workload/analysis.hpp"

#include <algorithm>
#include <sstream>

#include "mpss/core/intervals.hpp"

namespace mpss {

std::string InstanceProfile::to_string() const {
  std::ostringstream os;
  os << "jobs=" << jobs << " machines=" << machines << " W=" << total_work
     << " horizon=" << horizon << " peak_par=" << peak_parallelism
     << " peak_density=" << peak_density << " max_intensity=" << max_intensity
     << " avg_load=" << average_load;
  return os.str();
}

InstanceProfile analyze(const Instance& instance) {
  InstanceProfile profile;
  profile.jobs = instance.size();
  profile.machines = instance.machines();
  profile.total_work = instance.total_work();
  profile.horizon = instance.horizon_end() - instance.horizon_start();

  IntervalDecomposition intervals(instance.jobs());
  for (std::size_t j = 0; j < intervals.count(); ++j) {
    std::size_t active = 0;
    Q density;
    for (const Job& job : instance.jobs()) {
      if (job.work.sign() > 0 && intervals.active(job, j)) {
        ++active;
        density += job.density();
      }
    }
    profile.peak_parallelism = std::max(profile.peak_parallelism, active);
    profile.peak_density = max(profile.peak_density, density);
  }

  // Max intensity over all window pairs (like YDS's first critical interval).
  const auto& points = intervals.points();
  for (std::size_t a = 0; a < points.size(); ++a) {
    for (std::size_t b = a + 1; b < points.size(); ++b) {
      Q contained;
      for (const Job& job : instance.jobs()) {
        if (points[a] <= job.release && job.deadline <= points[b]) {
          contained += job.work;
        }
      }
      if (contained.sign() > 0) {
        profile.max_intensity =
            max(profile.max_intensity, contained / (points[b] - points[a]));
      }
    }
  }

  if (profile.horizon.sign() > 0) {
    profile.average_load = profile.total_work /
                           (profile.horizon * Q(static_cast<std::int64_t>(
                                                  instance.machines())));
  }
  return profile;
}

}  // namespace mpss
