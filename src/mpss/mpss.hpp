#pragma once
// Umbrella header: the full public API of the mpss library.
//
// mpss reproduces "On multi-processor speed scaling with migration"
// (Albers, Antoniadis, Greiner; SPAA 2011 / JCSS 2015):
//   * optimal_schedule()  -- the paper's combinatorial offline algorithm (Sec. 2),
//   * oa_schedule()       -- Optimal Available for m processors (Sec. 3.1),
//   * avr_schedule()      -- Average Rate for m processors (Sec. 3.2),
//   * solve()             -- one facade over all engines, with telemetry,
//   * BatchSolver         -- concurrent batch service over solve() (caching,
//                            deadlines, priorities; service/batch_solver.hpp),
//   * SolveServer/Client  -- the TCP solve daemon and its blocking client
//                            (framed JSON protocol; net/server.hpp),
// plus every substrate they stand on (exact rationals, max-flow, YDS, LP baseline,
// non-migratory baselines, workload generators). See README.md for a tour.

#include "mpss/core/gantt.hpp"
#include "mpss/core/instance_json.hpp"
#include "mpss/core/intervals.hpp"
#include "mpss/core/job.hpp"
#include "mpss/core/lower_bounds.hpp"
#include "mpss/core/mcnaughton.hpp"
#include "mpss/core/metrics.hpp"
#include "mpss/core/normalize.hpp"
#include "mpss/core/optimal.hpp"
#include "mpss/core/optimal_fast.hpp"
#include "mpss/core/power.hpp"
#include "mpss/core/profile.hpp"
#include "mpss/core/schedule.hpp"
#include "mpss/core/yds.hpp"
#include "mpss/ext/bounded_speed.hpp"
#include "mpss/ext/capacity.hpp"
#include "mpss/ext/discrete_speeds.hpp"
#include "mpss/ext/sleep.hpp"
#include "mpss/flow/dinic.hpp"
#include "mpss/flow/push_relabel.hpp"
#include "mpss/lp/lp_baseline.hpp"
#include "mpss/lp/simplex.hpp"
#include "mpss/net/client.hpp"
#include "mpss/net/framing.hpp"
#include "mpss/net/protocol.hpp"
#include "mpss/net/server.hpp"
#include "mpss/nomig/nonmigratory.hpp"
#include "mpss/obs/counters.hpp"
#include "mpss/obs/histogram.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/obs/ring_sink.hpp"
#include "mpss/obs/span.hpp"
#include "mpss/obs/stats.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/online/adversary_search.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/bkp.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/online/potential.hpp"
#include "mpss/online/simulator.hpp"
#include "mpss/service/batch_solver.hpp"
#include "mpss/service/fingerprint.hpp"
#include "mpss/sim/executor.hpp"
#include "mpss/solve.hpp"
#include "mpss/util/cancel.hpp"
#include "mpss/util/cli.hpp"
#include "mpss/util/csv.hpp"
#include "mpss/util/error.hpp"
#include "mpss/util/json.hpp"
#include "mpss/util/numeric_counters.hpp"
#include "mpss/util/random.hpp"
#include "mpss/util/rational.hpp"
#include "mpss/util/stats.hpp"
#include "mpss/util/table.hpp"
#include "mpss/util/thread_pool.hpp"
#include "mpss/workload/analysis.hpp"
#include "mpss/workload/generators.hpp"
#include "mpss/workload/traces.hpp"
#include "mpss/workload/transform.hpp"
