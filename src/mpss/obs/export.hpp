#pragma once
// Prometheus text exposition of the observability registry (S47, see
// DESIGN.md).
//
// render_prometheus() turns a Counters bag and a HistogramMap -- or, in the
// zero-argument form, a snapshot of obs::Registry::global() -- into the
// Prometheus text exposition format (version 0.0.4):
//
//   # HELP mpss_net_requests_total mpss counter net.requests
//   # TYPE mpss_net_requests_total counter
//   mpss_net_requests_total 42
//   # HELP mpss_net_request_us mpss histogram net.request_us
//   # TYPE mpss_net_request_us histogram
//   mpss_net_request_us_bucket{le="1"} 0
//   mpss_net_request_us_bucket{le="3"} 2
//   ...
//   mpss_net_request_us_bucket{le="+Inf"} 17
//   mpss_net_request_us_sum 12345
//   mpss_net_request_us_count 17
//
// Naming rules (pinned by tests/test_export.cpp):
//   * every metric is prefixed "mpss_";
//   * dotted registry names are sanitized -- any character outside
//     [a-zA-Z0-9_:] becomes '_' ("net.request_us" -> "net_request_us");
//   * counters get the "_total" suffix (they are monotonic by construction:
//     Registry counters only ever grow, and reset() is a test-only affair);
//   * histograms expose the log2 buckets as cumulative le= buckets (upper
//     bounds from HistogramData::bucket_upper, capped by one "+Inf" bucket)
//     plus the exact _sum and _count.
//
// The output is served live by the daemon's "metrics" verb and the
// mpss_served --metrics-port HTTP listener (net/metrics_http.hpp), and
// reconstructed offline from a JSONL trace by mpss_trace --prom.

#include <string>
#include <string_view>

#include "mpss/obs/counters.hpp"
#include "mpss/obs/histogram.hpp"

namespace mpss::obs {

/// `name` sanitized into a valid Prometheus metric name: characters outside
/// [a-zA-Z0-9_:] become '_', and a leading digit gets a '_' prefix. Does NOT
/// add the "mpss_" prefix (render_prometheus does).
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// `value` escaped for use inside a label value's double quotes: backslash,
/// double quote and newline get their two-character escapes, per the
/// exposition format.
[[nodiscard]] std::string prometheus_escape(std::string_view value);

/// Renders counters and histograms in the exposition format described above.
/// Deterministic: both inputs iterate in name order. Empty inputs render to
/// the empty string (a valid exposition document).
[[nodiscard]] std::string render_prometheus(const Counters& counters,
                                            const HistogramMap& histograms,
                                            std::string_view prefix = "mpss_");

/// Renders a snapshot of obs::Registry::global().
[[nodiscard]] std::string render_prometheus();

}  // namespace mpss::obs
