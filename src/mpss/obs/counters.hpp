#pragma once
// Counter and timer primitives of the observability subsystem (S40, see
// DESIGN.md).
//
// `Counters` is a small named-counter bag used by the solver engines to expose
// how much work they did (flow rounds, pivots, removals, ...) without committing
// to a fixed schema; `ScopedTimer` is the matching RAII wall-clock accumulator.
// Neither is thread-safe on its own -- concurrent paths keep a per-thread
// instance and merge into obs::Registry (registry.hpp), mirroring how
// RunningStats handles parallel sweeps.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace mpss::obs {

/// Named monotonic counters. Lookup of a missing name yields 0, so readers never
/// have to guess which counters an engine happened to bump.
class Counters {
 public:
  using Map = std::map<std::string, std::uint64_t, std::less<>>;

  /// Adds `delta` to counter `name` (creating it at 0 first).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Sets counter `name` to `value` (gauges: LP sizes, interval counts, ...).
  void set(std::string_view name, std::uint64_t value);

  /// Current value of `name`; 0 when the counter was never touched.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }

  /// Adds every counter of `other` into this one.
  void merge(const Counters& other);

  void clear() { items_.clear(); }

  /// All counters in name order (stable for table output and tests).
  [[nodiscard]] const Map& items() const { return items_; }

 private:
  Map items_;
};

/// RAII wall-clock timer. On destruction it adds the elapsed time either to a
/// plain seconds accumulator or to a Counters pair "<name>.ns" / "<name>.calls"
/// (integral nanoseconds keep Counters uniform). Coarse-grained by design: time
/// whole solves and phases, not inner loops.
class ScopedTimer {
 public:
  /// Free-standing stopwatch: accumulates nowhere; read via elapsed_seconds().
  /// The engines use this (rather than the accumulator form) to stamp a result
  /// field right before returning it -- binding the destructor to the result
  /// would make the recorded value depend on whether NRVO fired.
  ScopedTimer();

  /// Accumulates elapsed seconds into `seconds` on destruction.
  explicit ScopedTimer(double& seconds);

  /// Bumps `counters["<name>.ns"]` by the elapsed nanoseconds and
  /// `counters["<name>.calls"]` by 1 on destruction.
  ScopedTimer(Counters& counters, std::string name);

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer();

  /// Seconds elapsed since construction (without stopping the timer).
  [[nodiscard]] double elapsed_seconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
  double* seconds_ = nullptr;
  Counters* counters_ = nullptr;
  std::string name_;
};

}  // namespace mpss::obs
