#pragma once
// Hierarchical spans of the observability subsystem (S43, see DESIGN.md).
//
// A span is a named, timed region of a solve (solve -> phase -> round -> ...).
// SpanScope is the RAII handle: construction emits a kSpanBegin event, the
// destructor a kSpanEnd carrying the measured duration. Parenthood is tracked
// through a thread-local stack of open spans, so nesting falls out of scoping
// with no plumbing: the innermost open span's id is stamped into *every*
// TraceEvent emitted on the thread (TraceEvent::span), which is what lets
// tools/mpss_trace --report attribute time per phase/round and --chrome
// reconstruct a Chrome/Perfetto timeline from a flat JSONL stream.
//
// Cost model (the S43 overhead budget): with no sink attached anywhere a
// SpanScope is one pointer test in the constructor and one branch in the
// destructor -- no clock read, no id allocation, no string copy. With a sink,
// a span costs two events plus two steady-clock reads; spans mark units of
// work that are at least a max-flow computation, so this is noise. Unlike
// plain events, span events carry a real timestamp even in builds without
// -DMPSS_TRACING (the clock is read anyway for the duration).

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "mpss/obs/trace.hpp"

namespace mpss::obs {

/// Process-unique span identifier (obs::Registry allocates them; 0 = no span).
using SpanId = std::uint64_t;

/// Id of the innermost span open on the calling thread, 0 when none. This is
/// what obs::emit() stamps into TraceEvent::span.
[[nodiscard]] SpanId current_span();

/// The distributed-tracing context of the calling thread. A context carries a
/// process-crossing trace id plus the span a *root* span on this thread should
/// parent under -- either a span of this process on another thread
/// (local_parent: how a BatchSolver worker's service.request span nests under
/// the reader thread's net.request span) or a span of a peer process
/// (remote_parent: how the server's net.request span nests under the client's
/// client.solve span; recorded as TraceEvent::remote_parent and resolved by
/// mpss_trace's multi-file merge). Non-root spans ignore both parent fields --
/// the thread-local stack already knows their parent.
struct TraceContext {
  std::uint64_t trace_id = 0;
  SpanId local_parent = 0;
  SpanId remote_parent = 0;
};

/// The context active on the calling thread (all-zero when none).
[[nodiscard]] TraceContext current_trace();

/// RAII installer: makes `context` the calling thread's trace context for the
/// scope's lifetime and restores the previous one on exit. The trace id is
/// stamped into every TraceEvent emitted on the thread while installed.
///
/// A context carrying a parent (local or remote) RE-ROOTS the scope: the
/// thread's open-span stack is stashed and cleared, so the next span opened
/// inside the scope is a root that adopts the context's parent -- not a child
/// of whatever wrapper span the surrounding thread had open (a BatchSolver
/// worker runs inside the thread pool's long-lived "pool.task" span, which
/// must not capture request-scoped work that logically belongs to the
/// submitter's net.request span). A parentless context leaves the stack alone.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext context);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
  SpanId saved_span_ = 0;
  bool stashed_ = false;
};

/// Small dense index (0, 1, 2, ...) identifying the calling thread in trace
/// exports -- stable for the thread's lifetime, unlike std::thread::id compact
/// enough for a Chrome-trace "tid" field.
[[nodiscard]] std::uint64_t thread_index();

/// RAII span. `sink == nullptr` falls back to the process-wide sink attached
/// to obs::Registry::global(); if that is also absent the scope is inactive
/// and costs one branch. Spans must be strictly nested per thread (automatic
/// when they live on the stack).
class SpanScope {
 public:
  SpanScope(TraceSink* sink, std::string_view label);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// False when no sink was reachable at construction (nothing is emitted).
  [[nodiscard]] bool active() const { return id_ != 0; }
  /// This span's id; 0 when inactive.
  [[nodiscard]] SpanId id() const { return id_; }
  /// Seconds since construction (0 when inactive).
  [[nodiscard]] double elapsed_seconds() const;

 private:
  TraceSink* sink_ = nullptr;
  SpanId id_ = 0;
  SpanId parent_ = 0;          // stamped into begin/end events (b field)
  SpanId restore_ = 0;         // previous thread-local top, restored on exit
  SpanId remote_parent_ = 0;   // peer-process parent adopted from the context
  std::uint64_t trace_ = 0;    // trace id adopted from the context
  std::string label_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace mpss::obs
