#include "mpss/obs/trace.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "mpss/obs/registry.hpp"
#include "mpss/obs/span.hpp"
#include "mpss/util/error.hpp"

namespace mpss::obs {
namespace {

constexpr const char* kKindNames[] = {
    "solve_start", "solve_end",     "phase_start", "phase_end",    "flow_round",
    "candidate_removed", "simplex_pivot", "arrival", "peel", "counter",
    "span_begin", "span_end",
};
constexpr std::size_t kKindCount = sizeof(kKindNames) / sizeof(kKindNames[0]);

/// Round-trippable double formatting for the JSON payloads.
std::string format_double(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

/// Labels are dotted identifiers by convention, but a sink must not emit
/// broken JSON for any input: quotes/backslashes and the common control
/// characters get short escapes, remaining control characters \u00XX, and
/// multi-byte UTF-8 passes through untouched.
void append_json_string(std::string& out, std::string_view text) {
  static constexpr char kHex[] = "0123456789abcdef";
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Flat one-line JSON object scanner: extracts string and number fields. Only
/// the subset to_jsonl() produces is understood, which is all the parser
/// promises.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : text_(line) {}

  TraceEvent parse() {
    TraceEvent event;
    skip_space();
    expect('{');
    skip_space();
    if (peek() == '}') {
      ++pos_;
      return event;
    }
    for (;;) {
      std::string key = parse_string();
      skip_space();
      expect(':');
      skip_space();
      if (peek() == '"') {
        std::string value = parse_string();
        if (key == "kind") {
          event.kind = event_kind_from_name(value);
        } else if (key == "label") {
          event.label = std::move(value);
        }  // unknown string keys ignored
      } else {
        // Integer fields go through an exact u64 parse: trace ids use the full
        // 64-bit range, which a double round trip would silently truncate.
        std::string_view token = number_token();
        if (key == "a") {
          event.a = to_u64(token);
        } else if (key == "b") {
          event.b = to_u64(token);
        } else if (key == "seq") {
          event.seq = to_u64(token);
        } else if (key == "span") {
          event.span = to_u64(token);
        } else if (key == "trace") {
          event.trace = to_u64(token);
        } else if (key == "rparent") {
          event.remote_parent = to_u64(token);
        } else if (key == "value") {
          event.value = to_double(token);
        } else if (key == "t") {
          event.t_seconds = to_double(token);
        }  // unknown numeric keys ignored
      }
      skip_space();
      if (peek() == ',') {
        ++pos_;
        skip_space();
        continue;
      }
      expect('}');
      return event;
    }
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument(std::string("parse_trace_jsonl: ") + what + ": " +
                                std::string(text_));
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void expect(char c) {
    if (peek() != c) fail("malformed line");
    ++pos_;
  }
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': out += parse_unicode_escape(); break;
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    expect('"');
    return out;
  }
  /// Decodes the 4 hex digits after "\u" into UTF-8 (BMP code points; the
  /// encoder only produces \u00XX, but accepting the full range is free).
  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }
  /// The raw token of the next JSON number (validated lazily by to_u64 /
  /// to_double, which know the target type's exact grammar).
  std::string_view number_token() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return text_.substr(start, pos_ - start);
  }
  double to_double(std::string_view token) const {
    double value = 0.0;
    auto result = std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec != std::errc{}) fail("bad number");
    return value;
  }
  std::uint64_t to_u64(std::string_view token) const {
    std::uint64_t value = 0;
    auto result = std::from_chars(token.data(), token.data() + token.size(), value);
    if (result.ec == std::errc{} && result.ptr == token.data() + token.size()) {
      return value;
    }
    // Hand-edited traces may write integral fields as 1e3 or 2.0; accept them
    // with double precision rather than rejecting the line.
    return static_cast<std::uint64_t>(to_double(token));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* event_kind_name(EventKind kind) {
  auto index = static_cast<std::size_t>(kind);
  check_internal(index < kKindCount, "event_kind_name: unknown EventKind");
  return kKindNames[index];
}

EventKind event_kind_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kKindCount; ++i) {
    if (name == kKindNames[i]) return static_cast<EventKind>(i);
  }
  throw std::invalid_argument("event_kind_from_name: unknown kind '" +
                              std::string(name) + "'");
}

void MemorySink::record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::vector<TraceEvent> MemorySink::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t MemorySink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::size_t MemorySink::count(EventKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const TraceEvent& e) { return e.kind == kind; }));
}

std::size_t MemorySink::count_label(std::string_view label) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [label](const TraceEvent& e) { return e.label == label; }));
}

void MemorySink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

JsonlSink::JsonlSink(std::ostream& out) : out_(&out) {}

JsonlSink::JsonlSink(const std::string& path) : file_(path), out_(&file_) {
  check_arg(static_cast<bool>(file_), "JsonlSink: cannot open trace file");
}

JsonlSink::~JsonlSink() {
  // Destructors must not throw; the best-effort flush still completes the
  // trace on every non-failing stream. Callers that need failures surfaced
  // call flush() explicitly.
  std::lock_guard<std::mutex> lock(mutex_);
  out_->flush();
}

void JsonlSink::record(const TraceEvent& event) {
  std::string line = to_jsonl(event);
  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  out_->flush();
  if (out_->bad() || out_->fail()) {
    throw std::runtime_error(
        "JsonlSink: trace stream write failed (events were lost)");
  }
}

bool JsonlSink::ok() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !(out_->bad() || out_->fail());
}

std::string json_quoted(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  append_json_string(out, text);
  return out;
}

std::string to_jsonl(const TraceEvent& event) {
  std::string out = "{\"seq\":" + std::to_string(event.seq) + ",\"kind\":\"" +
                    event_kind_name(event.kind) + "\",\"label\":";
  append_json_string(out, event.label);
  out += ",\"a\":" + std::to_string(event.a);
  out += ",\"b\":" + std::to_string(event.b);
  out += ",\"span\":" + std::to_string(event.span);
  out += ",\"value\":" + format_double(event.value);
  out += ",\"t\":" + format_double(event.t_seconds);
  // Emitted only when set: untraced output stays byte-identical to the
  // pre-distributed-tracing encoding (differential tests pin those bytes).
  if (event.trace != 0) out += ",\"trace\":" + std::to_string(event.trace);
  if (event.remote_parent != 0) {
    out += ",\"rparent\":" + std::to_string(event.remote_parent);
  }
  out += '}';
  return out;
}

std::vector<TraceEvent> parse_trace_jsonl(std::string_view text) {
  std::vector<TraceEvent> events;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    bool blank = line.find_first_not_of(" \t\r") == std::string_view::npos;
    if (!blank) events.push_back(LineParser(line).parse());
    if (end == text.size()) break;
    start = end + 1;
  }
  return events;
}

std::vector<TraceEvent> parse_trace_jsonl(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  return parse_trace_jsonl(std::string_view(text));
}

void emit(TraceSink* sink, EventKind kind, std::string_view label, std::uint64_t a,
          std::uint64_t b, double value) {
  if (sink == nullptr) sink = Registry::global().sink();
  if (sink == nullptr) return;
  TraceEvent event;
  event.kind = kind;
  event.label = std::string(label);
  event.a = a;
  event.b = b;
  event.value = value;
  event.seq = Registry::global().next_seq();
  event.span = current_span();  // nests the event under the innermost open span
  event.trace = current_trace().trace_id;
  if constexpr (kTimestampedTracing) {
    event.t_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
            .count();
  }
  sink->record(event);
}

}  // namespace mpss::obs
