#pragma once
// Log-bucketed histograms of the observability subsystem (S43, see DESIGN.md).
//
// Two flavours over the same fixed bucket layout:
//   * HistogramData -- a plain, copyable value record. Engines keep one per
//     tracked distribution (flow-round duration, rounds per phase, ...) and
//     fold it into SolveStats::histograms once per solve, mirroring how
//     Counters are handled. Not thread-safe; single-owner by design.
//   * Histogram -- the lock-free atomic counterpart living in obs::Registry.
//     Concurrent paths (ThreadPool workers, the executor) record() into it
//     without any lock; record() is a relaxed fetch_add per bucket plus CAS
//     loops for min/max.
//
// Buckets are powers of two: bucket 0 holds the value 0, bucket i >= 1 holds
// [2^(i-1), 2^i). 65 buckets cover the full uint64 range, so record() never
// clips and the layout never needs configuring -- the right trade for latency
// (microseconds) and work counts (rounds, pivots), where relative resolution
// is what matters.

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace mpss::obs {

/// Number of log2 buckets: value 0 plus one bucket per bit width 1..64.
inline constexpr std::size_t kHistogramBuckets = 65;

/// Plain (non-atomic) histogram value: fixed log2 buckets plus count/sum and
/// exact min/max. Copyable and mergeable; the unit carried is up to the
/// recorder (the engines use microseconds for durations, raw counts otherwise).
struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // exact; 0 when empty
  std::uint64_t max = 0;

  /// Bucket index of `value`: 0 for 0, else bit_width (1..64).
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t value) {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  /// Smallest value landing in bucket `i` (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  /// Largest value landing in bucket `i`.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(std::size_t i) {
    if (i == 0) return 0;
    if (i == kHistogramBuckets - 1) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  void record(std::uint64_t value);
  void merge(const HistogramData& other);
  void clear() { *this = HistogramData{}; }

  [[nodiscard]] bool empty() const { return count == 0; }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Approximate quantile (q in [0, 1]) by linear interpolation inside the
  /// containing bucket, clamped to the exact min/max. Monotone in q.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  friend bool operator==(const HistogramData&, const HistogramData&) = default;
};

/// Lock-free atomic histogram with the same layout. record() is wait-free on
/// the bucket/count/sum path (relaxed fetch_add) plus bounded CAS retries for
/// min/max. snapshot() is statistically consistent, not an atomic cut: counts
/// recorded concurrently may be partially visible, which is fine for telemetry.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value);
  /// Adds a whole HistogramData (the per-solve fold into the Registry).
  void merge(const HistogramData& data);
  [[nodiscard]] HistogramData snapshot() const;
  /// Zeroes in place. References handed out by Registry::histogram() stay
  /// valid across reset (entries are never deallocated).
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

/// The standard latency summary derived from the log2 buckets: interpolated
/// p50/p90/p99 (see HistogramData::quantile). One definition shared by the
/// daemon's stats verb, the Prometheus renderer consumers, and mpss_trace's
/// tables, so every surface reports identical numbers for the same data.
struct Percentiles {
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
};

[[nodiscard]] Percentiles percentiles(const HistogramData& data);

/// Named histogram bag used by SolveStats (ordered for stable table output).
using HistogramMap = std::map<std::string, HistogramData, std::less<>>;

/// Field-wise merge of every named histogram of `other` into `into`.
void merge_histograms(HistogramMap& into, const HistogramMap& other);

/// RAII: records the scope's elapsed wall time, in integral microseconds, into
/// a HistogramData on destruction. The engines wrap one flow round / one plan
/// call with this -- coarse units of work where two clock reads are noise.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(HistogramData& histogram)
      : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;
  ~ScopedHistogramTimer() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
  }

 private:
  HistogramData* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mpss::obs
