#pragma once
// Lock-free per-thread trace buffering (S43, see DESIGN.md).
//
// MemorySink and JsonlSink serialize every record() on one mutex, which is
// fine for single-threaded engine runs but puts a global lock on the hot emit
// path when the executor or a ThreadPool sweep traces concurrently. RingSink
// removes it: each recording thread owns a fixed-capacity single-producer /
// single-consumer ring, record() is two atomic loads, a slot write and one
// release store -- no lock, no syscall, wait-free for the producer. A full
// ring drops the *newest* event (counted in dropped()) rather than blocking
// or overwriting history; bounded memory is the contract.
//
// flush() drains every thread's ring, restores the global interleaving by
// TraceEvent::seq, and forwards to the downstream sink (any TraceSink --
// JSONL file, memory, another ring). drain() does the same but returns the
// events instead. Both may run concurrently with record(); they only consume
// events whose slot writes happen-before the observed tail.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mpss/obs/trace.hpp"

namespace mpss::obs {

class RingSink final : public TraceSink {
 public:
  /// `capacity` slots per recording thread (rounded up to 1); `downstream`
  /// receives the drained events on flush()/destruction (not owned, may be
  /// null -- then events wait for drain() and flush() is a no-op).
  explicit RingSink(std::size_t capacity = 4096, TraceSink* downstream = nullptr);
  ~RingSink() override;

  /// Wait-free for the calling thread (after its first call, which registers
  /// the thread's ring under a mutex once).
  void record(const TraceEvent& event) override;

  /// Drains all rings to the downstream sink in seq order, then flushes it.
  /// No-op without a downstream.
  void flush() override;

  /// Drains all rings and returns the events in seq order (bypassing the
  /// downstream). The tests and the trace tool use this.
  [[nodiscard]] std::vector<TraceEvent> drain();

  /// Events discarded because a ring was full. Each drain (flush()/drain()/
  /// destruction) also publishes the delta since the previous drain to the
  /// Registry's "trace.dropped" counter, so silent loss shows up in scrapes.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Buffer;

  Buffer& local_buffer();
  /// Consumes every ring; caller holds consumer_mutex_.
  std::vector<TraceEvent> consume();

  const std::size_t capacity_;
  TraceSink* downstream_;
  const std::uint64_t id_;  // process-unique; keys the thread-local ring cache
  std::atomic<std::uint64_t> dropped_{0};
  std::uint64_t published_dropped_ = 0;  // guarded by consumer_mutex_
  mutable std::mutex consumer_mutex_;  // registration + one-consumer-at-a-time
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace mpss::obs
