#pragma once
// SolveStats: the common telemetry record every solver engine fills in (S40,
// see DESIGN.md).
//
// The named fields are the cross-engine quantities the benches and the facade
// compare (the per-round flow statistics Angel et al. report when contrasting
// the combinatorial route against the Bingham-Greenstreet LP route); the
// embedded Counters carries engine-specific extras without schema churn.
// Fields an engine does not exercise stay 0 -- a populated SolveStats is one
// whose exercised fields are filled, not one with every field non-zero.

#include <cstddef>

#include "mpss/obs/counters.hpp"
#include "mpss/obs/histogram.hpp"

namespace mpss::obs {

class TraceSink;  // trace.hpp; forward-declared so result structs carrying a
                  // SolveStats can also take a sink pointer without the full
                  // trace header

struct SolveStats {
  // Offline combinatorial engines (exact + fast).
  std::size_t phases = 0;             // speed levels p
  std::size_t flow_computations = 0;  // max-flow feasibility tests (sum of rounds)
  std::size_t flow_bfs_rounds = 0;    // Dinic level graphs built, all tests
  std::size_t flow_augmenting_paths = 0;
  std::size_t candidate_removals = 0;  // Lemma-4 removals (= rounds - phases)

  // LP engine.
  std::size_t simplex_pivots = 0;
  std::size_t simplex_degenerate_pivots = 0;

  // Online engines.
  std::size_t replans = 0;      // OA(m): re-planning events
  std::size_t peel_events = 0;  // AVR(m): dedicated-processor branches

  /// Wall-clock seconds of the engine run (steady clock, always measured --
  /// one clock pair per solve).
  double wall_seconds = 0.0;

  /// Engine-specific named extras ("optimal.intervals", "lp.variables", ...).
  Counters counters;

  /// Engine-specific distributions ("optimal.round_us" flow-round durations,
  /// "lp.pivots_per_solve", "optimal.rounds_per_phase", ...), log-bucketed
  /// (histogram.hpp). The solve() facade publishes them into the Registry's
  /// global histograms alongside the counters.
  HistogramMap histograms;

  /// Field-wise sum; used when one run aggregates many inner solves (OA's
  /// per-arrival planner calls).
  void merge(const SolveStats& other) {
    phases += other.phases;
    flow_computations += other.flow_computations;
    flow_bfs_rounds += other.flow_bfs_rounds;
    flow_augmenting_paths += other.flow_augmenting_paths;
    candidate_removals += other.candidate_removals;
    simplex_pivots += other.simplex_pivots;
    simplex_degenerate_pivots += other.simplex_degenerate_pivots;
    replans += other.replans;
    peel_events += other.peel_events;
    wall_seconds += other.wall_seconds;
    counters.merge(other.counters);
    merge_histograms(histograms, other.histograms);
  }
};

}  // namespace mpss::obs
