#include "mpss/obs/ring_sink.hpp"

#include <algorithm>

#include "mpss/obs/registry.hpp"

namespace mpss::obs {
namespace {

std::uint64_t next_sink_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread cache of (sink id -> ring) so record() skips the registration
/// mutex after a thread's first event. Keyed by the sink's process-unique id,
/// not its address, so a new RingSink allocated where a destroyed one lived
/// can never match a stale entry. Entries for dead sinks linger (a pointer
/// per sink per thread) until the thread exits; they are never dereferenced.
struct TlEntry {
  std::uint64_t sink_id;
  void* buffer;
};
thread_local std::vector<TlEntry> tl_rings;

}  // namespace

/// One thread's SPSC ring. The owning thread is the only producer (writes
/// slots and tail); flush()/drain() are the consumer (reads slots, writes
/// head), serialized by consumer_mutex_. tail is stored with release after
/// the slot write and loaded with acquire by the consumer; symmetrically for
/// head, so slot reuse never races with a slot still being read.
struct RingSink::Buffer {
  explicit Buffer(std::size_t capacity) : slots(capacity) {}

  std::vector<TraceEvent> slots;
  std::atomic<std::uint64_t> head{0};  // consumer cursor
  std::atomic<std::uint64_t> tail{0};  // producer cursor
};

RingSink::RingSink(std::size_t capacity, TraceSink* downstream)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      downstream_(downstream),
      id_(next_sink_id()) {}

RingSink::~RingSink() {
  if (downstream_ == nullptr) return;
  // Best effort final drain; producers must be done by now (sink lifetime is
  // the caller's contract, as with every TraceSink).
  for (const TraceEvent& event : drain()) downstream_->record(event);
  downstream_->flush();
}

RingSink::Buffer& RingSink::local_buffer() {
  for (const TlEntry& entry : tl_rings) {
    if (entry.sink_id == id_) return *static_cast<Buffer*>(entry.buffer);
  }
  auto buffer = std::make_unique<Buffer>(capacity_);
  Buffer* raw = buffer.get();
  {
    std::lock_guard<std::mutex> lock(consumer_mutex_);
    buffers_.push_back(std::move(buffer));
  }
  tl_rings.push_back(TlEntry{id_, raw});
  return *raw;
}

void RingSink::record(const TraceEvent& event) {
  Buffer& buffer = local_buffer();
  const std::uint64_t tail = buffer.tail.load(std::memory_order_relaxed);
  if (tail - buffer.head.load(std::memory_order_acquire) >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);  // full: drop the newest
    return;
  }
  buffer.slots[tail % capacity_] = event;
  buffer.tail.store(tail + 1, std::memory_order_release);
}

std::vector<TraceEvent> RingSink::consume() {
  std::vector<TraceEvent> events;
  for (const std::unique_ptr<Buffer>& buffer : buffers_) {
    std::uint64_t head = buffer->head.load(std::memory_order_relaxed);
    const std::uint64_t tail = buffer->tail.load(std::memory_order_acquire);
    for (; head != tail; ++head) {
      events.push_back(std::move(buffer->slots[head % capacity_]));
    }
    buffer->head.store(head, std::memory_order_release);
  }
  // The global sequence numbers reconstruct the cross-thread interleaving.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  // Surface silent trace loss where scrapes can see it: fold the drop count
  // into the Registry's trace.dropped counter, once per drop (published_
  // remembers what previous drains already reported; consumer_mutex_ is held).
  const std::uint64_t dropped = dropped_.load(std::memory_order_relaxed);
  if (dropped > published_dropped_) {
    Registry::global().add("trace.dropped", dropped - published_dropped_);
    published_dropped_ = dropped;
  }
  return events;
}

void RingSink::flush() {
  if (downstream_ == nullptr) return;
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(consumer_mutex_);
    events = consume();
  }
  for (const TraceEvent& event : events) downstream_->record(event);
  downstream_->flush();
}

std::vector<TraceEvent> RingSink::drain() {
  std::lock_guard<std::mutex> lock(consumer_mutex_);
  return consume();
}

}  // namespace mpss::obs
