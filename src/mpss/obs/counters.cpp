#include "mpss/obs/counters.hpp"

namespace mpss::obs {

void Counters::add(std::string_view name, std::uint64_t delta) {
  auto it = items_.find(name);
  if (it == items_.end()) {
    items_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Counters::set(std::string_view name, std::uint64_t value) {
  auto it = items_.find(name);
  if (it == items_.end()) {
    items_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

std::uint64_t Counters::value(std::string_view name) const {
  auto it = items_.find(name);
  return it == items_.end() ? 0 : it->second;
}

void Counters::merge(const Counters& other) {
  for (const auto& [name, value] : other.items_) add(name, value);
}

ScopedTimer::ScopedTimer() : start_(std::chrono::steady_clock::now()) {}

ScopedTimer::ScopedTimer(double& seconds)
    : start_(std::chrono::steady_clock::now()), seconds_(&seconds) {}

ScopedTimer::ScopedTimer(Counters& counters, std::string name)
    : start_(std::chrono::steady_clock::now()),
      counters_(&counters),
      name_(std::move(name)) {}

double ScopedTimer::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

ScopedTimer::~ScopedTimer() {
  auto elapsed = std::chrono::steady_clock::now() - start_;
  if (seconds_ != nullptr) {
    *seconds_ += std::chrono::duration<double>(elapsed).count();
  }
  if (counters_ != nullptr) {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    counters_->add(name_ + ".ns", static_cast<std::uint64_t>(ns));
    counters_->add(name_ + ".calls", 1);
  }
}

}  // namespace mpss::obs
