#include "mpss/obs/histogram.hpp"

#include <algorithm>

namespace mpss::obs {

void HistogramData::record(std::uint64_t value) {
  ++buckets[bucket_of(value)];
  ++count;
  sum += value;
  if (count == 1) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count == 0) return;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) buckets[i] += other.buckets[i];
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
}

std::uint64_t HistogramData::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based; q = 0 maps to the first sample.
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t next = seen + buckets[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate linearly across the bucket's value range by the fraction of
      // the bucket's population below the target rank.
      const double within =
          buckets[i] == 0
              ? 0.0
              : (target - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
      const double lo = static_cast<double>(bucket_lower(i));
      const double hi = static_cast<double>(bucket_upper(i));
      auto estimate = static_cast<std::uint64_t>(lo + within * (hi - lo));
      return std::clamp(estimate, min, max);
    }
    seen = next;
  }
  return max;
}

void Histogram::record(std::uint64_t value) {
  buckets_[HistogramData::bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::merge(const HistogramData& data) {
  if (data.count == 0) return;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (data.buckets[i] != 0) {
      buckets_[i].fetch_add(data.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(data.count, std::memory_order_relaxed);
  sum_.fetch_add(data.sum, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (data.min < seen &&
         !min_.compare_exchange_weak(seen, data.min, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (data.max > seen &&
         !max_.compare_exchange_weak(seen, data.max, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::snapshot() const {
  HistogramData data;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    data.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  data.count = count_.load(std::memory_order_relaxed);
  data.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  data.min = data.count == 0 ? 0 : min;
  data.max = max_.load(std::memory_order_relaxed);
  return data;
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Percentiles percentiles(const HistogramData& data) {
  return Percentiles{data.quantile(0.50), data.quantile(0.90), data.quantile(0.99)};
}

void merge_histograms(HistogramMap& into, const HistogramMap& other) {
  for (const auto& [name, data] : other) into[name].merge(data);
}

}  // namespace mpss::obs
