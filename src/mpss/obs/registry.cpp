#include "mpss/obs/registry.hpp"

#include <unistd.h>

#include <chrono>

namespace mpss::obs {
namespace {

/// One 32-bit nonce per process, distinguishing the trace-id spaces of a
/// client and a server on the same machine. Pid alone almost suffices, but a
/// recycled pid across daemon restarts would collide, so the boot-relative
/// clock is mixed in (splitmix64 finalizer).
std::uint32_t process_trace_nonce() {
  static const std::uint32_t nonce = [] {
    auto now = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    std::uint64_t mix = static_cast<std::uint64_t>(::getpid()) ^ (now << 17);
    mix ^= mix >> 30;
    mix *= 0xBF58476D1CE4E5B9ull;
    mix ^= mix >> 27;
    mix *= 0x94D049BB133111EBull;
    mix ^= mix >> 31;
    auto folded = static_cast<std::uint32_t>(mix ^ (mix >> 32));
    return folded == 0 ? std::uint32_t{1} : folded;
  }();
  return nonce;
}

}  // namespace

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.add(name, delta);
}

void Registry::merge(const Counters& counters) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.merge(counters);
}

Counters Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

HistogramMap Registry::histogram_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramMap snapshot;
  for (const auto& [name, histogram] : histograms_) {
    snapshot[name] = histogram->snapshot();
  }
  return snapshot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  // Zero in place: references handed out by histogram() must stay valid.
  for (const auto& [name, histogram] : histograms_) histogram->reset();
  // Rewind the id wells so traces are deterministic across test cases and
  // differential runs (see the header's test-isolation contract).
  seq_.store(0, std::memory_order_relaxed);
  span_seq_.store(0, std::memory_order_relaxed);
  trace_seq_.store(0, std::memory_order_relaxed);
}

std::uint64_t Registry::next_trace_id() {
  const std::uint64_t low =
      (trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1) & 0xFFFFFFFFull;
  return (static_cast<std::uint64_t>(process_trace_nonce()) << 32) | low;
}

}  // namespace mpss::obs
