#include "mpss/obs/registry.hpp"

namespace mpss::obs {

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.add(name, delta);
}

void Registry::merge(const Counters& counters) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.merge(counters);
}

Counters Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
}

}  // namespace mpss::obs
