#include "mpss/obs/registry.hpp"

namespace mpss::obs {

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.add(name, delta);
}

void Registry::merge(const Counters& counters) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.merge(counters);
}

Counters Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

HistogramMap Registry::histogram_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramMap snapshot;
  for (const auto& [name, histogram] : histograms_) {
    snapshot[name] = histogram->snapshot();
  }
  return snapshot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  // Zero in place: references handed out by histogram() must stay valid.
  for (const auto& [name, histogram] : histograms_) histogram->reset();
  // Rewind the id wells so traces are deterministic across test cases and
  // differential runs (see the header's test-isolation contract).
  seq_.store(0, std::memory_order_relaxed);
  span_seq_.store(0, std::memory_order_relaxed);
}

}  // namespace mpss::obs
