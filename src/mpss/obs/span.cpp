#include "mpss/obs/span.hpp"

#include <atomic>
#include <utility>

#include "mpss/obs/registry.hpp"

namespace mpss::obs {
namespace {

thread_local SpanId tl_current_span = 0;
thread_local TraceContext tl_trace_context{};

constexpr std::uint64_t kUnassigned = ~std::uint64_t{0};
std::atomic<std::uint64_t> next_thread_index{0};
thread_local std::uint64_t tl_thread_index = kUnassigned;

double epoch_seconds(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace

SpanId current_span() { return tl_current_span; }

TraceContext current_trace() { return tl_trace_context; }

TraceContextScope::TraceContextScope(TraceContext context)
    : saved_(std::exchange(tl_trace_context, context)) {
  // Re-root (see span.hpp): with a parent in the context, spans opened inside
  // the scope must not nest under the thread's current wrapper span.
  if (context.local_parent != 0 || context.remote_parent != 0) {
    saved_span_ = std::exchange(tl_current_span, 0);
    stashed_ = true;
  }
}

TraceContextScope::~TraceContextScope() {
  tl_trace_context = saved_;
  if (stashed_) tl_current_span = saved_span_;
}

std::uint64_t thread_index() {
  if (tl_thread_index == kUnassigned) {
    tl_thread_index = next_thread_index.fetch_add(1, std::memory_order_relaxed);
  }
  return tl_thread_index;
}

SpanScope::SpanScope(TraceSink* sink, std::string_view label) {
  if (sink == nullptr) sink = Registry::global().sink();
  if (sink == nullptr) return;  // inactive: the documented one-branch path
  sink_ = sink;
  id_ = Registry::global().next_span_id();
  restore_ = std::exchange(tl_current_span, id_);
  parent_ = restore_;
  // A root span (nothing open on this thread) adopts the installed context's
  // parent: a local one crosses threads inside the process (b stays a real
  // span id), a remote one crosses processes (b stays 0; the peer's span id
  // travels in rparent, resolvable only against the peer's trace file).
  const TraceContext& context = tl_trace_context;
  trace_ = context.trace_id;
  if (parent_ == 0) {
    if (context.local_parent != 0) {
      parent_ = context.local_parent;
    } else if (context.remote_parent != 0) {
      remote_parent_ = context.remote_parent;
    }
  }
  label_ = label;
  start_ = std::chrono::steady_clock::now();

  TraceEvent event;
  event.kind = EventKind::kSpanBegin;
  event.label = label_;
  event.a = id_;
  event.b = parent_;
  event.value = static_cast<double>(thread_index());
  event.seq = Registry::global().next_seq();
  event.span = parent_;
  event.t_seconds = epoch_seconds(start_);  // stamped even without MPSS_TRACING
  event.trace = trace_;
  event.remote_parent = remote_parent_;
  sink_->record(event);
}

SpanScope::~SpanScope() {
  if (id_ == 0) return;
  auto end = std::chrono::steady_clock::now();
  tl_current_span = restore_;

  TraceEvent event;
  event.kind = EventKind::kSpanEnd;
  event.label = label_;
  event.a = id_;
  event.b = parent_;
  event.value = std::chrono::duration<double>(end - start_).count();
  event.seq = Registry::global().next_seq();
  event.span = parent_;
  event.t_seconds = epoch_seconds(end);
  event.trace = trace_;
  event.remote_parent = remote_parent_;
  sink_->record(event);
}

double SpanScope::elapsed_seconds() const {
  if (id_ == 0) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

}  // namespace mpss::obs
