#include "mpss/obs/span.hpp"

#include <atomic>
#include <utility>

#include "mpss/obs/registry.hpp"

namespace mpss::obs {
namespace {

thread_local SpanId tl_current_span = 0;

constexpr std::uint64_t kUnassigned = ~std::uint64_t{0};
std::atomic<std::uint64_t> next_thread_index{0};
thread_local std::uint64_t tl_thread_index = kUnassigned;

double epoch_seconds(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace

SpanId current_span() { return tl_current_span; }

std::uint64_t thread_index() {
  if (tl_thread_index == kUnassigned) {
    tl_thread_index = next_thread_index.fetch_add(1, std::memory_order_relaxed);
  }
  return tl_thread_index;
}

SpanScope::SpanScope(TraceSink* sink, std::string_view label) {
  if (sink == nullptr) sink = Registry::global().sink();
  if (sink == nullptr) return;  // inactive: the documented one-branch path
  sink_ = sink;
  id_ = Registry::global().next_span_id();
  parent_ = std::exchange(tl_current_span, id_);
  label_ = label;
  start_ = std::chrono::steady_clock::now();

  TraceEvent event;
  event.kind = EventKind::kSpanBegin;
  event.label = label_;
  event.a = id_;
  event.b = parent_;
  event.value = static_cast<double>(thread_index());
  event.seq = Registry::global().next_seq();
  event.span = parent_;
  event.t_seconds = epoch_seconds(start_);  // stamped even without MPSS_TRACING
  sink_->record(event);
}

SpanScope::~SpanScope() {
  if (id_ == 0) return;
  auto end = std::chrono::steady_clock::now();
  tl_current_span = parent_;

  TraceEvent event;
  event.kind = EventKind::kSpanEnd;
  event.label = label_;
  event.a = id_;
  event.b = parent_;
  event.value = std::chrono::duration<double>(end - start_).count();
  event.seq = Registry::global().next_seq();
  event.span = parent_;
  event.t_seconds = epoch_seconds(end);
  sink_->record(event);
}

double SpanScope::elapsed_seconds() const {
  if (id_ == 0) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

}  // namespace mpss::obs
