#pragma once
// Trace-event model and pluggable sinks (observability subsystem S40, see
// DESIGN.md).
//
// Engines emit small fixed-shape events (phase start/end, flow round, simplex
// pivot, candidate removal, arrival, ...) through obs::emit(). Emission is
// runtime-gated: with no sink attached the cost is one pointer test, so the
// default solver paths stay effectively free of instrumentation overhead.
// Sinks must be thread-safe -- the executor and thread-pool paths record
// concurrently.
//
// Builds configured with -DMPSS_TRACING=ON additionally stamp every event with
// a steady-clock timestamp (`t_seconds`). The default build skips the clock
// read per event; timestamps then read 0.

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mpss::obs {

/// True when the library was compiled with -DMPSS_TRACING=ON (per-event
/// timestamps enabled).
#if defined(MPSS_TRACING)
inline constexpr bool kTimestampedTracing = true;
#else
inline constexpr bool kTimestampedTracing = false;
#endif

/// What happened. One enumerator per instrumentation site family; the `label`
/// string on the event pins down the exact site ("optimal.round", ...).
enum class EventKind : std::uint8_t {
  kSolveStart,        // an engine run began             a=jobs, b=machines
  kSolveEnd,          // an engine run finished          a/b engine-specific, value=seconds
  kPhaseStart,        // offline engine phase i began    a=phase
  kPhaseEnd,          // phase i identified              a=phase, b=rounds, value=speed
  kFlowRound,         // one max-flow feasibility test   a=phase, b=round, value=flow/target
  kCandidateRemoved,  // Lemma-4 removal                 a=phase, b=job
  kSimplexPivot,      // one tableau pivot               a=entering, b=leaving, value=ratio
  kArrival,           // online re-planning event        a=event, b=available, value=seconds
  kPeel,              // AVR dedicated-processor branch  a=interval, b=job, value=density
  kCounter,           // free-form counter-style event
  kSpanBegin,         // SpanScope opened (span.hpp)     a=span id, b=parent id, value=thread index
  kSpanEnd,           // SpanScope closed                a=span id, b=parent id, value=seconds
};

/// Stable lowercase name ("flow_round") used by the JSONL encoding.
[[nodiscard]] const char* event_kind_name(EventKind kind);

/// Inverse of event_kind_name. Throws std::invalid_argument on unknown names.
[[nodiscard]] EventKind event_kind_from_name(std::string_view name);

/// One trace record. Integer payloads a/b and the double payload carry
/// kind-specific data (see EventKind); label identifies the emission site.
struct TraceEvent {
  EventKind kind = EventKind::kCounter;
  std::string label;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  double value = 0.0;
  std::uint64_t seq = 0;     // process-wide emission order (obs::Registry)
  double t_seconds = 0.0;    // steady-clock stamp; 0 unless MPSS_TRACING build
                             // (span begin/end events are always stamped)
  std::uint64_t span = 0;    // innermost span open on the emitting thread when
                             // this event fired (span.hpp); 0 = none
  std::uint64_t trace = 0;   // distributed trace id inherited from the active
                             // TraceContext (span.hpp); 0 = no trace context
  std::uint64_t remote_parent = 0;  // span id in a *peer process* this event's
                                    // span parents under (span begins only);
                                    // resolved by mpss_trace's multi-file merge

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Destination for trace events. Implementations must tolerate concurrent
/// record() calls (engines may run inside parallel_for sweeps).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Swallows everything; handy as an explicit "tracing off" argument.
class NullSink final : public TraceSink {
 public:
  void record(const TraceEvent&) override {}
};

/// Collects events in memory (mutex-protected). The unit tests and the
/// telemetry differential tests inspect solver behaviour through this.
class MemorySink final : public TraceSink {
 public:
  void record(const TraceEvent& event) override;

  /// Snapshot of all recorded events in record order.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  /// Number of recorded events of `kind`.
  [[nodiscard]] std::size_t count(EventKind kind) const;
  /// Number of recorded events with label `label`.
  [[nodiscard]] std::size_t count_label(std::string_view label) const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// Streams events as one JSON object per line (JSONL), the format
/// tools/mpss_trace consumes. Writing is mutex-protected. The destructor
/// flushes, so a trace is complete without an explicit flush() call; an
/// explicit flush() additionally *surfaces* stream write failures (disk
/// full, closed pipe) as std::runtime_error instead of truncating silently
/// -- call it once after a traced run when the trace matters.
class JsonlSink final : public TraceSink {
 public:
  /// Writes to a caller-owned stream (must outlive the sink).
  explicit JsonlSink(std::ostream& out);
  /// Opens `path` for writing; throws std::invalid_argument on failure.
  explicit JsonlSink(const std::string& path);
  /// Flushes (best effort, never throws).
  ~JsonlSink() override;

  void record(const TraceEvent& event) override;
  /// Flushes and throws std::runtime_error if the stream has failed (badbit
  /// or failbit) -- the only place a lost trace becomes visible.
  void flush() override;

  /// True while no stream write has failed.
  [[nodiscard]] bool ok() const;

 private:
  std::ofstream file_;  // used only by the path constructor
  std::ostream* out_;
  mutable std::mutex mutex_;
};

/// The JSONL encoding of one event (no trailing newline):
/// {"seq":12,"kind":"flow_round","label":"optimal.round","a":0,"b":3,
///  "span":7,"value":0.75,"t":0.00121}
/// The cross-process fields are emitted only when nonzero -- appended as
/// "trace":N and "rparent":N after "t" -- so untraced output stays
/// byte-identical to the pre-distributed-tracing encoding.
[[nodiscard]] std::string to_jsonl(const TraceEvent& event);

/// `text` as a double-quoted JSON string literal (escaping quotes, backslashes
/// and control characters). Shared by the JSONL encoder and the Chrome-trace
/// exporter in tools/mpss_trace.
[[nodiscard]] std::string json_quoted(std::string_view text);

/// Parses JSONL produced by JsonlSink back into events. Unknown keys are
/// ignored (forward compatibility); malformed lines or unknown kinds throw
/// std::invalid_argument. Blank lines are skipped.
[[nodiscard]] std::vector<TraceEvent> parse_trace_jsonl(std::string_view text);
[[nodiscard]] std::vector<TraceEvent> parse_trace_jsonl(std::istream& in);

/// Emits one event. `sink == nullptr` falls back to the process-wide sink
/// attached to obs::Registry::global(); if that is also absent the call is a
/// no-op (one branch). Fills seq, the active trace id (span.hpp) and, in
/// MPSS_TRACING builds, t_seconds.
void emit(TraceSink* sink, EventKind kind, std::string_view label,
          std::uint64_t a = 0, std::uint64_t b = 0, double value = 0.0);

}  // namespace mpss::obs
