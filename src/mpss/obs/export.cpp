#include "mpss/obs/export.hpp"

#include <algorithm>
#include <cstdint>

#include "mpss/obs/registry.hpp"

namespace mpss::obs {
namespace {

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_help_type(std::string& out, const std::string& metric,
                      std::string_view family, std::string_view source,
                      std::string_view type) {
  out += "# HELP ";
  out += metric;
  out += " mpss ";
  out += family;
  out += ' ';
  // The HELP text names the registry source; escape it like a label value
  // (HELP shares the \\ and \n escapes; quotes need none here).
  for (char c : source) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '\n';
  out += "# TYPE ";
  out += metric;
  out += ' ';
  out += type;
  out += '\n';
}

void append_histogram(std::string& out, const std::string& metric,
                      const HistogramData& data) {
  // Cumulative le= buckets over the log2 layout. Buckets above the observed
  // maximum are all equal to count, so one "+Inf" bucket stands in for them;
  // bucket 64's upper bound (2^64 - 1) is likewise folded into "+Inf".
  std::size_t last = data.count == 0 ? 0 : HistogramData::bucket_of(data.max);
  last = std::min(last, kHistogramBuckets - 2);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= last; ++i) {
    cumulative += data.buckets[i];
    out += metric;
    out += "_bucket{le=\"";
    out += std::to_string(HistogramData::bucket_upper(i));
    out += "\"} ";
    out += std::to_string(cumulative);
    out += '\n';
  }
  out += metric;
  out += "_bucket{le=\"+Inf\"} ";
  out += std::to_string(data.count);
  out += '\n';
  out += metric;
  out += "_sum ";
  out += std::to_string(data.sum);
  out += '\n';
  out += metric;
  out += "_count ";
  out += std::to_string(data.count);
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') out += '_';
  for (char c : name) out += valid_name_char(c) ? c : '_';
  return out;
}

std::string prometheus_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_prometheus(const Counters& counters,
                              const HistogramMap& histograms,
                              std::string_view prefix) {
  std::string out;
  for (const auto& [name, value] : counters.items()) {
    std::string metric = std::string(prefix) + prometheus_name(name) + "_total";
    append_help_type(out, metric, "counter", name, "counter");
    out += metric;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, data] : histograms) {
    std::string metric = std::string(prefix) + prometheus_name(name);
    append_help_type(out, metric, "histogram", name, "histogram");
    append_histogram(out, metric, data);
  }
  return out;
}

std::string render_prometheus() {
  return render_prometheus(Registry::global().snapshot(),
                           Registry::global().histogram_snapshot());
}

}  // namespace mpss::obs
