#pragma once
// Process-wide, thread-safe aggregation point of the observability subsystem
// (S40, see DESIGN.md).
//
// Two jobs:
//   * a global named-counter store that concurrent paths (ThreadPool workers,
//     the schedule executor, parallel experiment sweeps) bump or merge into
//     without any plumbing through their call sites;
//   * the process-wide default TraceSink that obs::emit() falls back to when an
//     engine was not handed an explicit sink (how the CLI tools turn tracing on
//     globally).
//
// The registry never owns the sink -- callers attach/detach a sink they own and
// must keep alive while attached.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>

#include "mpss/obs/counters.hpp"

namespace mpss::obs {

class TraceSink;

class Registry {
 public:
  /// The process-wide registry.
  static Registry& global();

  /// Thread-safe counter bump.
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Thread-safe merge of a locally accumulated Counters (the per-thread
  /// pattern: accumulate privately, merge once).
  void merge(const Counters& counters);

  /// Copy of the current counters.
  [[nodiscard]] Counters snapshot() const;

  /// Drops all counters (tests and benchmark harness resets).
  void reset();

  /// Attaches (or with nullptr detaches) the process-wide default sink.
  void attach_sink(TraceSink* sink) { sink_.store(sink, std::memory_order_release); }
  [[nodiscard]] TraceSink* sink() const {
    return sink_.load(std::memory_order_acquire);
  }

  /// Next global event sequence number (shared by all sinks so interleavings
  /// across threads stay reconstructible).
  std::uint64_t next_seq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  Counters counters_;
  std::atomic<TraceSink*> sink_{nullptr};
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace mpss::obs
