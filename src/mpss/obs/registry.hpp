#pragma once
// Process-wide, thread-safe aggregation point of the observability subsystem
// (S40/S43, see DESIGN.md).
//
// Three jobs:
//   * a global named-counter store that concurrent paths (ThreadPool workers,
//     the schedule executor, parallel experiment sweeps) bump or merge into
//     without any plumbing through their call sites;
//   * a global named-histogram store (lock-free obs::Histogram per name) for
//     the same paths' latency/size distributions;
//   * the process-wide default TraceSink that obs::emit() falls back to when an
//     engine was not handed an explicit sink (how the CLI tools turn tracing on
//     globally), plus the id wells for event sequence numbers and span ids.
//
// The registry never owns the sink -- callers attach/detach a sink they own and
// must keep alive while attached.
//
// Test-isolation contract: reset() restores every piece of *data* state --
// counters are dropped, histograms zeroed in place, and the event-sequence and
// span-id wells rewound to their initial values -- so a test case (or one leg
// of a differential run) that calls reset() first produces a trace that is
// byte-identical across runs and orderings. reset() deliberately does NOT
// detach the sink (attachment is ownership, not data), and it must not run
// concurrently with emitting threads (the ids it rewinds would be reused).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>

#include "mpss/obs/counters.hpp"
#include "mpss/obs/histogram.hpp"

namespace mpss::obs {

class TraceSink;

class Registry {
 public:
  /// The process-wide registry.
  static Registry& global();

  /// Thread-safe counter bump.
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Thread-safe merge of a locally accumulated Counters (the per-thread
  /// pattern: accumulate privately, merge once).
  void merge(const Counters& counters);

  /// Copy of the current counters.
  [[nodiscard]] Counters snapshot() const;

  /// The named global histogram, created on first use. The returned reference
  /// is valid for the process lifetime (entries are never deallocated, only
  /// zeroed by reset()), so hot paths look the name up once and cache it;
  /// record() on the result is lock-free.
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Value snapshot of every named histogram (statistically consistent).
  [[nodiscard]] HistogramMap histogram_snapshot() const;

  /// Restores counters, histograms, and the event-sequence, span-id and
  /// trace-id counters to their initial state (see the test-isolation contract
  /// above). The attached sink stays attached.
  void reset();

  /// Attaches (or with nullptr detaches) the process-wide default sink.
  void attach_sink(TraceSink* sink) { sink_.store(sink, std::memory_order_release); }
  [[nodiscard]] TraceSink* sink() const {
    return sink_.load(std::memory_order_acquire);
  }

  /// Next global event sequence number (shared by all sinks so interleavings
  /// across threads stay reconstructible).
  std::uint64_t next_seq() { return seq_.fetch_add(1, std::memory_order_relaxed); }

  /// Next span id (1-based; 0 means "no span" throughout the trace model).
  std::uint64_t next_span_id() {
    return span_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Next distributed-trace id: a per-process nonce (constant for the process
  /// lifetime, so in-process differential runs stay deterministic) in the high
  /// 32 bits, a counter rewound by reset() in the low 32. Never 0. Trace ids
  /// use the full 64-bit range, so they travel as decimal *strings* wherever
  /// JSON numbers are doubles (net/protocol.hpp).
  std::uint64_t next_trace_id();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  Counters counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::atomic<TraceSink*> sink_{nullptr};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> span_seq_{0};
  std::atomic<std::uint64_t> trace_seq_{0};
};

}  // namespace mpss::obs
