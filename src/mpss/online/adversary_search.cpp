#include "mpss/online/adversary_search.hpp"

#include <algorithm>

#include "mpss/core/optimal.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/util/error.hpp"
#include "mpss/util/random.hpp"

namespace mpss {
namespace {

double ratio_of(OnlineAlgorithmKind kind, const Instance& instance,
                const AdversaryConfig& config) {
  if (config.evaluator) return config.evaluator(kind, instance, config.alpha);
  AlphaPower p(config.alpha);
  double opt = optimal_energy(instance, p);
  if (opt <= 0.0) return 1.0;
  double online = kind == OnlineAlgorithmKind::kOa ? oa_energy(instance, p)
                                                   : avr_energy(instance, p);
  return online / opt;
}

std::vector<Job> random_jobs(Xoshiro256& rng, const AdversaryConfig& config) {
  std::vector<Job> jobs;
  jobs.reserve(config.jobs);
  for (std::size_t i = 0; i < config.jobs; ++i) {
    std::int64_t release = rng.uniform_int(0, config.horizon - 1);
    std::int64_t deadline = rng.uniform_int(release + 1, config.horizon);
    jobs.push_back(Job{Q(release), Q(deadline), Q(rng.uniform_int(1, config.max_work))});
  }
  return jobs;
}

/// Mutates one field of one job, keeping the instance valid and integral.
std::vector<Job> mutate(Xoshiro256& rng, std::vector<Job> jobs,
                        const AdversaryConfig& config) {
  std::size_t pick = rng.below(jobs.size());
  Job& job = jobs[pick];
  std::int64_t release = job.release.num().to_int64();
  std::int64_t deadline = job.deadline.num().to_int64();
  std::int64_t work = job.work.num().to_int64();
  switch (rng.below(4)) {
    case 0:  // move release
      release = std::clamp<std::int64_t>(release + rng.uniform_int(-2, 2), 0,
                                         deadline - 1);
      break;
    case 1:  // move deadline
      deadline = std::clamp<std::int64_t>(deadline + rng.uniform_int(-2, 2),
                                          release + 1, config.horizon);
      break;
    case 2:  // change work
      work = std::clamp<std::int64_t>(work + rng.uniform_int(-2, 2), 1,
                                      config.max_work);
      break;
    default:  // resample the job entirely
      release = rng.uniform_int(0, config.horizon - 1);
      deadline = rng.uniform_int(release + 1, config.horizon);
      work = rng.uniform_int(1, config.max_work);
      break;
  }
  job = Job{Q(release), Q(deadline), Q(work)};
  return jobs;
}

}  // namespace

AdversaryResult search_adversary(OnlineAlgorithmKind kind,
                                 const AdversaryConfig& config, std::uint64_t seed) {
  check_arg(config.jobs >= 1 && config.horizon >= 2 && config.max_work >= 1 &&
                config.alpha > 1.0 && config.restarts >= 1,
            "search_adversary: degenerate configuration");
  Xoshiro256 rng(seed);

  std::vector<Job> best_jobs = random_jobs(rng, config);
  double best_ratio = ratio_of(kind, Instance(best_jobs, config.machines), config);
  std::size_t evaluations = 1;

  for (std::size_t restart = 0; restart < config.restarts; ++restart) {
    std::vector<Job> current =
        restart == 0 ? best_jobs : random_jobs(rng, config);
    double current_ratio =
        ratio_of(kind, Instance(current, config.machines), config);
    ++evaluations;
    for (std::size_t step = 0; step < config.iterations; ++step) {
      std::vector<Job> candidate = mutate(rng, current, config);
      double candidate_ratio =
          ratio_of(kind, Instance(candidate, config.machines), config);
      ++evaluations;
      if (candidate_ratio >= current_ratio) {  // accept ties: drift across plateaus
        current = std::move(candidate);
        current_ratio = candidate_ratio;
      }
      if (current_ratio > best_ratio) {
        best_ratio = current_ratio;
        best_jobs = current;
      }
    }
  }
  return AdversaryResult{Instance(std::move(best_jobs), config.machines), best_ratio,
                         evaluations};
}

}  // namespace mpss
