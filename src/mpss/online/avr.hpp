#pragma once
// Algorithm AVR(m) -- Average Rate for m parallel processors (Section 3.2, Fig. 3).
//
// The instance must have integral release times and deadlines (the paper's
// assumption, w.l.o.g. by rescaling -- Instance::scaled_to_integral_times). In
// every unit interval I_t = [t, t+1) the algorithm schedules delta_i = w_i/(d_i-r_i)
// units of every active job J_i:
//
//   while the maximum density exceeds the average load Delta'_t / |M| of the
//   not-yet-placed jobs, the densest job gets a processor of its own at speed
//   delta_i; the rest share the remaining processors at the uniform speed
//   Delta'_t / |M| via a McNaughton wrap.
//
// Theorem 3: AVR(m) is ((2*alpha)^alpha)/2 + 1-competitive. Experiment E3 measures
// the empirical ratio; E5 checks the decomposition inequalities from its proof.

#include <cstddef>
#include <vector>

#include "mpss/core/job.hpp"
#include "mpss/core/power.hpp"
#include "mpss/core/schedule.hpp"
#include "mpss/obs/stats.hpp"

namespace mpss {

/// Result of AVR(m). `peel_events` counts how many (interval, job) pairs took the
/// dedicated-processor branch -- the quantity that separates AVR(m) from a plain
/// per-interval uniform smear.
struct AvrResult {
  Schedule schedule;
  std::size_t peel_events = 0;
  /// Telemetry: `stats.peel_events` mirrors the field above; "avr.unit_intervals"
  /// (horizon length) and "avr.active_pairs" (scheduled (interval, job) pairs)
  /// live in the counters.
  obs::SolveStats stats;
};

/// Ablation knob (experiment E12): with peeling disabled, every unit interval is
/// smeared uniformly at Delta_t / m. When a job is denser than the average load,
/// its execution chunk exceeds the unit interval and the McNaughton wrap puts the
/// job on two processors at the same time -- the feasibility violation Fig. 3's
/// peel-off exists to prevent. check_schedule() exposes it.
struct AvrOptions {
  bool enable_peeling = true;
};

/// Runs AVR(m). Throws std::invalid_argument when the instance has non-integral
/// release times or deadlines (rescale first). m = 1 reproduces classic AVR
/// energy behaviour (speed = sum of active densities).
[[nodiscard]] AvrResult avr_schedule(const Instance& instance);

/// As above with ablation options. With enable_peeling == false the result can be
/// INFEASIBLE (by design -- that is the experiment); it is never silently wrong,
/// since check_schedule reports the violation. `trace` records one kPeel event
/// per dedicated-processor branch; null falls back to the process-wide sink in
/// obs::Registry (the solve() facade is the preferred way to drive tracing).
[[nodiscard]] AvrResult avr_schedule(const Instance& instance,
                                     const AvrOptions& options,
                                     obs::TraceSink* trace = nullptr);

/// Convenience: AVR(m) energy under P.
[[nodiscard]] double avr_energy(const Instance& instance, const PowerFunction& p);

/// The per-unit-interval total densities Delta_t of the instance, indexed from the
/// horizon start; sum_t (Delta_t)^alpha is the single-processor AVR energy used in
/// the proof of Theorem 3 (inequality (9)).
[[nodiscard]] std::vector<Q> avr_density_profile(const Instance& instance);

}  // namespace mpss
