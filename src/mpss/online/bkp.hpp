#pragma once
// The Bansal-Kimbrel-Pruhs online algorithm [5] for a single processor
// (extension S14; experiment E9).
//
// The paper's conclusion poses extending BKP to multi-processors as an open
// problem; we implement the single-processor original so the repo can reproduce
// the motivating comparison: for large alpha, BKP's ratio 2*(alpha/(alpha-1))*e^alpha
// grows like e^alpha while OA's alpha^alpha grows much faster.
//
// BKP at time t runs EDF at speed
//     s(t) = e * max_{t2 > t} w(t1, t, t2) / (e * (t2 - t)),   t1 = e*t - (e-1)*t2,
// where w(t1, t, t2) is the work of jobs released in [t1, t] with deadline <= t2.
// The speed varies continuously with t, so unlike everything else in this library
// the simulation is a double-precision time-stepped approximation; the result
// carries the observed discretization error so tests can bound it.

#include <cstddef>
#include <vector>

#include "mpss/core/job.hpp"

namespace mpss {

/// Result of a (discretized) BKP run.
struct BkpResult {
  /// Energy under P(s) = s^alpha.
  double energy = 0.0;
  /// Largest remaining work of any job observed at its deadline (discretization
  /// error; the continuous-time algorithm is feasible, so this tends to 0 as
  /// steps_per_unit grows).
  double max_deadline_shortfall = 0.0;
  /// Work left at the end of the horizon (should be ~0).
  double unfinished_work = 0.0;
  /// Sampled (time, speed) profile, one sample per step.
  std::vector<std::pair<double, double>> speed_profile;
};

/// Simulates BKP on a single-processor instance (machines() must be 1) with
/// P(s) = s^alpha. `steps_per_unit` controls the time discretization.
[[nodiscard]] BkpResult bkp_schedule(const Instance& instance, double alpha,
                                     std::size_t steps_per_unit = 64);

}  // namespace mpss
