#include "mpss/online/oa.hpp"

#include "mpss/core/optimal.hpp"

namespace mpss {

OnlineRunResult oa_schedule(const Instance& instance) {
  return run_replanning_online(instance, [](const Instance& available) {
    return optimal_schedule(available).schedule;
  });
}

double oa_energy(const Instance& instance, const PowerFunction& p) {
  return oa_schedule(instance).schedule.energy(p);
}

}  // namespace mpss
