#include "mpss/online/oa.hpp"

#include <memory>
#include <utility>

#include "mpss/core/optimal.hpp"
#include "mpss/obs/span.hpp"

namespace mpss {

OnlineRunResult oa_schedule(const Instance& instance, obs::TraceSink* trace) {
  // Root span for the OA run; the simulator's online.run span and every inner
  // optimal.solve span nest underneath.
  obs::SpanScope oa_span(trace, "oa.solve");
  // The planner's per-call stats are merged outside the lambda: the harness
  // wall-clocks each call itself, and merging after the run keeps the lambda
  // copyable (Planner is a std::function).
  auto inner = std::make_shared<obs::SolveStats>();
  OnlineRunResult result =
      run_replanning_online(instance, [inner](const Instance& available) {
        OptimalResult planned = optimal_schedule(available);
        // Keep planner wall time out of the merge: the harness already measures
        // the call, and double-counting would inflate stats.wall_seconds.
        planned.stats.wall_seconds = 0.0;
        inner->merge(planned.stats);
        return std::move(planned.schedule);
      }, trace);
  result.stats.merge(*inner);
  return result;
}

OnlineRunResult oa_schedule(const Instance& instance) {
  return oa_schedule(instance, nullptr);
}

double oa_energy(const Instance& instance, const PowerFunction& p) {
  return oa_schedule(instance).schedule.energy(p);
}

}  // namespace mpss
