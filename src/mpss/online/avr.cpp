#include "mpss/online/avr.hpp"

#include <algorithm>

#include "mpss/core/mcnaughton.hpp"
#include "mpss/obs/histogram.hpp"
#include "mpss/obs/span.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/error.hpp"

namespace mpss {
namespace {

struct ActiveJob {
  std::size_t job;
  Q density;
};

std::pair<std::int64_t, std::int64_t> integral_horizon(const Instance& instance) {
  check_arg(instance.has_integral_times(),
            "avr_schedule: instance must have integral release times and deadlines "
            "(use Instance::scaled_to_integral_times)");
  if (instance.jobs().empty()) return {0, 0};
  return {instance.horizon_start().num().to_int64(),
          instance.horizon_end().num().to_int64()};
}

}  // namespace

namespace {

/// Naive wrap used only by the no-peeling ablation: places chunks sequentially
/// across machines WITHOUT the chunk <= interval-length guarantee, so oversized
/// chunks produce the self-parallel overlap the peel rule prevents.
void naive_wrap(Schedule& schedule, const Q& start, std::size_t machines,
                const Q& speed, const std::vector<ActiveJob>& jobs, const Q& total) {
  Q position;  // offset into the machines * 1 sequential tape
  for (const ActiveJob& item : jobs) {
    Q remaining = item.density / speed;
    while (remaining.sign() > 0) {
      auto machine = static_cast<std::size_t>(position.floor().to_int64());
      check_internal(machine < machines, "naive_wrap: ran past the reserved tape");
      Q offset = position - Q(BigInt(static_cast<std::int64_t>(machine)));
      Q piece = min(remaining, Q(1) - offset);  // copy: the rhs may be a temporary
      schedule.add(machine,
                   Slice{start + offset, start + offset + piece, speed, item.job});
      position += piece;
      remaining -= piece;
    }
  }
  check_internal(position == total, "naive_wrap: tape accounting mismatch");
}

}  // namespace

AvrResult avr_schedule(const Instance& instance) {
  return avr_schedule(instance, AvrOptions{});
}

AvrResult avr_schedule(const Instance& instance, const AvrOptions& options,
                       obs::TraceSink* trace) {
  auto [t_begin, t_end] = integral_horizon(instance);
  AvrResult result{Schedule(instance.machines()), 0, {}};
  const std::size_t m = instance.machines();
  // Span before timer: the solve span covers stats.wall_seconds (see optimal.cpp).
  obs::SpanScope solve_span(trace, "avr.solve");
  obs::ScopedTimer timer;
  obs::HistogramData active_per_interval;  // density-list size per unit interval
  result.stats.counters.set("avr.unit_intervals",
                            static_cast<std::uint64_t>(t_end - t_begin));
  obs::emit(trace, obs::EventKind::kSolveStart, "avr.solve", instance.size(), m);

  for (std::int64_t t = t_begin; t < t_end; ++t) {
    Q interval_start(t);
    Q interval_end(t + 1);

    // Active jobs of I_t in order of non-increasing density.
    std::vector<ActiveJob> active;
    Q total_density;
    for (std::size_t k = 0; k < instance.size(); ++k) {
      const Job& job = instance.job(k);
      if (job.work.sign() > 0 && job.release <= interval_start &&
          interval_end <= job.deadline) {
        active.push_back(ActiveJob{k, job.density()});
        total_density += active.back().density;
      }
    }
    if (active.empty()) continue;
    result.stats.counters.add("avr.active_pairs", active.size());
    active_per_interval.record(active.size());
    std::sort(active.begin(), active.end(), [](const ActiveJob& a, const ActiveJob& b) {
      return b.density < a.density;  // descending; stable job order on ties
    });

    if (!options.enable_peeling) {
      // Ablation: uniform smear at Delta_t / m, no dedicated processors. Chunks
      // of jobs denser than the average exceed the unit interval; the naive wrap
      // then overlaps them across machines (caught by check_schedule).
      Q uniform = total_density / Q(static_cast<std::int64_t>(m));
      naive_wrap(result.schedule, interval_start, m, uniform, active,
                 total_density / uniform);
      continue;
    }

    // Peel off jobs denser than the average load of what is left (Fig. 3, line 3).
    std::size_t peeled = 0;
    Q pending_density = total_density;
    while (peeled < active.size() &&
           active[peeled].density * Q(static_cast<std::int64_t>(m - peeled)) >
               pending_density) {
      result.schedule.add(peeled, Slice{interval_start, interval_end,
                                        active[peeled].density, active[peeled].job});
      pending_density -= active[peeled].density;
      obs::emit(trace, obs::EventKind::kPeel, "avr.peel",
                static_cast<std::uint64_t>(t - t_begin), active[peeled].job,
                active[peeled].density.to_double());
      ++peeled;
      ++result.peel_events;
      ++result.stats.peel_events;
      check_internal(peeled < m || peeled == active.size(),
                     "avr_schedule: peeled all machines with jobs left");
    }

    // Uniform speed s = Delta' / |M| for the rest, wrapped over machines
    // [peeled, m) (Fig. 3, line 6).
    if (peeled == active.size()) continue;
    Q uniform_speed = pending_density / Q(static_cast<std::int64_t>(m - peeled));
    std::vector<Chunk> chunks;
    chunks.reserve(active.size() - peeled);
    for (std::size_t i = peeled; i < active.size(); ++i) {
      chunks.push_back(Chunk{active[i].job, active[i].density / uniform_speed});
    }
    mcnaughton_pack(result.schedule, interval_start, Q(1), peeled, m - peeled,
                    uniform_speed, chunks);
  }
  if (!active_per_interval.empty()) {
    result.stats.histograms["avr.active_per_interval"] = active_per_interval;
  }
  obs::emit(trace, obs::EventKind::kSolveEnd, "avr.solve", result.peel_events);
  result.stats.wall_seconds = timer.elapsed_seconds();
  return result;
}

double avr_energy(const Instance& instance, const PowerFunction& p) {
  return avr_schedule(instance).schedule.energy(p);
}

std::vector<Q> avr_density_profile(const Instance& instance) {
  auto [t_begin, t_end] = integral_horizon(instance);
  std::vector<Q> profile;
  profile.reserve(static_cast<std::size_t>(t_end - t_begin));
  for (std::int64_t t = t_begin; t < t_end; ++t) {
    Q total;
    for (const Job& job : instance.jobs()) {
      if (job.work.sign() > 0 && job.release <= Q(t) && Q(t + 1) <= job.deadline) {
        total += job.density();
      }
    }
    profile.push_back(std::move(total));
  }
  return profile;
}

}  // namespace mpss
