#include "mpss/online/simulator.hpp"

#include <algorithm>

#include "mpss/obs/histogram.hpp"
#include "mpss/obs/span.hpp"
#include "mpss/obs/trace.hpp"
#include "mpss/util/error.hpp"

namespace mpss {

OnlineRunResult run_replanning_online(const Instance& instance, const Planner& planner,
                                      obs::TraceSink* trace) {
  OnlineRunResult result{Schedule(instance.machines()), 0, {}};
  // Span before timer: the run span covers stats.wall_seconds (see optimal.cpp).
  obs::SpanScope run_span(trace, "online.run");
  obs::ScopedTimer total_timer;
  obs::emit(trace, obs::EventKind::kSolveStart, "online.run", instance.size(),
            instance.machines());

  std::vector<Q> events;
  for (const Job& job : instance.jobs()) {
    if (job.work.sign() > 0) events.push_back(job.release);
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  if (events.empty()) {
    obs::emit(trace, obs::EventKind::kSolveEnd, "online.run");
    result.stats.wall_seconds = total_timer.elapsed_seconds();
    return result;
  }

  const Q horizon_end = instance.horizon_end();
  std::vector<Q> remaining;
  remaining.reserve(instance.size());
  for (const Job& job : instance.jobs()) remaining.push_back(job.work);

  obs::HistogramData plan_us;  // planner wall microseconds per arrival

  for (std::size_t e = 0; e < events.size(); ++e) {
    // Covers the whole arrival step (planning + clipping + remapping); the
    // planner's own solve span nests underneath.
    obs::SpanScope arrival_span(trace, "online.arrival");
    const Q& t0 = events[e];

    // Available = released, unfinished. Their releases are reset to t0: the past
    // cannot be rescheduled, only the remaining work matters (Section 3.1).
    std::vector<std::size_t> available;
    std::vector<Job> sub_jobs;
    for (std::size_t k = 0; k < instance.size(); ++k) {
      if (instance.job(k).release <= t0 && remaining[k].sign() > 0) {
        available.push_back(k);
        sub_jobs.push_back(Job{t0, instance.job(k).deadline, remaining[k]});
      }
    }
    if (available.empty()) continue;

    double plan_seconds = 0.0;
    Schedule plan = [&] {
      // Destructor scope covers exactly the planner call, so "online.plan.ns" /
      // ".calls" measure planning alone (not clipping or remapping).
      obs::ScopedTimer plan_timer(plan_seconds);
      return planner(Instance(std::move(sub_jobs), instance.machines()));
    }();
    result.stats.counters.add("online.plan.ns",
                              static_cast<std::uint64_t>(plan_seconds * 1e9));
    result.stats.counters.add("online.plan.calls", 1);
    plan_us.record(static_cast<std::uint64_t>(plan_seconds * 1e6));
    ++result.replans;
    ++result.stats.replans;
    obs::emit(trace, obs::EventKind::kArrival, "online.arrival", e, available.size(),
              plan_seconds);
    check_internal(plan.machines() == instance.machines(),
                   "run_replanning_online: planner changed the machine count");

    const Q& t1 = e + 1 < events.size() ? events[e + 1] : horizon_end;
    Schedule executed = plan.clipped(t0, t1);
    for (std::size_t machine = 0; machine < executed.machines(); ++machine) {
      for (const Slice& slice : executed.machine(machine)) {
        Slice remapped = slice;
        remapped.job = available.at(slice.job);
        result.schedule.add(machine, std::move(remapped));
      }
    }
    for (std::size_t pos = 0; pos < available.size(); ++pos) {
      remaining[available[pos]] -= executed.work_on(pos);
      check_internal(remaining[available[pos]].sign() >= 0,
                     "run_replanning_online: executed more work than remained");
    }
  }

  for (const Q& rest : remaining) {
    check_internal(rest.is_zero(), "run_replanning_online: unfinished work at horizon");
  }
  result.stats.counters.set("online.arrivals", events.size());
  if (!plan_us.empty()) result.stats.histograms["online.plan_us"] = plan_us;
  obs::emit(trace, obs::EventKind::kSolveEnd, "online.run", result.replans);
  result.stats.wall_seconds = total_timer.elapsed_seconds();
  return result;
}

}  // namespace mpss
