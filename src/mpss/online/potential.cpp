#include "mpss/online/potential.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "mpss/core/optimal.hpp"
#include "mpss/core/schedule.hpp"
#include "mpss/util/error.hpp"

namespace mpss {
namespace {

/// One inter-arrival span of the OA replay: within [t0, t1) OA follows `plan`
/// (an optimal schedule for the work available at t0; job indices are original).
struct Epoch {
  Q t0;
  Q t1;
  Schedule plan{1};
};

/// Replays OA(m) keeping each epoch's full plan (run_replanning_online only keeps
/// the executed prefix, which is not enough to read off planned speeds).
std::pair<std::vector<Epoch>, Schedule> replay_oa(const Instance& instance) {
  std::vector<Q> events;
  for (const Job& job : instance.jobs()) {
    if (job.work.sign() > 0) events.push_back(job.release);
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  std::vector<Epoch> epochs;
  Schedule executed(instance.machines());
  std::vector<Q> remaining;
  for (const Job& job : instance.jobs()) remaining.push_back(job.work);

  for (std::size_t e = 0; e < events.size(); ++e) {
    const Q& t0 = events[e];
    std::vector<std::size_t> available;
    std::vector<Job> sub_jobs;
    for (std::size_t k = 0; k < instance.size(); ++k) {
      if (instance.job(k).release <= t0 && remaining[k].sign() > 0) {
        available.push_back(k);
        sub_jobs.push_back(Job{t0, instance.job(k).deadline, remaining[k]});
      }
    }
    if (available.empty()) continue;

    Schedule sub_plan = optimal_schedule(Instance(std::move(sub_jobs),
                                                  instance.machines())).schedule;
    // Remap plan job ids to the original instance.
    Schedule plan(instance.machines());
    for (std::size_t machine = 0; machine < sub_plan.machines(); ++machine) {
      for (const Slice& slice : sub_plan.machine(machine)) {
        Slice remapped = slice;
        remapped.job = available.at(slice.job);
        plan.add(machine, remapped);
      }
    }

    const Q& t1 = e + 1 < events.size() ? events[e + 1] : instance.horizon_end();
    Schedule slice = plan.clipped(t0, t1);
    executed.merge(slice);
    for (std::size_t k : available) remaining[k] -= slice.work_on(k);
    epochs.push_back(Epoch{t0, t1, std::move(plan)});
  }
  return {std::move(epochs), std::move(executed)};
}

}  // namespace

PotentialTrace oa_potential_trace(const Instance& instance, double alpha,
                                  double relative_tolerance) {
  check_arg(alpha > 1.0, "oa_potential_trace: alpha must be > 1");
  AlphaPower p(alpha);
  PotentialTrace trace;

  auto opt = optimal_schedule(instance);
  auto [epochs, oa_executed] = replay_oa(instance);
  if (epochs.empty()) return trace;

  const Q start = instance.horizon_start();
  const Q end = instance.horizon_end();
  const double bound_factor = std::pow(alpha, alpha);

  // Phi at time t, given the epoch whose plan OA is currently following.
  auto potential_at = [&](const Q& t, const Epoch& epoch) {
    // Group OA's unfinished jobs by their planned speed (sets J_i), and jobs OA
    // finished but OPT did not by OA's last speed (sets J'_i).
    std::map<Q, std::pair<double, double>> live;  // speed -> (W_OA, W_OPT)
    std::map<Q, double> finished;                 // last speed -> W'_OPT
    for (std::size_t k = 0; k < instance.size(); ++k) {
      const Job& job = instance.job(k);
      if (job.work.is_zero() || t < job.release) continue;  // not yet existing
      Q oa_remaining = job.work - oa_executed.work_on_in(k, start, t);
      Q opt_remaining = job.work - opt.schedule.work_on_in(k, start, t);
      if (oa_remaining.sign() > 0) {
        // Planned speed: OA processes each job at one constant speed per plan.
        auto slices = epoch.plan.slices_of(k);
        check_internal(!slices.empty(),
                       "oa_potential_trace: unfinished job missing from the plan");
        live[slices.front().speed].first += oa_remaining.to_double();
        live[slices.front().speed].second += opt_remaining.to_double();
      } else if (opt_remaining.sign() > 0) {
        auto slices = oa_executed.slices_of(k);
        check_internal(!slices.empty(),
                       "oa_potential_trace: finished job has no executed slices");
        finished[slices.back().speed] += opt_remaining.to_double();
      }
    }
    double phi = 0.0;
    for (const auto& [speed, works] : live) {
      phi += alpha * std::pow(speed.to_double(), alpha - 1.0) *
             (works.first - alpha * works.second);
    }
    for (const auto& [speed, work] : finished) {
      phi -= alpha * alpha * std::pow(speed.to_double(), alpha - 1.0) * work;
    }
    return phi;
  };

  auto record = [&](const Q& t, const Epoch& epoch) {
    PotentialSample sample;
    sample.time = t;
    sample.oa_energy = oa_executed.clipped(start, t).energy(p);
    sample.opt_energy = opt.schedule.clipped(start, t).energy(p);
    sample.potential = potential_at(t, epoch);
    sample.slack =
        bound_factor * sample.opt_energy - sample.oa_energy - sample.potential;
    double scale = 1.0 + bound_factor * sample.opt_energy;
    if (sample.slack < -relative_tolerance * scale) {
      trace.invariant_holds = false;
      trace.worst_violation = std::min(trace.worst_violation, sample.slack);
    }
    trace.samples.push_back(std::move(sample));
  };

  for (const Epoch& epoch : epochs) {
    record(epoch.t0, epoch);
    record((epoch.t0 + epoch.t1) / Q(2), epoch);
    record(epoch.t0 + (epoch.t1 - epoch.t0) * Q(9, 10), epoch);
  }
  record(end, epochs.back());
  trace.final_potential = trace.samples.back().potential;
  return trace;
}

}  // namespace mpss
