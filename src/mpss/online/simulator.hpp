#pragma once
// Event-driven online scheduling harness (substrate S10, see DESIGN.md).
//
// The online model of the paper: jobs arrive at their release times; on arrival the
// algorithm learns (d_i, w_i); it may re-plan the future arbitrarily. This harness
// factors the mechanics out of the algorithms: it replays release events in order,
// asks a Planner for a schedule of the currently available unfinished work, executes
// that plan until the next arrival, and tracks remaining work exactly.
//
// OA(m) is exactly this harness with the offline optimal algorithm as the planner.

#include <cstddef>
#include <functional>

#include "mpss/core/job.hpp"
#include "mpss/core/schedule.hpp"
#include "mpss/obs/stats.hpp"

namespace mpss {

/// Maps a sub-instance (the currently available unfinished jobs, with release times
/// set to the current time t0, and the machine count) to a feasible schedule for
/// them. Job indices in the returned schedule refer to positions in the
/// sub-instance.
using Planner = std::function<Schedule(const Instance& available)>;

/// Result of an online run: the executed schedule over the whole horizon (job
/// indices refer to the *original* instance) and the number of re-planning events.
struct OnlineRunResult {
  Schedule schedule;
  std::size_t replans = 0;
  /// Telemetry: `stats.replans` mirrors the field above; "online.arrivals" and
  /// per-arrival planner seconds ("online.plan.ns"/".calls") live in the
  /// counters. Planner-internal stats are merged in by oa_schedule.
  obs::SolveStats stats;
};

/// Replays `instance` online, re-planning at every distinct release time. The
/// produced schedule is feasible whenever the planner's schedules are (the harness
/// executes each plan only up to the next arrival, then hands the planner the
/// exact remaining work). With a non-null `trace` every arrival emits a kArrival
/// event (a=arrival index, b=available jobs, value=planner seconds).
[[nodiscard]] OnlineRunResult run_replanning_online(const Instance& instance,
                                                    const Planner& planner,
                                                    obs::TraceSink* trace = nullptr);

}  // namespace mpss
