#pragma once
// Adversarial-instance synthesis (S34): randomized hill-climbing over integer
// instances to maximize an online algorithm's empirical competitive ratio.
//
// The lower-bound constructions in the literature ([2] for AVR, [4] for any
// deterministic algorithm) are hand-crafted; this module searches for bad
// instances automatically, which both stress-tests the implementations (found
// ratios must stay below the proven upper bounds -- anything above would disprove
// the implementation, not the theorem) and maps how tight the bounds are at
// practical instance sizes (experiment E14).

#include <cstddef>
#include <cstdint>
#include <functional>

#include "mpss/core/job.hpp"

namespace mpss {

/// Which online algorithm the adversary attacks.
enum class OnlineAlgorithmKind { kOa, kAvr };

struct AdversaryConfig {
  std::size_t jobs = 6;
  std::size_t machines = 1;
  std::int64_t horizon = 12;  // releases/deadlines confined to [0, horizon]
  std::int64_t max_work = 8;
  double alpha = 2.0;
  std::size_t iterations = 300;  // mutation attempts per restart
  std::size_t restarts = 3;
  /// Optional candidate scorer: must return E_alg / E_OPT of the instance under
  /// P(s) = s^alpha. The E14 driver wires this to a BatchSolver so the online
  /// and exact solves of every step run concurrently and scoring rides the
  /// service's result cache (hill climbing revisits instances constantly --
  /// tie-accepting drift, reverted mutations). Null scores inline through the
  /// engines.
  std::function<double(OnlineAlgorithmKind, const Instance&, double)> evaluator;
};

struct AdversaryResult {
  Instance instance;        // the worst instance found
  double ratio = 0.0;       // E_alg / E_OPT on it
  std::size_t evaluations = 0;
};

/// Runs the search (deterministic for a given seed). The returned ratio is >= 1
/// and -- if the implementations are correct -- below the algorithm's proven
/// competitive bound; the tests assert both.
[[nodiscard]] AdversaryResult search_adversary(OnlineAlgorithmKind kind,
                                               const AdversaryConfig& config,
                                               std::uint64_t seed);

}  // namespace mpss
