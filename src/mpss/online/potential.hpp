#pragma once
// Empirical verification of Theorem 2's potential-function argument (S23).
//
// The paper proves OA(m) alpha^alpha-competitive via the potential
//
//   Phi(t) = a * sum_i s_i^(a-1) * (W_OA(i) - a * W_OPT(i))
//          - a^2 * sum_i (s'_i)^(a-1) * W'_OPT(i)
//
// where J_1, J_2, ... are OA's current job sets at speeds s_1 > s_2 > ...,
// W_OA(i) / W_OPT(i) are the remaining works of those jobs under OA and OPT, and
// the primed sum ranges over jobs OA has finished but OPT has not (grouped by the
// speed OA last used). The proof shows (a) Phi never increases at arrivals and
// completions and (b) while working,
// dE_OA + dPhi <= alpha^alpha * dE_OPT; integrating gives the invariant
//
//   E_OA(t) + Phi(t) <= alpha^alpha * E_OPT(t)      for all t,
//
// which at the horizon (Phi = 0) is Theorem 2. This module replays OA against the
// exact offline optimum, evaluates Phi at sampled times, and checks the invariant
// -- the closest an implementation can get to "running" the proof.

#include <cstddef>
#include <vector>

#include "mpss/core/job.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// One evaluation point of the invariant.
struct PotentialSample {
  Q time;
  double oa_energy = 0.0;   // E_OA(t): energy OA has consumed by time t
  double opt_energy = 0.0;  // E_OPT(t)
  double potential = 0.0;   // Phi(t)
  /// Slack of the invariant: alpha^alpha * E_OPT - E_OA - Phi (>= 0 when it holds).
  double slack = 0.0;
};

struct PotentialTrace {
  std::vector<PotentialSample> samples;
  bool invariant_holds = true;
  /// Most negative slack observed (0 when the invariant always held).
  double worst_violation = 0.0;
  /// Final Phi (should be ~0: both algorithms finished everything).
  double final_potential = 0.0;
};

/// Replays OA(m) on `instance` with P(s) = s^alpha, evaluating the Theorem 2
/// potential at every arrival epoch (start, midpoint and late point of each
/// inter-arrival span, plus the horizon end). `relative_tolerance` absorbs the
/// double-precision energy evaluation.
[[nodiscard]] PotentialTrace oa_potential_trace(const Instance& instance, double alpha,
                                                double relative_tolerance = 1e-9);

}  // namespace mpss
