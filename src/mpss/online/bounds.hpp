#pragma once
// Closed-form competitive-ratio bounds quoted in the paper (substrate S19).
// Each experiment table prints these next to the measured ratios.

#include <cstddef>

namespace mpss {

/// Theorem 2: OA(m) is alpha^alpha-competitive (same as single-processor OA [5]).
[[nodiscard]] double oa_competitive_bound(double alpha);

/// [15]: single-processor AVR is (2*alpha)^alpha / 2-competitive.
[[nodiscard]] double avr_single_competitive_bound(double alpha);

/// Theorem 3: AVR(m) is (2*alpha)^alpha / 2 + 1-competitive.
[[nodiscard]] double avr_multi_competitive_bound(double alpha);

/// [2]: lower bound ((2 - delta) * alpha)^alpha / 2 for AVR, delta -> 0 as
/// alpha -> infinity. Evaluated for a caller-chosen delta.
[[nodiscard]] double avr_lower_bound(double alpha, double delta);

/// [4]: any deterministic online algorithm is at least e^(alpha-1) / alpha
/// competitive.
[[nodiscard]] double deterministic_lower_bound(double alpha);

/// [5]: the BKP algorithm attains 2 * (alpha / (alpha - 1)) * e^alpha
/// (as quoted in the paper's related-work section).
[[nodiscard]] double bkp_competitive_bound(double alpha);

/// Exact Bell number B_n (as double; grows fast -- n <= 25 stays exact in double).
[[nodiscard]] double bell_number(std::size_t n);

/// Fractional Bell number via Dobinski's formula B_alpha = (1/e) * sum k^alpha/k!,
/// the quantity appearing in the non-migratory bounds of [8].
[[nodiscard]] double bell_number_fractional(double alpha);

/// [8]: randomized non-migratory offline approximation factor B_alpha.
[[nodiscard]] double nonmigratory_approx_bound(double alpha);

}  // namespace mpss
