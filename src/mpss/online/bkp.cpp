#include "mpss/online/bkp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mpss/util/error.hpp"

namespace mpss {
namespace {

constexpr double kEuler = 2.718281828459045;

struct DJob {
  double release;
  double deadline;
  double work;
  double remaining;
};

/// BKP's speed at time `t`: e * max over candidate horizons t2 of
/// w(t1, t, t2) / (e * (t2 - t)) with t1 = e*t - (e-1)*t2. Candidates: every
/// deadline (where the maximand jumps) and every t2 at which t1 crosses a release.
double bkp_speed(const std::vector<DJob>& jobs, double t) {
  std::vector<double> candidates;
  for (const DJob& job : jobs) {
    if (job.deadline > t) candidates.push_back(job.deadline);
    // t1(t2) == release  <=>  t2 == (e*t - release) / (e - 1)
    double crossing = (kEuler * t - job.release) / (kEuler - 1.0);
    if (crossing > t) candidates.push_back(crossing);
  }
  double best = 0.0;
  for (double t2 : candidates) {
    double t1 = kEuler * t - (kEuler - 1.0) * t2;
    double work = 0.0;
    for (const DJob& job : jobs) {
      if (job.release >= t1 && job.release <= t && job.deadline <= t2) {
        work += job.work;
      }
    }
    best = std::max(best, work / (t2 - t));
  }
  return best;  // the e's cancel: e * w / (e * (t2 - t))
}

}  // namespace

BkpResult bkp_schedule(const Instance& instance, double alpha,
                       std::size_t steps_per_unit) {
  check_arg(instance.machines() == 1, "bkp_schedule: single-processor algorithm");
  check_arg(alpha > 1.0, "bkp_schedule: alpha must be > 1");
  check_arg(steps_per_unit >= 1, "bkp_schedule: steps_per_unit must be >= 1");

  BkpResult result;
  std::vector<DJob> jobs;
  jobs.reserve(instance.size());
  for (const Job& job : instance.jobs()) {
    if (job.work.sign() > 0) {
      jobs.push_back(DJob{job.release.to_double(), job.deadline.to_double(),
                          job.work.to_double(), job.work.to_double()});
    }
  }
  if (jobs.empty()) return result;

  // Grid: release/deadline breakpoints, each gap subdivided uniformly.
  std::vector<double> breakpoints;
  for (const DJob& job : jobs) {
    breakpoints.push_back(job.release);
    breakpoints.push_back(job.deadline);
  }
  std::sort(breakpoints.begin(), breakpoints.end());
  breakpoints.erase(std::unique(breakpoints.begin(), breakpoints.end()),
                    breakpoints.end());
  std::vector<double> grid;
  for (std::size_t i = 0; i + 1 < breakpoints.size(); ++i) {
    double gap = breakpoints[i + 1] - breakpoints[i];
    auto pieces = static_cast<std::size_t>(
        std::ceil(gap * static_cast<double>(steps_per_unit)));
    pieces = std::max<std::size_t>(pieces, 1);
    for (std::size_t p = 0; p < pieces; ++p) {
      grid.push_back(breakpoints[i] + gap * static_cast<double>(p) /
                                          static_cast<double>(pieces));
    }
  }
  grid.push_back(breakpoints.back());

  for (std::size_t step = 0; step + 1 < grid.size(); ++step) {
    double t = grid[step];
    double t_next = grid[step + 1];
    double speed = bkp_speed(jobs, t);
    result.speed_profile.emplace_back(t, speed);
    if (speed <= 0.0) continue;

    // EDF among released unfinished jobs, at constant speed within the step.
    double now = t;
    while (now < t_next) {
      DJob* pick = nullptr;
      for (DJob& job : jobs) {
        if (job.release <= now + 1e-12 && job.remaining > 1e-12) {
          if (pick == nullptr || job.deadline < pick->deadline) pick = &job;
        }
      }
      if (pick == nullptr) break;
      double finish = now + pick->remaining / speed;
      double until = std::min(finish, t_next);
      result.energy += std::pow(speed, alpha) * (until - now);
      pick->remaining -= speed * (until - now);
      if (pick->remaining < 1e-12) pick->remaining = 0.0;
      now = until;
    }

    // Record discretization-induced deadline misses crossing this step boundary.
    for (const DJob& job : jobs) {
      if (job.deadline <= t_next && job.deadline > t && job.remaining > 0.0) {
        result.max_deadline_shortfall =
            std::max(result.max_deadline_shortfall, job.remaining);
      }
    }
  }

  for (const DJob& job : jobs) result.unfinished_work += job.remaining;
  return result;
}

}  // namespace mpss
