#include "mpss/online/bounds.hpp"

#include <cmath>
#include <vector>

#include "mpss/util/error.hpp"

namespace mpss {

double oa_competitive_bound(double alpha) {
  check_arg(alpha > 1.0, "oa_competitive_bound: alpha must be > 1");
  return std::pow(alpha, alpha);
}

double avr_single_competitive_bound(double alpha) {
  check_arg(alpha > 1.0, "avr_single_competitive_bound: alpha must be > 1");
  return std::pow(2.0 * alpha, alpha) / 2.0;
}

double avr_multi_competitive_bound(double alpha) {
  return avr_single_competitive_bound(alpha) + 1.0;
}

double avr_lower_bound(double alpha, double delta) {
  check_arg(alpha > 1.0, "avr_lower_bound: alpha must be > 1");
  check_arg(delta >= 0.0 && delta < 2.0, "avr_lower_bound: delta must be in [0, 2)");
  return std::pow((2.0 - delta) * alpha, alpha) / 2.0;
}

double deterministic_lower_bound(double alpha) {
  check_arg(alpha > 1.0, "deterministic_lower_bound: alpha must be > 1");
  return std::exp(alpha - 1.0) / alpha;
}

double bkp_competitive_bound(double alpha) {
  check_arg(alpha > 1.0, "bkp_competitive_bound: alpha must be > 1");
  return 2.0 * (alpha / (alpha - 1.0)) * std::exp(alpha);
}

double bell_number(std::size_t n) {
  // Bell triangle (Aitken's array).
  std::vector<double> row{1.0};
  for (std::size_t i = 1; i <= n; ++i) {
    std::vector<double> next(i + 1);
    next[0] = row.back();
    for (std::size_t j = 1; j <= i; ++j) next[j] = next[j - 1] + row[j - 1];
    row = std::move(next);
  }
  return row[0];
}

double bell_number_fractional(double alpha) {
  check_arg(alpha >= 0.0, "bell_number_fractional: alpha must be >= 0");
  // Dobinski: B_alpha = e^{-1} * sum_{k>=1} k^alpha / k!. Terms decay factorially;
  // 200 terms is far past convergence for any alpha the experiments use.
  double sum = 0.0;
  double factorial_log = 0.0;  // log(k!)
  for (int k = 1; k <= 200; ++k) {
    factorial_log += std::log(static_cast<double>(k));
    double term = std::exp(alpha * std::log(static_cast<double>(k)) - factorial_log);
    sum += term;
    if (term < 1e-18 * sum && k > static_cast<int>(alpha) + 2) break;
  }
  return sum / std::exp(1.0);
}

double nonmigratory_approx_bound(double alpha) { return bell_number_fractional(alpha); }

}  // namespace mpss
