#pragma once
// Algorithm OA(m) -- Optimal Available for m parallel processors (Section 3.1).
//
// "Whenever a new job arrives, compute an optimal schedule for the currently
// available unfinished jobs. This can be done using the algorithm of Section 2."
//
// Theorem 2: OA(m) is alpha^alpha-competitive for P(s) = s^alpha, exactly matching
// the single-processor ratio of [5]. Experiment E2 measures the empirical ratio
// against the true optimum on the same instance.

#include "mpss/core/job.hpp"
#include "mpss/core/power.hpp"
#include "mpss/online/simulator.hpp"

namespace mpss {

/// Runs OA(m) on `instance` (any m >= 1; m = 1 reproduces classic OA). The
/// returned schedule covers the whole horizon and is always feasible. With a
/// non-null `trace` the harness's arrival events are recorded; the returned
/// stats aggregate the per-arrival exact-engine solves (phases, flow rounds,
/// removals) on top of the harness's own counters.
[[nodiscard]] OnlineRunResult oa_schedule(const Instance& instance,
                                          obs::TraceSink* trace);

[[nodiscard]] OnlineRunResult oa_schedule(const Instance& instance);

/// Convenience: OA(m) energy under P (runs the simulation and measures).
[[nodiscard]] double oa_energy(const Instance& instance, const PowerFunction& p);

}  // namespace mpss
