#include "mpss/sim/executor.hpp"

#include <chrono>
#include <sstream>

#include "mpss/obs/registry.hpp"
#include "mpss/obs/span.hpp"

namespace mpss {

double ExecutionTrace::mean_flow_time() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const JobExecution& job : jobs) {
    if (job.scheduled) {
      sum += job.flow_time.to_double();
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

Q ExecutionTrace::max_flow_time() const {
  Q best(0);
  for (const JobExecution& job : jobs) {
    if (job.scheduled) best = max(best, job.flow_time);
  }
  return best;
}

ExecutionTrace execute_schedule(const Instance& instance, const Schedule& schedule) {
  // nullptr sink -> SpanScope falls back to the Registry's process-wide sink,
  // so sweep runs show up in traces without threading a sink parameter through.
  obs::SpanScope run_span(nullptr, "executor.run");
  const auto run_start = std::chrono::steady_clock::now();
  ExecutionTrace trace;
  trace.jobs.resize(instance.size());
  trace.machine_busy.assign(schedule.machines(), Q(0));

  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    for (const Slice& slice : schedule.machine(machine)) {
      trace.machine_busy[machine] += slice.duration();
      trace.makespan = max(trace.makespan, slice.end);
    }
  }

  for (std::size_t k = 0; k < instance.size(); ++k) {
    const Job& job = instance.job(k);
    auto slices = schedule.slices_of(k);  // time-sorted across machines
    JobExecution& execution = trace.jobs[k];
    if (slices.empty()) {
      if (job.work.sign() > 0) {
        std::ostringstream os;
        os << "job " << k << " has positive work but never runs";
        trace.anomalies.push_back(os.str());
      }
      continue;
    }
    execution.scheduled = true;
    execution.first_start = slices.front().start;

    Q done;
    bool completed = false;
    for (std::size_t i = 0; i < slices.size(); ++i) {
      if (i > 0 && slices[i].start < slices[i - 1].end) {
        std::ostringstream os;
        os << "job " << k << " runs on two machines simultaneously at t="
           << slices[i].start;
        trace.anomalies.push_back(os.str());
      }
      if (completed) {
        std::ostringstream os;
        os << "job " << k << " keeps running after completing its work at t="
           << execution.completion;
        trace.anomalies.push_back(os.str());
        break;
      }
      Q slice_work = slices[i].work();
      if (job.work <= done + slice_work) {
        // Completes inside this slice; solve for the exact instant.
        execution.completion =
            slices[i].start + (job.work - done) / slices[i].speed;
        completed = true;
        if (done + slice_work != job.work && i + 1 == slices.size()) {
          std::ostringstream os;
          os << "job " << k << " overshoots its work by "
             << (done + slice_work - job.work);
          trace.anomalies.push_back(os.str());
        }
      }
      done += slice_work;
    }
    if (!completed) {
      std::ostringstream os;
      os << "job " << k << " finishes only " << done << " of " << job.work;
      trace.anomalies.push_back(os.str());
      execution.completion = slices.back().end;
    }
    execution.flow_time = execution.completion - job.release;
  }

  // Per-thread pattern: accumulate locally, merge once (execute_schedule runs
  // concurrently in the experiment sweeps).
  obs::Counters local;
  local.add("executor.runs");
  local.add("executor.slices", schedule.slice_count());
  local.add("executor.anomalies", trace.anomalies.size());
  obs::Registry::global().merge(local);
  obs::Registry::global()
      .histogram("executor.run_us")
      .record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - run_start)
              .count()));
  return trace;
}

}  // namespace mpss
