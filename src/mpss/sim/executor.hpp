#pragma once
// Schedule execution semantics (S35): replay a schedule the way a dispatcher
// would and extract per-job timing facts -- first start, exact completion time,
// flow time (completion - release) -- plus machine utilization and dynamic
// consistency checks.
//
// check_schedule() answers "is this schedule legal?"; execute_schedule() answers
// "what does running it feel like?". The deadline-based energy model of the
// paper says nothing about responsiveness, and energy-optimal schedules
// procrastinate by design (work is stretched to deadlines); experiment E15 uses
// this module to quantify that energy/responsiveness trade-off across the
// library's strategies.

#include <cstddef>
#include <string>
#include <vector>

#include "mpss/core/job.hpp"
#include "mpss/core/schedule.hpp"

namespace mpss {

/// Per-job timing facts extracted from a schedule.
struct JobExecution {
  bool scheduled = false;  // false for zero-work jobs (they never run)
  Q first_start;           // start of the job's first slice
  Q completion;            // exact time its cumulative work reaches w_k
  Q flow_time;             // completion - release (0 when never scheduled)
};

struct ExecutionTrace {
  std::vector<JobExecution> jobs;  // indexed like the instance
  Q makespan;                      // end of the last slice (0 for empty)
  std::vector<Q> machine_busy;     // busy time per machine
  /// Dynamic anomalies: unfinished work, overshoot past w_k, same-job overlap.
  /// Empty iff the execution is consistent.
  std::vector<std::string> anomalies;

  [[nodiscard]] bool consistent() const { return anomalies.empty(); }
  /// Mean flow time over scheduled jobs (0 when none).
  [[nodiscard]] double mean_flow_time() const;
  /// Largest flow time over scheduled jobs (0 when none).
  [[nodiscard]] Q max_flow_time() const;
};

/// Replays `schedule` against `instance`. Never throws on bad schedules -- it
/// reports what actually happens (anomalies), so it can also dissect the broken
/// schedules the ablation experiments produce.
[[nodiscard]] ExecutionTrace execute_schedule(const Instance& instance,
                                              const Schedule& schedule);

}  // namespace mpss
