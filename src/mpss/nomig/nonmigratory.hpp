#pragma once
// Non-migratory multi-processor speed scaling baselines (substrate S15).
//
// The paper contrasts its migratory polynomial-time result with the non-migratory
// variant, which is NP-hard even for unit works [1]; [8] gives a randomized
// B_alpha-approximation. Here "non-migratory" means each job is assigned to one
// processor and never moves; once the assignment is fixed, each processor is an
// independent single-processor problem solved optimally by YDS.
//
// We provide: an exact solver (exhaustive assignment enumeration; exponential, for
// tiny instances only), a greedy best-fit heuristic, round-robin, and best-of-k
// random assignments. Experiment E7 compares them against the migratory optimum to
// quantify the value of migration.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mpss/core/job.hpp"
#include "mpss/core/power.hpp"
#include "mpss/core/schedule.hpp"

namespace mpss {

/// A non-migratory solution: per-job machine assignment plus the induced schedule
/// (each machine scheduled by YDS on its assigned jobs).
struct NonMigratoryResult {
  std::vector<std::size_t> assignment;  // job -> machine
  Schedule schedule;
  double energy = 0.0;
};

/// Builds the YDS-per-machine schedule for a fixed assignment and measures it.
/// `assignment.size()` must equal `instance.size()` and every entry must be
/// < machines().
[[nodiscard]] NonMigratoryResult schedule_for_assignment(
    const Instance& instance, std::vector<std::size_t> assignment,
    const PowerFunction& p);

/// Exact optimum over all m^n assignments. Throws std::invalid_argument when
/// m^n exceeds `enumeration_limit` (default 2^20) -- the problem is NP-hard, this
/// is a tiny-instance oracle, not an algorithm.
[[nodiscard]] NonMigratoryResult nonmigratory_exact(
    const Instance& instance, const PowerFunction& p,
    std::uint64_t enumeration_limit = 1u << 20);

/// Greedy best-fit: jobs in order of non-increasing work; each job goes to the
/// machine whose YDS energy increases the least.
[[nodiscard]] NonMigratoryResult nonmigratory_greedy(const Instance& instance,
                                                     const PowerFunction& p);

/// Jobs assigned round-robin by release-time order.
[[nodiscard]] NonMigratoryResult nonmigratory_round_robin(const Instance& instance,
                                                          const PowerFunction& p);

/// Best of `tries` uniformly random assignments (seeded; the flavour of the
/// randomized rounding in [8] without its LP guidance).
[[nodiscard]] NonMigratoryResult nonmigratory_random_best(const Instance& instance,
                                                          const PowerFunction& p,
                                                          std::uint64_t seed,
                                                          std::size_t tries);

}  // namespace mpss
