#include "mpss/nomig/nonmigratory.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "mpss/core/yds.hpp"
#include "mpss/util/error.hpp"
#include "mpss/util/random.hpp"

namespace mpss {
namespace {

/// YDS energy of one machine's job set (positions in `jobs` are irrelevant to the
/// energy, so no remapping needed here).
double machine_energy(const std::vector<Job>& jobs, const PowerFunction& p) {
  if (jobs.empty()) return 0.0;
  YdsResult result = yds_schedule(Instance(jobs, 1));
  return result.schedule.energy(p);
}

}  // namespace

NonMigratoryResult schedule_for_assignment(const Instance& instance,
                                           std::vector<std::size_t> assignment,
                                           const PowerFunction& p) {
  check_arg(assignment.size() == instance.size(),
            "schedule_for_assignment: assignment size mismatch");
  const std::size_t m = instance.machines();
  for (std::size_t machine : assignment) {
    check_arg(machine < m, "schedule_for_assignment: machine index out of range");
  }

  NonMigratoryResult result{std::move(assignment), Schedule(m), 0.0};
  for (std::size_t machine = 0; machine < m; ++machine) {
    std::vector<Job> jobs;
    std::vector<std::size_t> ids;
    for (std::size_t k = 0; k < instance.size(); ++k) {
      if (result.assignment[k] == machine) {
        jobs.push_back(instance.job(k));
        ids.push_back(k);
      }
    }
    if (jobs.empty()) continue;
    YdsResult yds = yds_schedule(Instance(jobs, 1));
    for (const Slice& slice : yds.schedule.machine(0)) {
      Slice remapped = slice;
      remapped.job = ids[slice.job];
      result.schedule.add(machine, std::move(remapped));
    }
  }
  result.energy = result.schedule.energy(p);
  return result;
}

NonMigratoryResult nonmigratory_exact(const Instance& instance, const PowerFunction& p,
                                      std::uint64_t enumeration_limit) {
  const std::size_t n = instance.size();
  const std::size_t m = instance.machines();
  double combinations = std::pow(static_cast<double>(m), static_cast<double>(n));
  check_arg(combinations <= static_cast<double>(enumeration_limit),
            "nonmigratory_exact: m^n exceeds the enumeration limit");

  std::vector<std::size_t> assignment(n, 0);
  std::vector<std::size_t> best_assignment = assignment;
  double best_energy = std::numeric_limits<double>::infinity();

  for (;;) {
    // Energy of the current assignment, machine by machine.
    double energy = 0.0;
    for (std::size_t machine = 0; machine < m && energy < best_energy; ++machine) {
      std::vector<Job> jobs;
      for (std::size_t k = 0; k < n; ++k) {
        if (assignment[k] == machine) jobs.push_back(instance.job(k));
      }
      energy += machine_energy(jobs, p);
    }
    if (energy < best_energy) {
      best_energy = energy;
      best_assignment = assignment;
    }
    // Next assignment in base-m counting order.
    std::size_t pos = 0;
    while (pos < n && ++assignment[pos] == m) assignment[pos++] = 0;
    if (pos == n) break;
  }
  return schedule_for_assignment(instance, std::move(best_assignment), p);
}

NonMigratoryResult nonmigratory_greedy(const Instance& instance,
                                       const PowerFunction& p) {
  const std::size_t n = instance.size();
  const std::size_t m = instance.machines();

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return instance.job(b).work < instance.job(a).work;  // big jobs first
  });

  std::vector<std::vector<Job>> machine_jobs(m);
  std::vector<double> machine_cost(m, 0.0);
  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t job_index : order) {
    std::size_t best_machine = 0;
    double best_delta = std::numeric_limits<double>::infinity();
    for (std::size_t machine = 0; machine < m; ++machine) {
      std::vector<Job> trial = machine_jobs[machine];
      trial.push_back(instance.job(job_index));
      double delta = machine_energy(trial, p) - machine_cost[machine];
      if (delta < best_delta) {
        best_delta = delta;
        best_machine = machine;
      }
    }
    machine_jobs[best_machine].push_back(instance.job(job_index));
    machine_cost[best_machine] += best_delta;
    assignment[job_index] = best_machine;
  }
  return schedule_for_assignment(instance, std::move(assignment), p);
}

NonMigratoryResult nonmigratory_round_robin(const Instance& instance,
                                            const PowerFunction& p) {
  const std::size_t n = instance.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return instance.job(a).release < instance.job(b).release;
  });
  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    assignment[order[i]] = i % instance.machines();
  }
  return schedule_for_assignment(instance, std::move(assignment), p);
}

NonMigratoryResult nonmigratory_random_best(const Instance& instance,
                                            const PowerFunction& p, std::uint64_t seed,
                                            std::size_t tries) {
  check_arg(tries >= 1, "nonmigratory_random_best: need at least one try");
  Xoshiro256 rng(seed);
  const std::size_t n = instance.size();
  const std::size_t m = instance.machines();

  std::vector<std::size_t> best_assignment;
  double best_energy = std::numeric_limits<double>::infinity();
  for (std::size_t attempt = 0; attempt < tries; ++attempt) {
    std::vector<std::size_t> assignment(n);
    for (std::size_t k = 0; k < n; ++k) {
      assignment[k] = static_cast<std::size_t>(rng.below(m));
    }
    double energy = 0.0;
    for (std::size_t machine = 0; machine < m; ++machine) {
      std::vector<Job> jobs;
      for (std::size_t k = 0; k < n; ++k) {
        if (assignment[k] == machine) jobs.push_back(instance.job(k));
      }
      energy += machine_energy(jobs, p);
    }
    if (energy < best_energy) {
      best_energy = energy;
      best_assignment = std::move(assignment);
    }
  }
  return schedule_for_assignment(instance, std::move(best_assignment), p);
}

}  // namespace mpss
