#include "mpss/flow/push_relabel.hpp"

#include <algorithm>

namespace mpss {

template <typename Cap>
Cap PushRelabelNetwork<Cap>::max_flow(std::size_t source, std::size_t sink) {
  check_arg(source < adjacency_.size() && sink < adjacency_.size(),
            "PushRelabelNetwork::max_flow: node index out of range");
  check_arg(source != sink, "PushRelabelNetwork::max_flow: source == sink");
  const std::size_t n = adjacency_.size();
  stats_ = PushRelabelKernelStats{};
  excess_.assign(n, Cap{});
  height_.assign(n, 0);
  height_[source] = n;
  std::vector<std::size_t> current(n, 0);  // current-arc pointers
  active_.clear();

  auto activate = [&](std::size_t node) {
    if (node != source && node != sink && !(excess_[node] < Cap{}) &&
        Cap{} < excess_[node]) {
      active_.push_back(node);
    }
  };

  // Saturate all source arcs.
  for (std::size_t arc : adjacency_[source]) {
    if ((arc & 1) != 0) continue;  // skip reverse arcs rooted elsewhere
    Cap amount = arcs_[arc].residual;
    if (!(Cap{} < amount)) continue;
    arcs_[arc].residual -= amount;
    arcs_[arc ^ 1].residual += amount;
    excess_[arcs_[arc].target] += amount;
    excess_[source] -= amount;
    activate(arcs_[arc].target);
  }

  while (!active_.empty()) {
    std::size_t node = active_.back();
    if (!(Cap{} < excess_[node])) {
      active_.pop_back();
      continue;
    }
    bool pushed = false;
    for (std::size_t& it = current[node]; it < adjacency_[node].size(); ++it) {
      std::size_t arc = adjacency_[node][it];
      Arc& forward = arcs_[arc];
      if (!(Cap{} < forward.residual)) continue;
      if (height_[node] != height_[forward.target] + 1) continue;
      Cap amount = std::min(excess_[node], forward.residual);
      forward.residual -= amount;
      arcs_[arc ^ 1].residual += amount;
      bool target_was_inactive = !(Cap{} < excess_[forward.target]);
      excess_[forward.target] += amount;
      excess_[node] -= amount;
      if (target_was_inactive) activate(forward.target);
      ++stats_.pushes;
      pushed = true;
      if (!(Cap{} < excess_[node])) break;
    }
    if (!pushed && Cap{} < excess_[node]) {
      // Relabel: one above the lowest residual neighbour. An active node always
      // has a residual arc (the reverse of whatever filled it).
      std::size_t best = static_cast<std::size_t>(-1);
      for (std::size_t arc : adjacency_[node]) {
        if (Cap{} < arcs_[arc].residual) {
          best = std::min(best, height_[arcs_[arc].target] + 1);
        }
      }
      check_internal(best != static_cast<std::size_t>(-1),
                     "push_relabel: active node with no residual arcs");
      height_[node] = best;
      current[node] = 0;
      ++stats_.relabels;
    }
  }

  solved_ = true;
  return excess_[sink];
}

template class PushRelabelNetwork<std::int64_t>;
template class PushRelabelNetwork<Q>;

}  // namespace mpss
