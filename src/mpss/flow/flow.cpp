#include "mpss/flow/dinic.hpp"

namespace mpss {

template class FlowNetwork<std::int64_t>;
template class FlowNetwork<double>;
template class FlowNetwork<Q>;

}  // namespace mpss
