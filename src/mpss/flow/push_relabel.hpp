#pragma once
// Push-relabel (highest-label, with gap heuristic) maximum-flow solver -- an
// independent second implementation of substrate S3.
//
// Why two solvers: the offline optimal algorithm's correctness rides entirely on
// max-flow values, so the test suite cross-checks Dinic against push-relabel on
// randomized networks (classic N-version testing for the load-bearing kernel).
// Dinic remains the default inside the scheduler; push-relabel is also the faster
// choice on dense graphs, which bench_flow quantifies.

#include <cstddef>
#include <vector>

#include "mpss/util/error.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// Work counters of one PushRelabelNetwork::max_flow() run (the push-relabel
/// analogue of FlowKernelStats; bench_flow reports both side by side).
struct PushRelabelKernelStats {
  std::size_t pushes = 0;
  std::size_t relabels = 0;
};

/// Standalone solver mirroring FlowNetwork's interface (add_nodes/add_edge/
/// max_flow/flow). Kept separate rather than templated-over-strategy so each
/// algorithm stays independently readable and independently buggy.
template <typename Cap>
class PushRelabelNetwork {
 public:
  using EdgeId = std::size_t;

  std::size_t add_nodes(std::size_t count) {
    std::size_t first = adjacency_.size();
    adjacency_.resize(adjacency_.size() + count);
    return first;
  }
  std::size_t add_node() { return add_nodes(1); }
  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }

  EdgeId add_edge(std::size_t from, std::size_t to, Cap capacity) {
    check_arg(from < adjacency_.size() && to < adjacency_.size(),
              "PushRelabelNetwork::add_edge: node index out of range");
    check_arg(!(capacity < Cap{}), "PushRelabelNetwork::add_edge: negative capacity");
    EdgeId id = edge_arc_.size();
    edge_arc_.push_back(arcs_.size());
    adjacency_[from].push_back(arcs_.size());
    arcs_.push_back(Arc{to, capacity});
    adjacency_[to].push_back(arcs_.size());
    arcs_.push_back(Arc{from, Cap{}});
    return id;
  }

  Cap max_flow(std::size_t source, std::size_t sink);

  [[nodiscard]] Cap flow(EdgeId id) const {
    check_internal(solved_, "PushRelabelNetwork::flow before max_flow");
    return arcs_[edge_arc_.at(id) ^ 1].residual;
  }

  /// Work counters of the last max_flow() run (zeros before the first run).
  [[nodiscard]] const PushRelabelKernelStats& kernel_stats() const { return stats_; }

 private:
  struct Arc {
    std::size_t target;
    Cap residual;
  };

  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<Arc> arcs_;
  std::vector<std::size_t> edge_arc_;
  std::vector<Cap> excess_;
  std::vector<std::size_t> height_;
  std::vector<std::size_t> active_;  // stack of active nodes
  PushRelabelKernelStats stats_;
  bool solved_ = false;
};

extern template class PushRelabelNetwork<std::int64_t>;
extern template class PushRelabelNetwork<Q>;

}  // namespace mpss
