#pragma once
// Maximum-flow solver (Dinic's algorithm), templated on the capacity type
// (substrate S3, see DESIGN.md).
//
// The offline optimal scheduler instantiates this with exact rationals (mpss::Q):
// Dinic performs O(V) blocking-flow phases of O(VE) augmentations each regardless of
// capacity magnitudes, so exact arithmetic never affects termination. int64 and
// double instantiations exist for micro-benchmarks and generic reuse.
//
// Beyond the classic one-shot max_flow(), the network supports warm-started
// incremental rounds (the offline engines' candidate-removal loop, DESIGN S42):
// set_capacity() adjusts an edge in place, retract_flow() removes flow from an
// edge while keeping its twin consistent (callers retract along whole
// source-to-sink paths to preserve conservation), and max_flow_resume()
// continues augmenting from the current feasible flow instead of from zero.

#include <cstddef>
#include <limits>
#include <vector>

#include "mpss/util/error.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// Capacity-type policy. Specializations provide zero and the positivity test
/// (strict for exact types, epsilon-guarded for floating point so blocking-flow
/// loops cannot spin on 1e-18 residuals).
template <typename Cap>
struct FlowTraits {
  static Cap zero() { return Cap{}; }
  static bool is_positive(const Cap& value) { return value > Cap{}; }
};

template <>
struct FlowTraits<double> {
  static constexpr double kEpsilon = 1e-12;
  static double zero() { return 0.0; }
  static bool is_positive(double value) { return value > kEpsilon; }
};

/// Exact rationals: positivity is a sign read, not a comparison against a
/// constructed zero -- keeps the hot residual tests off Rational's operator<
/// (which cross-multiplies) and on the numerator's inline-int64 fast path.
template <>
struct FlowTraits<Rational> {
  static Rational zero() { return Rational(); }
  static bool is_positive(const Rational& value) { return value.sign() > 0; }
};

/// Work counters of one max_flow() / max_flow_resume() run, exposed for the
/// observability layer (obs::SolveStats aggregates them across the scheduler's
/// feasibility tests). Reset at the start of every solver call, so callers that
/// aggregate read them after each call.
struct FlowKernelStats {
  /// Level graphs built (BFS passes), including the final failed one.
  std::size_t bfs_rounds = 0;
  /// Augmenting paths pushed across all blocking-flow phases.
  std::size_t augmenting_paths = 0;
};

/// Directed flow network with residual arcs. Nodes are dense indices created via
/// add_node(); arcs keep their insertion id so callers can read per-edge flow after
/// max_flow() (the scheduler converts edge flows into processing times).
template <typename Cap>
class FlowNetwork {
 public:
  /// Identifier returned by add_edge.
  using EdgeId = std::size_t;

  /// Pre-sizes the adjacency table (node storage). Callers that know the final
  /// graph shape (the offline engines build source + jobs + intervals + sink)
  /// reserve up front so add_node/add_edge never regrow vectors mid-build.
  void reserve_nodes(std::size_t count) { adjacency_.reserve(count); }

  /// Pre-sizes arc and per-edge storage for `count` edges (2 arcs each).
  void reserve_edges(std::size_t count) {
    arcs_.reserve(2 * count);
    edge_arc_.reserve(count);
    capacity_.reserve(count);
  }

  /// Creates `count` fresh nodes, returning the index of the first.
  std::size_t add_nodes(std::size_t count) {
    std::size_t first = adjacency_.size();
    adjacency_.resize(adjacency_.size() + count);
    return first;
  }
  std::size_t add_node() { return add_nodes(1); }

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return arcs_.size() / 2; }

  /// Adds a directed edge with the given capacity (>= 0); returns its id.
  EdgeId add_edge(std::size_t from, std::size_t to, Cap capacity) {
    check_arg(from < adjacency_.size() && to < adjacency_.size(),
              "FlowNetwork::add_edge: node index out of range");
    check_arg(!FlowTraits<Cap>::is_positive(FlowTraits<Cap>::zero() - capacity),
              "FlowNetwork::add_edge: negative capacity");
    EdgeId id = edge_arc_.size();
    edge_arc_.push_back(arcs_.size());
    adjacency_[from].push_back(arcs_.size());
    arcs_.push_back(Arc{to, capacity});
    adjacency_[to].push_back(arcs_.size());
    arcs_.push_back(Arc{from, FlowTraits<Cap>::zero()});
    capacity_.push_back(std::move(capacity));
    return id;
  }

  /// Computes the maximum flow from source to sink, starting from the empty
  /// flow. Re-runnable: any flow present from earlier max_flow()/resume calls is
  /// discarded first, so repeated calls on the same network (possibly with
  /// capacities changed in between) always yield the from-scratch Dinic flow.
  Cap max_flow(std::size_t source, std::size_t sink) {
    check_endpoints(source, sink, "FlowNetwork::max_flow");
    reset_flow();
    solved_ = true;
    return augment(source, sink);
  }

  /// Continues Dinic from the current flow (the warm-start path): augments until
  /// no residual source-sink path remains and returns the resulting TOTAL flow
  /// value (previous flow plus newly pushed flow). The current flow must be
  /// feasible -- callers arrive here via retract_flow()/set_capacity(), both of
  /// which preserve feasibility. Work counters cover only this call.
  Cap max_flow_resume(std::size_t source, std::size_t sink) {
    check_endpoints(source, sink, "FlowNetwork::max_flow_resume");
    Cap carried = current_flow_from(source);
    solved_ = true;
    return carried + augment(source, sink);
  }

  /// Discards all flow: forward residuals return to the edge capacities, twin
  /// residuals to zero. Capacities set via set_capacity() are kept.
  void reset_flow() {
    for (std::size_t id = 0; id < edge_arc_.size(); ++id) {
      std::size_t arc = edge_arc_[id];
      arcs_[arc].residual = capacity_[id];
      arcs_[arc ^ 1].residual = FlowTraits<Cap>::zero();
    }
  }

  /// Replaces the capacity of edge `id` in place, keeping its current flow: the
  /// forward residual becomes `capacity - flow`. Requires flow <= capacity (the
  /// epsilon-guarded test for floating point), i.e. callers must retract
  /// excess flow before shrinking an edge below its current load.
  void set_capacity(EdgeId id, Cap capacity) {
    std::size_t arc = edge_arc_.at(id);
    const Cap& carried = arcs_[arc ^ 1].residual;  // flow == twin residual
    check_arg(!FlowTraits<Cap>::is_positive(carried - capacity),
              "FlowNetwork::set_capacity: capacity below current flow");
    arcs_[arc].residual = capacity - carried;
    capacity_[id] = std::move(capacity);
  }

  /// Removes `amount` flow from edge `id` (forward residual grows, twin residual
  /// shrinks). Conservation is the caller's contract: retract the same amount
  /// along a whole source-to-sink path (the offline engines' networks are
  /// layered, so their paths are the explicit source/job/sink edge triples).
  void retract_flow(EdgeId id, const Cap& amount) {
    std::size_t arc = edge_arc_.at(id);
    Arc& forward = arcs_[arc];
    Arc& twin = arcs_[arc ^ 1];
    check_arg(!FlowTraits<Cap>::is_positive(amount - twin.residual),
              "FlowNetwork::retract_flow: amount exceeds edge flow");
    forward.residual += amount;
    twin.residual -= amount;
  }

  /// Work counters of the last max_flow()/max_flow_resume() run (zeros before
  /// the first run).
  [[nodiscard]] const FlowKernelStats& kernel_stats() const { return stats_; }

  /// Flow routed along edge `id` (only meaningful after max_flow()).
  [[nodiscard]] Cap flow(EdgeId id) const {
    check_internal(solved_, "FlowNetwork::flow before max_flow");
    std::size_t arc = edge_arc_.at(id);
    // Flow on a forward arc equals the residual capacity accumulated on its twin.
    return arcs_[arc ^ 1].residual;
  }

  /// The capacity the edge currently has (its creation capacity unless
  /// set_capacity() replaced it).
  [[nodiscard]] const Cap& capacity(EdgeId id) const { return capacity_.at(id); }

  /// True iff edge `id` carries exactly its capacity (exact types) or is within
  /// epsilon of it (double).
  [[nodiscard]] bool saturated(EdgeId id) const {
    return !FlowTraits<Cap>::is_positive(capacity(id) - flow(id));
  }

  /// Nodes reachable from `source` in the residual graph; the source side of a
  /// minimum cut (only meaningful after max_flow()).
  [[nodiscard]] std::vector<bool> min_cut_source_side(std::size_t source) const {
    check_internal(solved_, "FlowNetwork::min_cut_source_side before max_flow");
    std::vector<bool> reachable(adjacency_.size(), false);
    std::vector<std::size_t> stack{source};
    reachable[source] = true;
    while (!stack.empty()) {
      std::size_t node = stack.back();
      stack.pop_back();
      for (std::size_t arc : adjacency_[node]) {
        if (FlowTraits<Cap>::is_positive(arcs_[arc].residual) &&
            !reachable[arcs_[arc].target]) {
          reachable[arcs_[arc].target] = true;
          stack.push_back(arcs_[arc].target);
        }
      }
    }
    return reachable;
  }

 private:
  struct Arc {
    std::size_t target;
    Cap residual;
  };

  void check_endpoints(std::size_t source, std::size_t sink, const char*) const {
    check_arg(source < adjacency_.size() && sink < adjacency_.size(),
              "FlowNetwork: node index out of range");
    check_arg(source != sink, "FlowNetwork: source == sink");
  }

  /// Net flow currently leaving `source` (forward arcs out minus flow coming
  /// back in) -- the value a resumed run starts from.
  Cap current_flow_from(std::size_t source) const {
    Cap value = FlowTraits<Cap>::zero();
    for (std::size_t arc : adjacency_[source]) {
      if ((arc & 1) == 0) {
        value += arcs_[arc ^ 1].residual;  // flow out on a forward arc
      } else {
        value -= arcs_[arc].residual;  // flow in on some edge into source
      }
    }
    return value;
  }

  /// The Dinic loop proper: augments from whatever flow the residuals encode.
  Cap augment(std::size_t source, std::size_t sink) {
    Cap total = FlowTraits<Cap>::zero();
    stats_ = FlowKernelStats{};
    level_.assign(adjacency_.size(), -1);
    iterator_.assign(adjacency_.size(), 0);
    while (build_levels(source, sink)) {
      iterator_.assign(adjacency_.size(), 0);
      for (;;) {
        Cap pushed = blocking_path(source, sink, Cap{}, /*unbounded=*/true);
        if (!FlowTraits<Cap>::is_positive(pushed)) break;
        ++stats_.augmenting_paths;
        total += pushed;
      }
    }
    return total;
  }

  bool build_levels(std::size_t source, std::size_t sink) {
    ++stats_.bfs_rounds;
    level_.assign(adjacency_.size(), -1);
    queue_.clear();
    queue_.push_back(source);
    level_[source] = 0;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      std::size_t node = queue_[head];
      for (std::size_t arc : adjacency_[node]) {
        if (level_[arcs_[arc].target] < 0 &&
            FlowTraits<Cap>::is_positive(arcs_[arc].residual)) {
          level_[arcs_[arc].target] = level_[node] + 1;
          queue_.push_back(arcs_[arc].target);
        }
      }
    }
    return level_[sink] >= 0;
  }

  // DFS for one augmenting path within the level graph. `unbounded` marks the root
  // call where the bottleneck is still unknown.
  Cap blocking_path(std::size_t node, std::size_t sink, Cap limit, bool unbounded) {
    if (node == sink) return limit;
    for (std::size_t& it = iterator_[node]; it < adjacency_[node].size(); ++it) {
      std::size_t arc = adjacency_[node][it];
      Arc& forward = arcs_[arc];
      if (!FlowTraits<Cap>::is_positive(forward.residual)) continue;
      if (level_[forward.target] != level_[node] + 1) continue;
      Cap pass = unbounded ? forward.residual
                           : (forward.residual < limit ? forward.residual : limit);
      Cap pushed = blocking_path(forward.target, sink, pass, false);
      if (FlowTraits<Cap>::is_positive(pushed)) {
        forward.residual -= pushed;
        arcs_[arc ^ 1].residual += pushed;
        return pushed;
      }
    }
    level_[node] = -1;  // dead end: prune for the rest of this phase
    return FlowTraits<Cap>::zero();
  }

  std::vector<std::vector<std::size_t>> adjacency_;  // node -> arc indices
  std::vector<Arc> arcs_;                            // paired: arc ^ 1 is the twin
  std::vector<std::size_t> edge_arc_;                // edge id -> forward arc index
  std::vector<Cap> capacity_;                        // edge id -> current capacity
  std::vector<int> level_;
  std::vector<std::size_t> iterator_;
  std::vector<std::size_t> queue_;
  FlowKernelStats stats_;
  bool solved_ = false;
};

extern template class FlowNetwork<std::int64_t>;
extern template class FlowNetwork<double>;
extern template class FlowNetwork<Q>;

}  // namespace mpss
