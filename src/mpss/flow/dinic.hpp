#pragma once
// Maximum-flow solver (Dinic's algorithm), templated on the capacity type
// (substrate S3, see DESIGN.md).
//
// The offline optimal scheduler instantiates this with exact rationals (mpss::Q):
// Dinic performs O(V) blocking-flow phases of O(VE) augmentations each regardless of
// capacity magnitudes, so exact arithmetic never affects termination. int64 and
// double instantiations exist for micro-benchmarks and generic reuse.

#include <cstddef>
#include <limits>
#include <vector>

#include "mpss/util/error.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// Capacity-type policy. Specializations provide zero and the positivity test
/// (strict for exact types, epsilon-guarded for floating point so blocking-flow
/// loops cannot spin on 1e-18 residuals).
template <typename Cap>
struct FlowTraits {
  static Cap zero() { return Cap{}; }
  static bool is_positive(const Cap& value) { return value > Cap{}; }
};

template <>
struct FlowTraits<double> {
  static constexpr double kEpsilon = 1e-12;
  static double zero() { return 0.0; }
  static bool is_positive(double value) { return value > kEpsilon; }
};

/// Exact rationals: positivity is a sign read, not a comparison against a
/// constructed zero -- keeps the hot residual tests off Rational's operator<
/// (which cross-multiplies) and on the numerator's inline-int64 fast path.
template <>
struct FlowTraits<Rational> {
  static Rational zero() { return Rational(); }
  static bool is_positive(const Rational& value) { return value.sign() > 0; }
};

/// Work counters of one max_flow() run, exposed for the observability layer
/// (obs::SolveStats aggregates them across the scheduler's feasibility tests).
struct FlowKernelStats {
  /// Level graphs built (BFS passes), including the final failed one.
  std::size_t bfs_rounds = 0;
  /// Augmenting paths pushed across all blocking-flow phases.
  std::size_t augmenting_paths = 0;
};

/// Directed flow network with residual arcs. Nodes are dense indices created via
/// add_node(); arcs keep their insertion id so callers can read per-edge flow after
/// max_flow() (the scheduler converts edge flows into processing times).
template <typename Cap>
class FlowNetwork {
 public:
  /// Identifier returned by add_edge.
  using EdgeId = std::size_t;

  /// Creates `count` fresh nodes, returning the index of the first.
  std::size_t add_nodes(std::size_t count) {
    std::size_t first = adjacency_.size();
    adjacency_.resize(adjacency_.size() + count);
    return first;
  }
  std::size_t add_node() { return add_nodes(1); }

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return arcs_.size() / 2; }

  /// Adds a directed edge with the given capacity (>= 0); returns its id.
  EdgeId add_edge(std::size_t from, std::size_t to, Cap capacity) {
    check_arg(from < adjacency_.size() && to < adjacency_.size(),
              "FlowNetwork::add_edge: node index out of range");
    check_arg(!FlowTraits<Cap>::is_positive(FlowTraits<Cap>::zero() - capacity),
              "FlowNetwork::add_edge: negative capacity");
    EdgeId id = edge_arc_.size();
    edge_arc_.push_back(arcs_.size());
    adjacency_[from].push_back(arcs_.size());
    arcs_.push_back(Arc{to, capacity});
    adjacency_[to].push_back(arcs_.size());
    arcs_.push_back(Arc{from, FlowTraits<Cap>::zero()});
    return id;
  }

  /// Computes the maximum flow from source to sink. May be called once per network
  /// (it mutates residual capacities). Returns the flow value.
  Cap max_flow(std::size_t source, std::size_t sink) {
    check_arg(source < adjacency_.size() && sink < adjacency_.size(),
              "FlowNetwork::max_flow: node index out of range");
    check_arg(source != sink, "FlowNetwork::max_flow: source == sink");
    original_capacity_.clear();
    original_capacity_.reserve(arcs_.size());
    for (const Arc& arc : arcs_) original_capacity_.push_back(arc.residual);

    Cap total = FlowTraits<Cap>::zero();
    stats_ = FlowKernelStats{};
    level_.assign(adjacency_.size(), -1);
    iterator_.assign(adjacency_.size(), 0);
    while (build_levels(source, sink)) {
      iterator_.assign(adjacency_.size(), 0);
      for (;;) {
        Cap pushed = blocking_path(source, sink, Cap{}, /*unbounded=*/true);
        if (!FlowTraits<Cap>::is_positive(pushed)) break;
        ++stats_.augmenting_paths;
        total += pushed;
      }
    }
    solved_ = true;
    return total;
  }

  /// Work counters of the last max_flow() run (zeros before the first run).
  [[nodiscard]] const FlowKernelStats& kernel_stats() const { return stats_; }

  /// Flow routed along edge `id` (only meaningful after max_flow()).
  [[nodiscard]] Cap flow(EdgeId id) const {
    check_internal(solved_, "FlowNetwork::flow before max_flow");
    std::size_t arc = edge_arc_.at(id);
    // Flow on a forward arc equals the residual capacity accumulated on its twin.
    return arcs_[arc ^ 1].residual;
  }

  /// The capacity the edge was created with.
  [[nodiscard]] Cap capacity(EdgeId id) const {
    std::size_t arc = edge_arc_.at(id);
    return solved_ ? original_capacity_[arc] : arcs_[arc].residual;
  }

  /// True iff edge `id` carries exactly its capacity (exact types) or is within
  /// epsilon of it (double).
  [[nodiscard]] bool saturated(EdgeId id) const {
    return !FlowTraits<Cap>::is_positive(capacity(id) - flow(id));
  }

  /// Nodes reachable from `source` in the residual graph; the source side of a
  /// minimum cut (only meaningful after max_flow()).
  [[nodiscard]] std::vector<bool> min_cut_source_side(std::size_t source) const {
    check_internal(solved_, "FlowNetwork::min_cut_source_side before max_flow");
    std::vector<bool> reachable(adjacency_.size(), false);
    std::vector<std::size_t> stack{source};
    reachable[source] = true;
    while (!stack.empty()) {
      std::size_t node = stack.back();
      stack.pop_back();
      for (std::size_t arc : adjacency_[node]) {
        if (FlowTraits<Cap>::is_positive(arcs_[arc].residual) &&
            !reachable[arcs_[arc].target]) {
          reachable[arcs_[arc].target] = true;
          stack.push_back(arcs_[arc].target);
        }
      }
    }
    return reachable;
  }

 private:
  struct Arc {
    std::size_t target;
    Cap residual;
  };

  bool build_levels(std::size_t source, std::size_t sink) {
    ++stats_.bfs_rounds;
    level_.assign(adjacency_.size(), -1);
    queue_.clear();
    queue_.push_back(source);
    level_[source] = 0;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      std::size_t node = queue_[head];
      for (std::size_t arc : adjacency_[node]) {
        if (level_[arcs_[arc].target] < 0 &&
            FlowTraits<Cap>::is_positive(arcs_[arc].residual)) {
          level_[arcs_[arc].target] = level_[node] + 1;
          queue_.push_back(arcs_[arc].target);
        }
      }
    }
    return level_[sink] >= 0;
  }

  // DFS for one augmenting path within the level graph. `unbounded` marks the root
  // call where the bottleneck is still unknown.
  Cap blocking_path(std::size_t node, std::size_t sink, Cap limit, bool unbounded) {
    if (node == sink) return limit;
    for (std::size_t& it = iterator_[node]; it < adjacency_[node].size(); ++it) {
      std::size_t arc = adjacency_[node][it];
      Arc& forward = arcs_[arc];
      if (!FlowTraits<Cap>::is_positive(forward.residual)) continue;
      if (level_[forward.target] != level_[node] + 1) continue;
      Cap pass = unbounded ? forward.residual
                           : (forward.residual < limit ? forward.residual : limit);
      Cap pushed = blocking_path(forward.target, sink, pass, false);
      if (FlowTraits<Cap>::is_positive(pushed)) {
        forward.residual -= pushed;
        arcs_[arc ^ 1].residual += pushed;
        return pushed;
      }
    }
    level_[node] = -1;  // dead end: prune for the rest of this phase
    return FlowTraits<Cap>::zero();
  }

  std::vector<std::vector<std::size_t>> adjacency_;  // node -> arc indices
  std::vector<Arc> arcs_;                            // paired: arc ^ 1 is the twin
  std::vector<std::size_t> edge_arc_;                // edge id -> forward arc index
  std::vector<Cap> original_capacity_;
  std::vector<int> level_;
  std::vector<std::size_t> iterator_;
  std::vector<std::size_t> queue_;
  FlowKernelStats stats_;
  bool solved_ = false;
};

extern template class FlowNetwork<std::int64_t>;
extern template class FlowNetwork<double>;
extern template class FlowNetwork<Q>;

}  // namespace mpss
