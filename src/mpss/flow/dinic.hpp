#pragma once
// Maximum-flow solver (Dinic's algorithm), templated on the capacity type
// (substrate S3; memory architecture S46, see DESIGN.md).
//
// The offline optimal scheduler instantiates this with exact rationals (mpss::Q):
// Dinic performs O(V) blocking-flow phases of O(VE) augmentations each regardless of
// capacity magnitudes, so exact arithmetic never affects termination. int64 and
// double instantiations exist for micro-benchmarks and generic reuse.
//
// Beyond the classic one-shot max_flow(), the network supports warm-started
// incremental rounds (the offline engines' candidate-removal loop, DESIGN S42):
// set_capacity() adjusts an edge in place, retract_flow() removes flow from an
// edge while keeping its twin consistent (callers retract along whole
// source-to-sink paths to preserve conservation), and max_flow_resume()
// continues augmenting from the current feasible flow instead of from zero.
//
// Memory layout (S46): arcs are stored SoA -- `residual_` holds nothing but
// residual capacities (the one field BFS and blocking-flow touch per arc),
// `arc_target_` the head nodes -- and adjacency is a flat CSR (offsets into an
// arc-index array) built lazily on a freeze/rebuild-on-mutation discipline:
// add_nodes/add_edge mark the network dirty, the first solver entry point
// rebuilds. The CSR preserves per-node arc insertion order (a stable counting
// sort by tail node), so DFS tie-breaking -- and therefore the exact flow
// split on every edge -- is bit-identical to the former nested-vector layout.
// BFS/DFS scratch (level, iterator, queue) is carved from a scratch Arena:
// either one injected via set_scratch_arena() (the engines share their
// per-solve ScopedArena) or a lazily created internal one. Scratch spans live
// in that arena; an owner that resets the arena must re-inject it (which
// marks the network dirty and re-carves on the next solve).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "mpss/util/arena.hpp"
#include "mpss/util/bitmap.hpp"
#include "mpss/util/error.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {

/// Capacity-type policy. Specializations provide zero and the positivity test
/// (strict for exact types, epsilon-guarded for floating point so blocking-flow
/// loops cannot spin on 1e-18 residuals).
template <typename Cap>
struct FlowTraits {
  static Cap zero() { return Cap{}; }
  static bool is_positive(const Cap& value) { return value > Cap{}; }
};

template <>
struct FlowTraits<double> {
  static constexpr double kEpsilon = 1e-12;
  static double zero() { return 0.0; }
  static bool is_positive(double value) { return value > kEpsilon; }
};

/// Exact rationals: positivity is a sign read, not a comparison against a
/// constructed zero -- keeps the hot residual tests off Rational's operator<
/// (which cross-multiplies) and on the numerator's inline-int64 fast path.
template <>
struct FlowTraits<Rational> {
  static Rational zero() { return Rational(); }
  static bool is_positive(const Rational& value) { return value.sign() > 0; }
};

/// Work counters of one max_flow() / max_flow_resume() run, exposed for the
/// observability layer (obs::SolveStats aggregates them across the scheduler's
/// feasibility tests). Reset at the start of every solver call, so callers that
/// aggregate read them after each call.
struct FlowKernelStats {
  /// Level graphs built (BFS passes), including the final failed one.
  std::size_t bfs_rounds = 0;
  /// Augmenting paths pushed across all blocking-flow phases.
  std::size_t augmenting_paths = 0;
};

/// Directed flow network with residual arcs. Nodes are dense indices created via
/// add_node(); arcs keep their insertion id so callers can read per-edge flow after
/// max_flow() (the scheduler converts edge flows into processing times).
///
/// Move-only (it may own a scratch arena). Arc pairing convention: the forward
/// arc of edge `id` is `2 * id`, `arc ^ 1` is its twin, and an arc's tail node
/// is its twin's head -- so the SoA arrays need no separate from-array.
template <typename Cap>
class FlowNetwork {
 public:
  /// Identifier returned by add_edge.
  using EdgeId = std::size_t;

  /// Carve BFS/DFS scratch (and the CSR build cursor) from `arena` instead of
  /// the internal one. The engines inject their per-solve pooled arena so
  /// warm-started rounds run allocation-free. Marks the network dirty: the
  /// next solver call re-freezes and re-carves, so this is also the call to
  /// make after resetting a previously injected arena.
  void set_scratch_arena(Arena* arena) {
    scratch_arena_ = arena;
    frozen_ = false;
  }

  /// Pre-sizes node-indexed storage. Callers that know the final graph shape
  /// (the offline engines build source + jobs + intervals + sink) reserve up
  /// front so add_node/add_edge never regrow vectors mid-build.
  void reserve_nodes(std::size_t count) { csr_offsets_.reserve(count + 1); }

  /// Pre-sizes arc and per-edge storage for `count` edges (2 arcs each).
  void reserve_edges(std::size_t count) {
    residual_.reserve(2 * count);
    arc_target_.reserve(2 * count);
    csr_arcs_.reserve(2 * count);
    capacity_.reserve(count);
  }

  /// Creates `count` fresh nodes, returning the index of the first.
  std::size_t add_nodes(std::size_t count) {
    check_arg(count <= kMaxIndex - node_count_,
              "FlowNetwork::add_nodes: node count exceeds 32-bit index space");
    std::size_t first = node_count_;
    node_count_ += count;
    frozen_ = false;
    return first;
  }
  std::size_t add_node() { return add_nodes(1); }

  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] std::size_t edge_count() const { return capacity_.size(); }

  /// Adds a directed edge with the given capacity (>= 0); returns its id.
  EdgeId add_edge(std::size_t from, std::size_t to, Cap capacity) {
    check_arg(from < node_count_ && to < node_count_,
              "FlowNetwork::add_edge: node index out of range");
    check_arg(!FlowTraits<Cap>::is_positive(FlowTraits<Cap>::zero() - capacity),
              "FlowNetwork::add_edge: negative capacity");
    check_arg(arc_target_.size() + 2 <= kMaxIndex,
              "FlowNetwork::add_edge: arc count exceeds 32-bit index space");
    EdgeId id = capacity_.size();
    arc_target_.push_back(static_cast<std::uint32_t>(to));
    residual_.push_back(capacity);
    arc_target_.push_back(static_cast<std::uint32_t>(from));
    residual_.push_back(FlowTraits<Cap>::zero());
    capacity_.push_back(std::move(capacity));
    frozen_ = false;
    return id;
  }

  /// Computes the maximum flow from source to sink, starting from the empty
  /// flow. Re-runnable: any flow present from earlier max_flow()/resume calls is
  /// discarded first, so repeated calls on the same network (possibly with
  /// capacities changed in between) always yield the from-scratch Dinic flow.
  Cap max_flow(std::size_t source, std::size_t sink) {
    check_endpoints(source, sink, "FlowNetwork::max_flow");
    ensure_frozen();
    reset_flow();
    solved_ = true;
    return augment(static_cast<std::uint32_t>(source),
                   static_cast<std::uint32_t>(sink));
  }

  /// Continues Dinic from the current flow (the warm-start path): augments until
  /// no residual source-sink path remains and returns the resulting TOTAL flow
  /// value (previous flow plus newly pushed flow). The current flow must be
  /// feasible -- callers arrive here via retract_flow()/set_capacity(), both of
  /// which preserve feasibility. Work counters cover only this call.
  Cap max_flow_resume(std::size_t source, std::size_t sink) {
    check_endpoints(source, sink, "FlowNetwork::max_flow_resume");
    ensure_frozen();
    Cap carried = current_flow_from(static_cast<std::uint32_t>(source));
    solved_ = true;
    return carried + augment(static_cast<std::uint32_t>(source),
                             static_cast<std::uint32_t>(sink));
  }

  /// Discards all flow: forward residuals return to the edge capacities, twin
  /// residuals to zero. Capacities set via set_capacity() are kept.
  void reset_flow() {
    for (std::size_t id = 0; id < capacity_.size(); ++id) {
      residual_[2 * id] = capacity_[id];
      residual_[2 * id + 1] = FlowTraits<Cap>::zero();
    }
  }

  /// Replaces the capacity of edge `id` in place, keeping its current flow: the
  /// forward residual becomes `capacity - flow`. Requires flow <= capacity (the
  /// epsilon-guarded test for floating point), i.e. callers must retract
  /// excess flow before shrinking an edge below its current load.
  void set_capacity(EdgeId id, Cap capacity) {
    check_arg(id < capacity_.size(), "FlowNetwork::set_capacity: unknown edge");
    const Cap& carried = residual_[2 * id + 1];  // flow == twin residual
    check_arg(!FlowTraits<Cap>::is_positive(carried - capacity),
              "FlowNetwork::set_capacity: capacity below current flow");
    Cap remaining = capacity;
    remaining -= carried;
    residual_[2 * id] = std::move(remaining);
    capacity_[id] = std::move(capacity);
  }

  /// Removes `amount` flow from edge `id` (forward residual grows, twin residual
  /// shrinks). Conservation is the caller's contract: retract the same amount
  /// along a whole source-to-sink path (the offline engines' networks are
  /// layered, so their paths are the explicit source/job/sink edge triples).
  void retract_flow(EdgeId id, const Cap& amount) {
    check_arg(id < capacity_.size(), "FlowNetwork::retract_flow: unknown edge");
    Cap& forward = residual_[2 * id];
    Cap& twin = residual_[2 * id + 1];
    check_arg(!FlowTraits<Cap>::is_positive(amount - twin),
              "FlowNetwork::retract_flow: amount exceeds edge flow");
    forward += amount;
    twin -= amount;
  }

  /// Work counters of the last max_flow()/max_flow_resume() run (zeros before
  /// the first run).
  [[nodiscard]] const FlowKernelStats& kernel_stats() const { return stats_; }

  /// Flow routed along edge `id` (only meaningful after max_flow()).
  [[nodiscard]] const Cap& flow(EdgeId id) const {
    check_internal(solved_, "FlowNetwork::flow before max_flow");
    check_arg(id < capacity_.size(), "FlowNetwork::flow: unknown edge");
    // Flow on a forward arc equals the residual capacity accumulated on its twin.
    return residual_[2 * id + 1];
  }

  /// The capacity the edge currently has (its creation capacity unless
  /// set_capacity() replaced it).
  [[nodiscard]] const Cap& capacity(EdgeId id) const { return capacity_.at(id); }

  /// True iff edge `id` carries exactly its capacity (exact types) or is within
  /// epsilon of it (double).
  [[nodiscard]] bool saturated(EdgeId id) const {
    return !FlowTraits<Cap>::is_positive(capacity(id) - flow(id));
  }

  /// Nodes reachable from `source` in the residual graph; the source side of a
  /// minimum cut (only meaningful after max_flow()). One row, node_count()
  /// columns; the DFS stack is arena scratch, the returned bitmap owns its
  /// words.
  [[nodiscard]] ActiveBitmap min_cut_source_side(std::size_t source) {
    check_internal(solved_, "FlowNetwork::min_cut_source_side before max_flow");
    check_arg(source < node_count_,
              "FlowNetwork::min_cut_source_side: node index out of range");
    ensure_frozen();
    ActiveBitmap reachable(1, node_count_);
    std::span<std::uint64_t> bits = reachable.row(0);
    std::span<std::uint32_t> stack =
        scratch().template alloc_array<std::uint32_t>(node_count_);
    std::size_t depth = 0;
    ActiveBitmap::mask_set(bits, source);
    stack[depth++] = static_cast<std::uint32_t>(source);
    while (depth > 0) {
      std::uint32_t node = stack[--depth];
      for (std::uint32_t pos = csr_offsets_[node];
           pos < csr_offsets_[node + 1]; ++pos) {
        std::uint32_t arc = csr_arcs_[pos];
        std::uint32_t to = arc_target_[arc];
        if (FlowTraits<Cap>::is_positive(residual_[arc]) &&
            !ActiveBitmap::mask_test(bits, to)) {
          ActiveBitmap::mask_set(bits, to);
          stack[depth++] = to;
        }
      }
    }
    return reachable;
  }

 private:
  static constexpr std::size_t kMaxIndex =
      std::numeric_limits<std::uint32_t>::max();

  void check_endpoints(std::size_t source, std::size_t sink, const char*) const {
    check_arg(source < node_count_ && sink < node_count_,
              "FlowNetwork: node index out of range");
    check_arg(source != sink, "FlowNetwork: source == sink");
  }

  /// An arc's tail node: where its twin points back to.
  [[nodiscard]] std::uint32_t from_node(std::uint32_t arc) const {
    return arc_target_[arc ^ 1];
  }

  [[nodiscard]] Arena& scratch() {
    if (scratch_arena_ != nullptr) return *scratch_arena_;
    if (!owned_arena_) owned_arena_ = std::make_unique<Arena>();
    return *owned_arena_;
  }

  /// Rebuilds the CSR and re-carves scratch after topology or arena changes.
  /// The counting sort is stable in arc id, which reproduces the former
  /// nested-vector per-node ordering exactly (forward and twin arcs appear in
  /// add_edge order) -- the bit-identity anchor for DFS tie-breaking.
  void ensure_frozen() {
    if (frozen_) return;
    const std::uint32_t nodes = static_cast<std::uint32_t>(node_count_);
    const std::uint32_t arcs = static_cast<std::uint32_t>(arc_target_.size());
    Arena& arena = scratch();
    csr_offsets_.assign(nodes + 1, 0);
    for (std::uint32_t a = 0; a < arcs; ++a) ++csr_offsets_[from_node(a) + 1];
    for (std::uint32_t v = 0; v < nodes; ++v) csr_offsets_[v + 1] += csr_offsets_[v];
    csr_arcs_.resize(arcs);
    std::span<std::uint32_t> cursor = arena.alloc_array<std::uint32_t>(nodes);
    std::copy(csr_offsets_.begin(), csr_offsets_.begin() + nodes, cursor.begin());
    for (std::uint32_t a = 0; a < arcs; ++a) csr_arcs_[cursor[from_node(a)]++] = a;
    level_ = arena.alloc_array<std::int32_t>(nodes);
    iter_ = arena.alloc_array<std::uint32_t>(nodes);
    queue_ = arena.alloc_array<std::uint32_t>(nodes);
    frozen_ = true;
  }

  /// Net flow currently leaving `source` (forward arcs out minus flow coming
  /// back in) -- the value a resumed run starts from. Requires a frozen CSR.
  [[nodiscard]] Cap current_flow_from(std::uint32_t source) const {
    Cap value = FlowTraits<Cap>::zero();
    for (std::uint32_t pos = csr_offsets_[source];
         pos < csr_offsets_[source + 1]; ++pos) {
      std::uint32_t arc = csr_arcs_[pos];
      if ((arc & 1) == 0) {
        value += residual_[arc ^ 1];  // flow out on a forward arc
      } else {
        value -= residual_[arc];  // flow in on some edge into source
      }
    }
    return value;
  }

  /// The Dinic loop proper: augments from whatever flow the residuals encode.
  Cap augment(std::uint32_t source, std::uint32_t sink) {
    Cap total = FlowTraits<Cap>::zero();
    stats_ = FlowKernelStats{};
    while (build_levels(source, sink)) {
      std::copy(csr_offsets_.begin(), csr_offsets_.begin() + node_count_,
                iter_.begin());
      for (;;) {
        Cap pushed = blocking_path(source, sink, nullptr);
        if (!FlowTraits<Cap>::is_positive(pushed)) break;
        ++stats_.augmenting_paths;
        total += pushed;
      }
    }
    return total;
  }

  bool build_levels(std::uint32_t source, std::uint32_t sink) {
    ++stats_.bfs_rounds;
    std::fill(level_.begin(), level_.end(), std::int32_t{-1});
    std::size_t head = 0;
    std::size_t tail = 0;
    queue_[tail++] = source;
    level_[source] = 0;
    while (head < tail) {
      std::uint32_t node = queue_[head++];
      std::int32_t next_level = level_[node] + 1;
      for (std::uint32_t pos = csr_offsets_[node];
           pos < csr_offsets_[node + 1]; ++pos) {
        std::uint32_t arc = csr_arcs_[pos];
        std::uint32_t to = arc_target_[arc];
        if (level_[to] < 0 && FlowTraits<Cap>::is_positive(residual_[arc])) {
          level_[to] = next_level;
          queue_[tail++] = to;
        }
      }
    }
    return level_[sink] >= 0;
  }

  // DFS for one augmenting path within the level graph. `limit` is the
  // bottleneck so far -- a POINTER into residual_ (or a caller's limit),
  // nullptr at the root where the bottleneck is still unknown. The path's
  // bottleneck value is copied exactly once, at the sink, instead of once per
  // recursion level (including failed probes) as a by-value limit would cost;
  // safe because residuals mutate only on the unwind, after every comparison
  // against them.
  Cap blocking_path(std::uint32_t node, std::uint32_t sink, const Cap* limit) {
    if (node == sink) return *limit;
    for (std::uint32_t& pos = iter_[node]; pos < csr_offsets_[node + 1]; ++pos) {
      std::uint32_t arc = csr_arcs_[pos];
      Cap& residual = residual_[arc];
      if (!FlowTraits<Cap>::is_positive(residual)) continue;
      std::uint32_t to = arc_target_[arc];
      if (level_[to] != level_[node] + 1) continue;
      const Cap* pass = (limit == nullptr || residual < *limit) ? &residual : limit;
      Cap pushed = blocking_path(to, sink, pass);
      if (FlowTraits<Cap>::is_positive(pushed)) {
        residual -= pushed;
        residual_[arc ^ 1] += pushed;
        return pushed;
      }
    }
    level_[node] = -1;  // dead end: prune for the rest of this phase
    return FlowTraits<Cap>::zero();
  }

  std::size_t node_count_ = 0;
  // SoA arc storage, paired: the forward arc of edge id is 2*id, arc ^ 1 is
  // the twin. residual_ is the hot array -- every per-arc test in BFS and
  // blocking-flow reads only it.
  std::vector<Cap> residual_;
  std::vector<std::uint32_t> arc_target_;
  std::vector<Cap> capacity_;  // edge id -> current capacity
  // Frozen CSR adjacency: arc ids grouped by tail node, insertion-ordered.
  std::vector<std::uint32_t> csr_offsets_;  // node -> first slot in csr_arcs_
  std::vector<std::uint32_t> csr_arcs_;
  // Scratch spans carved from the arena at freeze time.
  std::span<std::int32_t> level_;
  std::span<std::uint32_t> iter_;
  std::span<std::uint32_t> queue_;
  Arena* scratch_arena_ = nullptr;     // injected; wins over owned_arena_
  std::unique_ptr<Arena> owned_arena_;  // lazily created when none injected
  FlowKernelStats stats_;
  bool frozen_ = false;
  bool solved_ = false;
};

extern template class FlowNetwork<std::int64_t>;
extern template class FlowNetwork<double>;
extern template class FlowNetwork<Q>;

}  // namespace mpss
