// trace_tool: a small command-line utility around the library -- generate
// workload traces, inspect them, schedule them with any algorithm, and render or
// archive the result. The kind of tool a downstream user scripts against.
//
// Subcommands (first positional argument):
//   gen   --family=uniform|bursty|laminar|agreeable|periodic --out=trace.csv
//         [--jobs=12] [--machines=4] [--seed=1]
//   info  <trace.csv>
//   run   <trace.csv> --algo=opt|fast|oa|avr|lp|greedy [--alpha=3]
//         [--gantt] [--save=schedule.csv] [--trace=events.jsonl]
//
// Everything except greedy goes through the mpss::solve() facade; --trace
// attaches a JSONL sink whose output tools/mpss_trace summarizes.
//
// Examples:
//   trace_tool gen --family=bursty --jobs=16 --machines=4 --out=/tmp/t.csv
//   trace_tool info /tmp/t.csv
//   trace_tool run /tmp/t.csv --algo=opt --gantt --trace=/tmp/t.jsonl

#include <iostream>
#include <memory>

#include "mpss/mpss.hpp"

namespace {

using namespace mpss;

int cmd_gen(const CliArgs& args) {
  std::string family = args.get("family", "uniform");
  auto jobs = static_cast<std::size_t>(args.get_int("jobs", 12));
  auto machines = static_cast<std::size_t>(args.get_int("machines", 4));
  auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  std::string out = args.get("out", "trace.csv");

  Instance instance = [&] {
    if (family == "uniform") {
      return generate_uniform({.jobs = jobs, .machines = machines,
                               .horizon = 3 * static_cast<std::int64_t>(jobs),
                               .max_window = 10, .max_work = 8}, seed);
    }
    if (family == "bursty") {
      return generate_bursty({.bursts = std::max<std::size_t>(jobs / 4, 1),
                              .jobs_per_burst = 4, .machines = machines,
                              .horizon = 3 * static_cast<std::int64_t>(jobs),
                              .burst_window = 6, .max_work = 8}, seed);
    }
    if (family == "laminar") {
      return generate_laminar({.jobs = jobs, .machines = machines, .depth = 4,
                               .max_work = 8}, seed);
    }
    if (family == "agreeable") {
      return generate_agreeable({.jobs = jobs, .machines = machines,
                                 .horizon = 3 * static_cast<std::int64_t>(jobs),
                                 .min_window = 2, .max_window = 10, .max_work = 8},
                                seed);
    }
    if (family == "periodic") {
      return generate_periodic({.tasks = std::max<std::size_t>(jobs / 3, 1),
                                .machines = machines, .hyperperiods = 2,
                                .max_work = 6}, seed);
    }
    throw std::invalid_argument("unknown family: " + family);
  }();

  save_instance(instance, out);
  std::cout << "wrote " << out << ": " << instance.summary() << "\n";
  return 0;
}

int cmd_info(const CliArgs& args) {
  if (args.positional().size() < 2) {
    std::cerr << "usage: trace_tool info <trace.csv>\n";
    return 2;
  }
  Instance instance = load_instance(args.positional()[1]);
  std::cout << instance.summary() << "\n" << analyze(instance).to_string() << "\n";
  AlphaPower p(3.0);
  std::cout << "energy lower bound (alpha=3): " << best_lower_bound(instance, p, 3.0)
            << "\n";
  return 0;
}

int cmd_run(const CliArgs& args) {
  if (args.positional().size() < 2) {
    std::cerr << "usage: trace_tool run <trace.csv> --algo=opt|fast|oa|avr|lp|greedy\n";
    return 2;
  }
  Instance instance = load_instance(args.positional()[1]);
  std::string algo = args.get("algo", "opt");
  // --alpha rides on the instance as its PowerSpec: the facade reads it from
  // there, and a re-saved trace carries the power model with it.
  instance = instance.with_power(PowerSpec::alpha(args.get_double("alpha", 3.0)));
  AlphaPower p(args.get_double("alpha", 3.0));

  std::unique_ptr<obs::JsonlSink> sink;
  if (args.has("trace")) {
    sink = std::make_unique<obs::JsonlSink>(args.get("trace", "events.jsonl"));
  }

  if (algo == "greedy") {
    // The non-migratory baseline is not a facade engine; it keeps its direct path.
    auto result = nonmigratory_greedy(instance, p);
    std::cout << "non-migratory greedy\n";
    auto report = check_schedule(instance, result.schedule);
    std::cout << "feasible: " << (report.feasible ? "yes" : "NO") << "\n";
    if (!report.feasible) return 1;
    std::cout << "energy under " << p.name() << ": " << result.schedule.energy(p)
              << "\n";
    return 0;
  }

  SolveOptions options;
  options.trace = sink.get();
  std::optional<Engine> engine = engine_from_name(algo);
  if (!engine) {
    std::cerr << "unknown --algo: " << algo << "\n";
    return 2;
  }
  options.engine = *engine;
  if (options.engine == Engine::kLp) {
    options.lp_grid = static_cast<std::size_t>(args.get_int("lp-grid", 8));
  }

  SolveResult result = solve(instance, options);
  if (sink) sink->flush();
  std::cout << engine_name(options.engine) << ": "
            << solve_status_name(result.status) << "\n";
  if (!result.ok()) {
    std::cerr << "  " << result.error_detail << "\n";
    return 1;
  }
  std::cout << "stats: " << result.stats.phases << " phases, "
            << result.stats.flow_computations << " flow computations, "
            << result.stats.candidate_removals << " removals, "
            << result.stats.simplex_pivots << " pivots, " << result.stats.replans
            << " replans, " << result.stats.peel_events << " peels, "
            << Table::num(result.stats.wall_seconds, 6) << " s\n";

  if (const Schedule* schedule = result.exact_schedule()) {
    auto report = check_schedule(instance, *schedule);
    std::cout << "feasible: " << (report.feasible ? "yes" : "NO") << "\n";
    if (!report.feasible) {
      for (const auto& violation : report.violations) {
        std::cout << "  " << violation << "\n";
      }
      return 1;
    }
    std::cout << "energy under " << p.name() << ": " << result.energy << "\n";
    if (args.get_bool("gantt", false)) {
      std::cout << "\n" << render_gantt(*schedule);
    }
    if (args.has("save")) {
      save_schedule(*schedule, args.get("save", "schedule.csv"));
      std::cout << "schedule written to " << args.get("save", "schedule.csv") << "\n";
    }
  } else if (result.fast_schedule() != nullptr) {
    std::size_t violations = result.violations(instance);
    std::cout << "feasible (1e-7 tolerance): " << (violations == 0 ? "yes" : "NO")
              << "\n";
    if (violations != 0) return 1;
    std::cout << "energy under " << p.name() << ": " << result.energy << "\n";
  } else {
    // LP: an energy bound, no schedule.
    std::cout << "LP bound under " << p.name() << ": " << result.energy << " ("
              << result.stats.counters.value("lp.variables") << " vars, "
              << result.stats.counters.value("lp.constraints") << " rows)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    mpss::CliArgs args(argc, argv,
                       {"family", "jobs", "machines", "seed", "out", "algo", "alpha",
                        "gantt", "save", "trace", "lp-grid"});
    if (args.positional().empty()) {
      std::cerr << "usage: trace_tool <gen|info|run> [options]\n";
      return 2;
    }
    const std::string& command = args.positional()[0];
    if (command == "gen") return cmd_gen(args);
    if (command == "info") return cmd_info(args);
    if (command == "run") return cmd_run(args);
    std::cerr << "unknown command: " << command << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
