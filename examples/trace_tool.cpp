// trace_tool: a small command-line utility around the library -- generate
// workload traces, inspect them, schedule them with any algorithm, and render or
// archive the result. The kind of tool a downstream user scripts against.
//
// Subcommands (first positional argument):
//   gen   --family=uniform|bursty|laminar|agreeable|periodic --out=trace.csv
//         [--jobs=12] [--machines=4] [--seed=1]
//   info  <trace.csv>
//   run   <trace.csv> --algo=opt|oa|avr|greedy [--alpha=3]
//         [--gantt] [--save=schedule.csv]
//
// Examples:
//   trace_tool gen --family=bursty --jobs=16 --machines=4 --out=/tmp/t.csv
//   trace_tool info /tmp/t.csv
//   trace_tool run /tmp/t.csv --algo=opt --gantt

#include <iostream>

#include "mpss/mpss.hpp"

namespace {

using namespace mpss;

int cmd_gen(const CliArgs& args) {
  std::string family = args.get("family", "uniform");
  auto jobs = static_cast<std::size_t>(args.get_int("jobs", 12));
  auto machines = static_cast<std::size_t>(args.get_int("machines", 4));
  auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  std::string out = args.get("out", "trace.csv");

  Instance instance = [&] {
    if (family == "uniform") {
      return generate_uniform({.jobs = jobs, .machines = machines,
                               .horizon = 3 * static_cast<std::int64_t>(jobs),
                               .max_window = 10, .max_work = 8}, seed);
    }
    if (family == "bursty") {
      return generate_bursty({.bursts = std::max<std::size_t>(jobs / 4, 1),
                              .jobs_per_burst = 4, .machines = machines,
                              .horizon = 3 * static_cast<std::int64_t>(jobs),
                              .burst_window = 6, .max_work = 8}, seed);
    }
    if (family == "laminar") {
      return generate_laminar({.jobs = jobs, .machines = machines, .depth = 4,
                               .max_work = 8}, seed);
    }
    if (family == "agreeable") {
      return generate_agreeable({.jobs = jobs, .machines = machines,
                                 .horizon = 3 * static_cast<std::int64_t>(jobs),
                                 .min_window = 2, .max_window = 10, .max_work = 8},
                                seed);
    }
    if (family == "periodic") {
      return generate_periodic({.tasks = std::max<std::size_t>(jobs / 3, 1),
                                .machines = machines, .hyperperiods = 2,
                                .max_work = 6}, seed);
    }
    throw std::invalid_argument("unknown family: " + family);
  }();

  save_instance(instance, out);
  std::cout << "wrote " << out << ": " << instance.summary() << "\n";
  return 0;
}

int cmd_info(const CliArgs& args) {
  if (args.positional().size() < 2) {
    std::cerr << "usage: trace_tool info <trace.csv>\n";
    return 2;
  }
  Instance instance = load_instance(args.positional()[1]);
  std::cout << instance.summary() << "\n" << analyze(instance).to_string() << "\n";
  AlphaPower p(3.0);
  std::cout << "energy lower bound (alpha=3): " << best_lower_bound(instance, p, 3.0)
            << "\n";
  return 0;
}

int cmd_run(const CliArgs& args) {
  if (args.positional().size() < 2) {
    std::cerr << "usage: trace_tool run <trace.csv> --algo=opt|oa|avr|greedy\n";
    return 2;
  }
  Instance instance = load_instance(args.positional()[1]);
  std::string algo = args.get("algo", "opt");
  AlphaPower p(args.get_double("alpha", 3.0));

  Schedule schedule(instance.machines());
  if (algo == "opt") {
    auto result = optimal_schedule(instance);
    schedule = std::move(result.schedule);
    std::cout << "optimal: " << result.phases.size() << " speed levels, "
              << result.flow_computations << " flow computations\n";
  } else if (algo == "oa") {
    auto result = oa_schedule(instance);
    schedule = std::move(result.schedule);
    std::cout << "OA(m): " << result.replans << " replans\n";
  } else if (algo == "avr") {
    auto result = avr_schedule(instance);
    schedule = std::move(result.schedule);
    std::cout << "AVR(m): " << result.peel_events << " peel events\n";
  } else if (algo == "greedy") {
    auto result = nonmigratory_greedy(instance, p);
    schedule = std::move(result.schedule);
    std::cout << "non-migratory greedy\n";
  } else {
    std::cerr << "unknown --algo: " << algo << "\n";
    return 2;
  }

  auto report = check_schedule(instance, schedule);
  std::cout << "feasible: " << (report.feasible ? "yes" : "NO") << "\n";
  if (!report.feasible) {
    for (const auto& violation : report.violations) std::cout << "  " << violation << "\n";
    return 1;
  }
  std::cout << "energy under " << p.name() << ": " << schedule.energy(p) << "\n";
  if (args.get_bool("gantt", false)) {
    std::cout << "\n" << render_gantt(schedule);
  }
  if (args.has("save")) {
    save_schedule(schedule, args.get("save", "schedule.csv"));
    std::cout << "schedule written to " << args.get("save", "schedule.csv") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    mpss::CliArgs args(argc, argv,
                       {"family", "jobs", "machines", "seed", "out", "algo", "alpha",
                        "gantt", "save"});
    if (args.positional().empty()) {
      std::cerr << "usage: trace_tool <gen|info|run> [options]\n";
      return 2;
    }
    const std::string& command = args.positional()[0];
    if (command == "gen") return cmd_gen(args);
    if (command == "info") return cmd_info(args);
    if (command == "run") return cmd_run(args);
    std::cerr << "unknown command: " << command << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
