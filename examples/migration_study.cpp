// Scenario: is migration worth the engineering trouble? The paper's headline is
// that WITH migration the offline problem is polynomial (Theorem 1), while without
// it the problem is NP-hard [1]. This example quantifies the energy gap on small
// instances where the non-migratory optimum can still be found by enumeration.
//
// Usage: ./build/examples/migration_study [--jobs=6] [--machines=3] [--seeds=8]
//          [--alpha=2.5]

#include <iostream>

#include "mpss/mpss.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"jobs", "machines", "seeds", "alpha"});
  auto jobs = static_cast<std::size_t>(args.get_int("jobs", 6));
  auto machines = static_cast<std::size_t>(args.get_int("machines", 3));
  auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", 8));
  double alpha = args.get_double("alpha", 2.5);
  AlphaPower p(alpha);

  std::cout << "value of migration: " << jobs << " jobs, " << machines
            << " machines, alpha = " << alpha << "\n"
            << "(exact non-migratory optimum by enumerating " << machines << "^"
            << jobs << " assignments)\n\n";

  Table table({"seed", "OPT migratory", "OPT pinned", "gap", "greedy pinned",
               "greedy gap"});
  RunningStats gaps;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    Instance instance = generate_uniform(
        {.jobs = jobs, .machines = machines, .horizon = 12,
         .max_window = 6, .max_work = 6}, seed);
    double migratory = optimal_energy(instance, p);
    auto pinned = nonmigratory_exact(instance, p);
    auto greedy = nonmigratory_greedy(instance, p);
    double gap = pinned.energy / migratory;
    gaps.add(gap);
    table.row(seed, migratory, pinned.energy, gap, greedy.energy,
              greedy.energy / migratory);
  }
  table.print(std::cout);
  std::cout << "\npinned/migratory gap: mean " << Table::num(gaps.mean())
            << ", worst " << Table::num(gaps.max()) << "\n";

  // A crafted instance where the gap is exactly (9/8)^(alpha-independent shape):
  // 3 identical unit jobs on 2 machines in one shared window.
  Instance crafted({Job{Q(0), Q(1), Q(1)}, Job{Q(0), Q(1), Q(1)},
                    Job{Q(0), Q(1), Q(1)}}, 2);
  AlphaPower square(2.0);
  double mig = optimal_energy(crafted, square);
  double pin = nonmigratory_exact(crafted, square).energy;
  std::cout << "\ncrafted 3-jobs-2-machines instance (alpha = 2): migratory " << mig
            << " vs pinned " << pin << " -> migration saves "
            << Table::num(100.0 * (pin - mig) / pin, 1) << "%\n";
  return 0;
}
