// Quickstart: the smallest complete tour of the mpss public API.
//
//   1. describe jobs (release, deadline, work) and a machine count,
//   2. compute the energy-optimal migratory schedule (the paper's Section 2
//      algorithm),
//   3. inspect the speed-level structure, verify feasibility, measure energy.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "mpss/mpss.hpp"

int main() {
  using namespace mpss;

  // Three jobs on two processors. Job 1 is urgent and heavy; jobs 0 and 2 are
  // relaxed. Times and works are exact rationals (integers are fine).
  Instance instance(
      {
          Job{Q(0), Q(8), Q(6)},  // relaxed: 6 units of work over [0, 8)
          Job{Q(2), Q(4), Q(6)},  // urgent: 6 units over [2, 4)
          Job{Q(2), Q(4), Q(4)},  // a second urgent arrival in the same window
      },
      /*machines=*/2);
  std::cout << "instance: " << instance.summary() << "\n\n";

  // The offline optimum. Works for any convex non-decreasing power function;
  // the schedule itself is power-function independent.
  OptimalResult result = optimal_schedule(instance);

  std::cout << "speed levels (fastest first):\n";
  for (const PhaseInfo& phase : result.phases) {
    std::cout << "  speed " << phase.speed << " <- jobs";
    for (std::size_t job : phase.jobs) std::cout << ' ' << job;
    std::cout << '\n';
  }

  std::cout << "\nper-machine schedule:\n";
  for (std::size_t machine = 0; machine < result.schedule.machines(); ++machine) {
    std::cout << "  machine " << machine << ":";
    for (const Slice& slice : result.schedule.machine(machine)) {
      std::cout << "  [" << slice.start << "," << slice.end << ") J" << slice.job
                << "@" << slice.speed;
    }
    std::cout << '\n';
  }

  std::cout << "\nGantt view:\n" << render_gantt(result.schedule);

  // Every schedule the library produces passes the exact feasibility checker:
  // deadlines met, no machine overlap, no job on two machines at once, all work
  // completed exactly.
  FeasibilityReport report = check_schedule(instance, result.schedule);
  std::cout << "\nfeasible: " << (report.feasible ? "yes" : "NO") << '\n';

  // Energy under the cube-root-rule power function P(s) = s^3, and under a
  // leakage-flavoured model -- same schedule, both optimal.
  AlphaPower cube(3.0);
  CubicPlusLeakagePower leaky(1.0, 0.5, 0.0);
  std::cout << "energy under " << cube.name() << ":  " << result.schedule.energy(cube)
            << '\n';
  std::cout << "energy under " << leaky.name() << ": " << result.schedule.energy(leaky)
            << '\n';

  // Online comparison through the unified facade: every engine behind one call,
  // with its telemetry in the common SolveStats record.
  double opt = result.schedule.energy(cube);
  std::cout << "\nonline-vs-offline (alpha = 3, via mpss::solve):\n";
  std::cout << "  OPT  " << opt << "  (ratio 1)\n";

  // The facade measures energy with the instance's PowerSpec, whose default is
  // exactly P(s) = s^3 -- no power plumbing needed for the common case.
  SolveOptions oa_options;
  oa_options.engine = Engine::kOa;
  SolveResult oa = solve(instance, oa_options);
  std::cout << "  OA   " << oa.energy << "  (ratio " << oa.energy / opt << ", bound "
            << oa_competitive_bound(3.0) << "; " << oa.stats.replans << " replans, "
            << oa.stats.flow_computations << " inner flow computations)\n";

  SolveOptions avr_options;
  avr_options.engine = Engine::kAvr;
  SolveResult avr = solve(instance, avr_options);
  std::cout << "  AVR  " << avr.energy << "  (ratio " << avr.energy / opt
            << ", bound " << avr_multi_competitive_bound(3.0) << "; "
            << avr.stats.peel_events << " peels)\n";

  // SolveResult::violations dispatches to the right checker for whichever
  // schedule variant the engine produced -- no std::variant visitation here.
  bool online_feasible =
      oa.violations(instance) == 0 && avr.violations(instance) == 0;
  return report.feasible && oa.ok() && avr.ok() && online_feasible ? 0 : 1;
}
