// Scenario: how much does clairvoyance buy? Races the online algorithms OA(m) and
// AVR(m) against the offline optimum while the power exponent alpha sweeps across
// the range hardware models care about (1.5 ... 3 covers the cube-root rule).
//
// For each alpha, the empirical competitive ratio is printed next to the paper's
// worst-case guarantee (Theorems 2 and 3), illustrating how loose worst-case
// bounds are on ordinary workloads.
//
// Usage: ./build/examples/online_race [--jobs=14] [--machines=4] [--seeds=10]

#include <iostream>

#include "mpss/mpss.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv, {"jobs", "machines", "seeds"});
  auto jobs = static_cast<std::size_t>(args.get_int("jobs", 14));
  auto machines = static_cast<std::size_t>(args.get_int("machines", 4));
  auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", 10));

  std::cout << "online race: " << jobs << " jobs, " << machines << " machines, "
            << seeds << " seeds per alpha\n\n";

  // All three contenders run through the mpss::solve() facade -- the engine is
  // just a knob here, which is exactly the use case the facade exists for. The
  // power model travels on the instance (PowerSpec), so one with_power() call
  // per alpha covers every engine.
  auto energy_of = [](const Instance& instance, Engine engine) {
    SolveOptions options;
    options.engine = engine;
    return solve(instance, options).energy;
  };

  Table table({"alpha", "OA mean", "OA max", "OA bound", "AVR mean", "AVR max",
               "AVR bound"});
  for (double alpha : {1.5, 2.0, 2.5, 3.0}) {
    RunningStats oa_ratio, avr_ratio;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      Instance instance = generate_uniform(
          {.jobs = jobs, .machines = machines, .horizon = 30,
           .max_window = 12, .max_work = 9}, seed)
                              .with_power(PowerSpec::alpha(alpha));
      double opt = energy_of(instance, Engine::kExact);
      oa_ratio.add(energy_of(instance, Engine::kOa) / opt);
      avr_ratio.add(energy_of(instance, Engine::kAvr) / opt);
    }
    table.row(alpha, oa_ratio.mean(), oa_ratio.max(), oa_competitive_bound(alpha),
              avr_ratio.mean(), avr_ratio.max(), avr_multi_competitive_bound(alpha));
  }
  table.print(std::cout);

  std::cout << "\nadversarial workload for AVR (expiring stack, m = 1):\n";
  Table adversarial({"n", "AVR ratio", "Theorem 3 bound (alpha=2)"});
  AlphaPower square(2.0);
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    Instance instance = generate_avr_adversary(n, 1);
    double ratio = avr_energy(instance, square) / optimal_energy(instance, square);
    adversarial.row(n, ratio, avr_multi_competitive_bound(2.0));
  }
  adversarial.print(std::cout);
  std::cout << "\n(the ratio climbs with n: AVR pays for ignoring future arrivals)\n";
  return 0;
}
