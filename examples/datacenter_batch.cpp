// Scenario: a small compute cluster running bursty batch jobs -- the setting the
// paper's introduction motivates ("compute clusters and server farms ... power
// dissipation has become a major concern").
//
// Generates a bursty workload, schedules it with every strategy in the library,
// and prints an energy scoreboard. Also exports the workload as a CSV trace so the
// run is reproducible outside this binary.
//
// Usage: ./build/examples/datacenter_batch [--machines=8] [--bursts=6]
//          [--jobs-per-burst=8] [--alpha=3] [--seed=1] [--trace=out.csv]

#include <iostream>

#include "mpss/mpss.hpp"

int main(int argc, char** argv) {
  using namespace mpss;
  CliArgs args(argc, argv,
               {"machines", "bursts", "jobs-per-burst", "alpha", "seed", "trace"});

  BurstyWorkload config;
  config.machines = static_cast<std::size_t>(args.get_int("machines", 8));
  config.bursts = static_cast<std::size_t>(args.get_int("bursts", 6));
  config.jobs_per_burst = static_cast<std::size_t>(args.get_int("jobs-per-burst", 8));
  config.horizon = 10 * static_cast<std::int64_t>(config.bursts);
  config.burst_window = 6;
  config.max_work = 8;
  double alpha = args.get_double("alpha", 3.0);
  auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // The power model rides on the instance itself (PowerSpec), so the facade,
  // the baselines, and a serialized copy of this workload all measure energy
  // the same way -- no side-channel power argument to keep in sync.
  Instance instance =
      generate_bursty(config, seed).with_power(PowerSpec::alpha(alpha));
  std::cout << "cluster workload: " << instance.summary() << "\n";
  if (args.has("trace")) {
    save_instance(instance, args.get("trace", "trace.csv"));
    std::cout << "trace written to " << args.get("trace", "trace.csv") << "\n";
  }
  auto power = instance.power().instantiate();
  const PowerFunction& p = *power;

  // The scoreboard engines all run through the unified facade; each row's notes
  // come out of the common SolveStats telemetry.
  auto run = [&](Engine engine) {
    SolveOptions options;
    options.engine = engine;
    return solve(instance, options);
  };

  SolveResult opt = run(Engine::kExact);
  double e_opt = opt.energy;

  Table table({"strategy", "energy", "vs OPT", "notes"});
  table.row(std::string("OPT (migratory, offline)"), e_opt, 1.0,
            std::to_string(opt.stats.phases) + " speed levels, " +
                std::to_string(opt.stats.flow_computations) + " flow computations");

  SolveResult fast = run(Engine::kFast);
  table.row(std::string("OPT (double-precision)"), fast.energy, fast.energy / e_opt,
            std::to_string(fast.stats.flow_computations) + " flow computations, " +
                Table::num(fast.stats.wall_seconds * 1e3, 1) + " ms");

  SolveResult oa = run(Engine::kOa);
  table.row(std::string("OA(m) (online)"), oa.energy, oa.energy / e_opt,
            std::to_string(oa.stats.replans) + " replans, bound " +
                Table::num(oa_competitive_bound(alpha), 1));

  SolveResult avr = run(Engine::kAvr);
  table.row(std::string("AVR(m) (online)"), avr.energy, avr.energy / e_opt,
            std::to_string(avr.stats.peel_events) + " peels, bound " +
                Table::num(avr_multi_competitive_bound(alpha), 1));

  auto greedy = nonmigratory_greedy(instance, p);
  table.row(std::string("no-migration greedy"), greedy.energy, greedy.energy / e_opt,
            std::string("jobs pinned to machines"));

  auto round_robin = nonmigratory_round_robin(instance, p);
  table.row(std::string("no-migration round-robin"), round_robin.energy,
            round_robin.energy / e_opt, std::string(""));

  std::cout << '\n';
  table.print(std::cout);

  // Every schedule above passed through the exact feasibility checker at least
  // once in the test suite; verify the headline one here too.
  const Schedule& opt_schedule = *opt.exact_schedule();
  if (std::size_t violations = opt.violations(instance); violations != 0) {
    std::cerr << "BUG: optimal schedule has " << violations
              << " feasibility violations\n";
    return 1;
  }
  std::cout << "\nall schedules complete " << instance.total_work()
            << " units of work; OPT peak speed " << opt_schedule.max_speed() << "\n";

  // Capacity planning: what does each extra machine buy?
  std::cout << "\ncapacity curve (optimal energy & required peak speed by machine "
               "count):\n";
  Table capacity({"machines", "energy", "vs current", "peak speed"});
  auto curve = capacity_curve(instance, p, config.machines);
  for (const CapacityPoint& point : curve) {
    capacity.row(point.machines, point.energy, point.energy / e_opt,
                 point.peak_speed);
  }
  capacity.print(std::cout);
  return 0;
}
