// Tests for the adversarial-instance search (S34).

#include "mpss/online/adversary_search.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/workload/traces.hpp"

namespace mpss {
namespace {

AdversaryConfig small_config() {
  AdversaryConfig config;
  config.jobs = 5;
  config.machines = 1;
  config.horizon = 10;
  config.max_work = 6;
  config.alpha = 2.0;
  config.iterations = 120;
  config.restarts = 2;
  return config;
}

TEST(AdversarySearch, DeterministicForSeed) {
  auto a = search_adversary(OnlineAlgorithmKind::kAvr, small_config(), 42);
  auto b = search_adversary(OnlineAlgorithmKind::kAvr, small_config(), 42);
  EXPECT_DOUBLE_EQ(a.ratio, b.ratio);
  EXPECT_EQ(instance_to_csv(a.instance), instance_to_csv(b.instance));
}

TEST(AdversarySearch, FindsNontrivialAvrAdversary) {
  auto result = search_adversary(OnlineAlgorithmKind::kAvr, small_config(), 7);
  EXPECT_GE(result.ratio, 1.15);  // hill climbing must beat a random instance
  EXPECT_LE(result.ratio, avr_multi_competitive_bound(2.0) + 1e-9);
  // The reported ratio is reproducible from the returned instance.
  AlphaPower p(2.0);
  EXPECT_NEAR(result.ratio,
              avr_energy(result.instance, p) / optimal_energy(result.instance, p),
              1e-9);
}

TEST(AdversarySearch, FindsNontrivialOaAdversary) {
  auto result = search_adversary(OnlineAlgorithmKind::kOa, small_config(), 5);
  EXPECT_GT(result.ratio, 1.05);
  EXPECT_LE(result.ratio, oa_competitive_bound(2.0) + 1e-9);
  AlphaPower p(2.0);
  EXPECT_NEAR(result.ratio,
              oa_energy(result.instance, p) / optimal_energy(result.instance, p),
              1e-9);
}

TEST(AdversarySearch, InstancesStayValidAndIntegral) {
  auto result = search_adversary(OnlineAlgorithmKind::kAvr, small_config(), 11);
  EXPECT_TRUE(result.instance.has_integral_times());
  EXPECT_EQ(result.instance.size(), 5u);
  for (const Job& job : result.instance.jobs()) {
    EXPECT_LT(job.release, job.deadline);
    EXPECT_GE(job.release, Q(0));
    EXPECT_LE(job.deadline, Q(10));
    EXPECT_GE(job.work, Q(1));
    EXPECT_LE(job.work, Q(6));
  }
  EXPECT_GE(result.evaluations, 120u);
}

TEST(AdversarySearch, MoreIterationsNeverHurt) {
  AdversaryConfig shorter = small_config();
  shorter.iterations = 20;
  shorter.restarts = 1;
  AdversaryConfig longer = small_config();
  longer.iterations = 200;
  longer.restarts = 1;
  // Same seed: the longer run extends the same trajectory, so its best ratio is
  // at least the shorter run's.
  auto a = search_adversary(OnlineAlgorithmKind::kAvr, shorter, 3);
  auto b = search_adversary(OnlineAlgorithmKind::kAvr, longer, 3);
  EXPECT_GE(b.ratio, a.ratio - 1e-12);
}

TEST(AdversarySearch, RejectsDegenerateConfig) {
  AdversaryConfig bad = small_config();
  bad.jobs = 0;
  EXPECT_THROW((void)search_adversary(OnlineAlgorithmKind::kOa, bad, 1),
               std::invalid_argument);
  bad = small_config();
  bad.alpha = 1.0;
  EXPECT_THROW((void)search_adversary(OnlineAlgorithmKind::kOa, bad, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpss
