// Hardening tests (S48): deadlines, retries, and fault injection. Every test
// here asserts the same contract from a different angle -- a network failure
// surfaces as a TYPED error (FrameError with the right kind, or a
// ProtocolError) or a successful retry, within its deadline; never a hang,
// never a dropped future, and the daemon keeps serving afterwards.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mpss/net/client.hpp"
#include "mpss/net/deadline.hpp"
#include "mpss/net/fault_proxy.hpp"
#include "mpss/net/framing.hpp"
#include "mpss/net/metrics_http.hpp"
#include "mpss/net/protocol.hpp"
#include "mpss/net/server.hpp"
#include "mpss/obs/registry.hpp"
#include "mpss/solve.hpp"

namespace mpss::net {
namespace {

using Clock = std::chrono::steady_clock;

Instance small_instance() {
  return Instance({Job{Q(0), Q(8), Q(6)}, Job{Q(2), Q(4), Q(6)},
                   Job{Q(2), Q(4), Q(4)}},
                  2);
}

struct SocketPair {
  ScopedFd a;
  ScopedFd b;

  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = ScopedFd(fds[0]);
    b = ScopedFd(fds[1]);
  }
};

ScopedFd raw_connect(std::uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  EXPECT_TRUE(fd.valid());
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
  EXPECT_EQ(::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                      sizeof address),
            0);
  return fd;
}

std::uint64_t counter(const char* name) {
  return obs::Registry::global().snapshot().value(name);
}

/// Waits (bounded) for the peer to close: returns true when recv reports EOF
/// or a reset within `ms`.
bool peer_closed_within(int fd, std::int64_t ms) {
  auto deadline = Deadline::after_ms(ms);
  char byte;
  for (;;) {
    std::int64_t left = deadline.remaining_ms();
    if (left == 0) return false;
    pollfd poll_fd{fd, POLLIN, 0};
    int ready = ::poll(&poll_fd, 1, static_cast<int>(left));
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return false;
    ssize_t n = ::recv(fd, &byte, 1, 0);
    if (n == 0) return true;                      // orderly close
    if (n < 0) return errno == ECONNRESET;        // reset also counts
  }
}

// ---- deadline & backoff primitives -----------------------------------------

TEST(Deadline, ClampPicksTheTighterBound) {
  Deadline never = Deadline::never();
  EXPECT_FALSE(never.armed());
  EXPECT_FALSE(never.expired());
  EXPECT_EQ(never.remaining_ms(), -1);
  EXPECT_EQ(never.clamp_ms(250), 250);
  EXPECT_EQ(never.clamp_ms(0), 0);

  Deadline budget = Deadline::after_ms(10'000);
  EXPECT_TRUE(budget.armed());
  std::int64_t clamped = budget.clamp_ms(250);
  EXPECT_EQ(clamped, 250);  // op timeout is tighter than a 10s budget
  std::int64_t unlimited_op = budget.clamp_ms(0);
  EXPECT_GT(unlimited_op, 9'000);  // budget is the only bound
  EXPECT_LE(unlimited_op, 10'000);

  Deadline tiny = Deadline::after_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(tiny.expired());
  EXPECT_EQ(tiny.remaining_ms(), 0);
  EXPECT_EQ(tiny.clamp_ms(250), 0);
}

TEST(Deadline, BackoffIsBoundedAndReproducible) {
  std::uint64_t state_a = 42, state_b = 42;
  for (int attempt = 0; attempt < 12; ++attempt) {
    std::int64_t a = backoff_full_jitter(attempt, 10, 2'000, state_a);
    std::int64_t b = backoff_full_jitter(attempt, 10, 2'000, state_b);
    EXPECT_EQ(a, b) << "same seed, same schedule";
    EXPECT_GE(a, 0);
    std::int64_t ceiling = attempt < 8 ? (10ll << attempt) : 2'000;
    EXPECT_LE(a, std::min<std::int64_t>(ceiling, 2'000));
  }
  // Degenerate bases retry immediately rather than dividing by zero.
  std::uint64_t state = 7;
  EXPECT_EQ(backoff_full_jitter(3, 0, 100, state), 0);
  // Huge attempt counts saturate at the cap instead of shifting into UB.
  EXPECT_LE(backoff_full_jitter(63, 10, 2'000, state), 2'000);
}

// ---- framing: typed failure taxonomy ---------------------------------------

TEST(FramingTyped, CleanEofIsFalseNotAnError) {
  SocketPair pair;
  pair.a.close();
  std::string payload;
  EXPECT_FALSE(read_frame(pair.b.get(), payload));
}

TEST(FramingTyped, PrefixTruncationIsKindTruncated) {
  SocketPair pair;
  const char half_prefix[2] = {0, 0};
  ASSERT_EQ(::send(pair.a.get(), half_prefix, 2, 0), 2);
  pair.a.close();
  std::string payload;
  try {
    (void)read_frame(pair.b.get(), payload);
    FAIL() << "expected FrameError";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kTruncated);
    EXPECT_NE(std::string(error.what()).find("2 of 4"), std::string::npos)
        << error.what();
  }
}

TEST(FramingTyped, PayloadTruncationIsKindTruncated) {
  SocketPair pair;
  const unsigned char prefix[4] = {0, 0, 0, 10};
  ASSERT_EQ(::send(pair.a.get(), prefix, 4, 0), 4);
  ASSERT_EQ(::send(pair.a.get(), "abc", 3, 0), 3);
  pair.a.close();
  std::string payload;
  try {
    (void)read_frame(pair.b.get(), payload);
    FAIL() << "expected FrameError";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kTruncated);
    EXPECT_NE(std::string(error.what()).find("3 of 10"), std::string::npos)
        << error.what();
  }
}

TEST(FramingTyped, OversizeIsKindOversize) {
  SocketPair pair;
  const unsigned char huge[4] = {0x7f, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(pair.a.get(), huge, 4, 0), 4);
  std::string payload;
  try {
    (void)read_frame(pair.b.get(), payload, /*max_bytes=*/1 << 20);
    FAIL() << "expected FrameError";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kOversize);
  }
}

TEST(FramingTyped, IdleDeadlineIsKindTimeout) {
  SocketPair pair;
  std::string payload;
  auto started = Clock::now();
  try {
    (void)read_frame(pair.b.get(), payload, kMaxFrameBytes,
                     ReadDeadlines{.idle_ms = 100});
    FAIL() << "expected FrameError";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kTimeout);
  }
  auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - started);
  EXPECT_GE(waited.count(), 90);
  EXPECT_LT(waited.count(), 3'000) << "deadline must not balloon";
}

TEST(FramingTyped, SlowlorisMidFrameIsKindTimeout) {
  SocketPair pair;
  // One prefix byte arrives, then silence: the frame deadline (armed at that
  // byte) must cut the read off even though the idle deadline never fires.
  std::atomic<bool> done{false};
  std::thread dribbler([&] {
    const char byte = 0;
    ::send(pair.a.get(), &byte, 1, 0);
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  std::string payload;
  try {
    (void)read_frame(pair.b.get(), payload, kMaxFrameBytes,
                     ReadDeadlines{.frame_ms = 150});
    ADD_FAILURE() << "expected FrameError";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kTimeout);
    EXPECT_NE(std::string(error.what()).find("mid-frame"), std::string::npos)
        << error.what();
  }
  done.store(true);
  dribbler.join();
}

TEST(FramingTyped, RecvSocketTimeoutIsKindTimeout) {
  SocketPair pair;
  set_recv_timeout(pair.b.get(), 100, "test");
  std::string payload;
  try {
    (void)read_frame(pair.b.get(), payload);
    FAIL() << "expected FrameError";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kTimeout);
  }
}

// ---- framing: short writes (satellite: write_frame audit) ------------------

TEST(FramingShortWrite, TinySndbufStillDeliversWholeFrame) {
  SocketPair pair;
  int tiny = 1;  // the kernel clamps to its floor; the point is "far smaller
                 // than the frame", forcing many partial sends
  ASSERT_EQ(::setsockopt(pair.a.get(), SOL_SOCKET, SO_SNDBUF, &tiny,
                         sizeof tiny),
            0);
  std::string big(1 << 20, 'z');
  for (std::size_t i = 0; i < big.size(); i += 4097) big[i] = char('a' + i % 23);
  std::string received;
  std::thread reader([&] {
    std::string payload;
    ASSERT_TRUE(read_frame(pair.b.get(), payload));
    received = std::move(payload);
  });
  write_frame(pair.a.get(), big);
  reader.join();
  EXPECT_EQ(received, big);
}

TEST(FramingShortWrite, SendTimeoutOnFullWindowIsKindTimeout) {
  SocketPair pair;
  set_send_timeout(pair.a.get(), 100, "test");
  // Nobody reads from pair.b: the pipe fills, SO_SNDTIMEO fires mid-frame.
  std::string big(8 << 20, 'x');
  try {
    write_frame(pair.a.get(), big);
    FAIL() << "expected FrameError";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kTimeout);
    EXPECT_NE(std::string(error.what()).find("SO_SNDTIMEO"), std::string::npos)
        << error.what();
  }
}

TEST(FramingShortWrite, PeerGoneIsKindReset) {
  SocketPair pair;
  pair.b.close();
  std::string payload(1 << 16, 'y');
  try {
    write_frame(pair.a.get(), payload);
    FAIL() << "expected FrameError";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kReset);
  }
}

// ---- the real server: read deadlines, truncation, inflight cap -------------

TEST(ServerHardening, TruncatedFrameAgainstRealServerIsCountedAndSurvived) {
  SolveServerOptions options;
  options.service.threads = 1;
  SolveServer server(options);
  std::uint64_t frame_errors_before = counter("net.frame_errors");

  {
    ScopedFd raw = raw_connect(server.port());
    const char half_prefix[2] = {0, 1};
    ASSERT_EQ(::send(raw.get(), half_prefix, 2, 0), 2);
  }  // close with the prefix half-sent: the reader sees mid-frame EOF

  // The error is counted (poll briefly; the reader thread races us)...
  auto deadline = Deadline::after_ms(3'000);
  while (counter("net.frame_errors") == frame_errors_before &&
         !deadline.expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(counter("net.frame_errors"), frame_errors_before);

  // ...and the daemon still serves the next client.
  SolveClient client("127.0.0.1", server.port());
  SolveResult result = client.solve(small_instance());
  EXPECT_TRUE(result.ok());
}

TEST(ServerHardening, SlowlorisClientIsCutOffByFrameDeadline) {
  SolveServerOptions options;
  options.service.threads = 1;
  options.frame_timeout_ms = 200;
  SolveServer server(options);
  std::uint64_t timeouts_before = counter("net.timeouts");

  ScopedFd raw = raw_connect(server.port());
  const char byte = 0;  // one prefix byte, then silence
  ASSERT_EQ(::send(raw.get(), &byte, 1, 0), 1);
  EXPECT_TRUE(peer_closed_within(raw.get(), 5'000))
      << "server must drop the dribbling connection";
  EXPECT_GT(counter("net.timeouts"), timeouts_before);

  // The daemon survives and serves an honest client afterwards.
  SolveClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.health().at("status").as_string(), "ok");
}

TEST(ServerHardening, IdleTimeoutClosesQuietConnections) {
  SolveServerOptions options;
  options.service.threads = 1;
  options.idle_timeout_ms = 150;
  SolveServer server(options);

  ScopedFd raw = raw_connect(server.port());  // connect, say nothing
  EXPECT_TRUE(peer_closed_within(raw.get(), 5'000));
}

TEST(ServerHardening, InflightCapStillAnswersDeepPipelines) {
  SolveServerOptions options;
  options.service.threads = 1;
  options.max_inflight_per_connection = 2;
  SolveServer server(options);

  ScopedFd raw = raw_connect(server.port());
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    Request request;
    request.id = static_cast<std::uint64_t>(i + 1);
    request.verb = Verb::kHealth;
    write_frame(raw.get(), encode_request(request));
  }
  std::string payload;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(read_frame(raw.get(), payload)) << "response " << i;
    Response response = decode_response(payload);
    EXPECT_EQ(response.id, static_cast<std::uint64_t>(i + 1))
        << "responses stay FIFO under the cap";
    EXPECT_TRUE(response.ok);
  }
}

TEST(ServerHardening, RetryAndTimeoutCountersAreExposed) {
  SolveServerOptions options;
  options.service.threads = 1;
  SolveServer server(options);
  SolveClient client("127.0.0.1", server.port());
  std::string exposition = client.metrics();
  EXPECT_NE(exposition.find("mpss_net_retries_total"), std::string::npos)
      << "net.retries must be present even at zero";
  EXPECT_NE(exposition.find("mpss_net_timeouts_total"), std::string::npos)
      << "net.timeouts must be present even at zero";
}

// ---- metrics endpoint: slowloris -------------------------------------------

TEST(MetricsHardening, SlowClientCannotPinTheScrapeEndpoint) {
  MetricsHttpServer server("127.0.0.1", 0, /*head_timeout_ms=*/150);
  std::uint64_t slow_before = counter("net.metrics_slow_clients");

  // A client that connects and never finishes its request head.
  ScopedFd slow = raw_connect(server.port());
  ASSERT_EQ(::send(slow.get(), "GET /met", 8, 0), 8);  // never the blank line
  EXPECT_TRUE(peer_closed_within(slow.get(), 5'000))
      << "endpoint must cut the slowloris off";
  EXPECT_GT(counter("net.metrics_slow_clients"), slow_before);

  // And an honest scrape right after succeeds.
  ScopedFd fast = raw_connect(server.port());
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::send(fast.get(), request, sizeof request - 1, 0),
            static_cast<ssize_t>(sizeof request - 1));
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fast.get(), buffer, sizeof buffer, 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
}

// ---- client retries --------------------------------------------------------

/// A server that truncates its first `flaky_responses` replies mid-frame and
/// answers honestly afterwards: the deterministic stand-in for "the network
/// ate the response", driving the client's retry path without randomness.
class FlakyServer {
 public:
  explicit FlakyServer(int flaky_responses)
      : flaky_responses_(flaky_responses),
        listen_fd_(bind_listen_ipv4("127.0.0.1", 0, "FlakyServer")),
        port_(bound_port(listen_fd_.get(), "FlakyServer")) {
    acceptor_ = std::thread([this] { serve(); });
  }

  ~FlakyServer() {
    ::shutdown(listen_fd_.get(), SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int connections() const { return connections_.load(); }

 private:
  void serve() {
    for (;;) {
      int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (raw < 0) {
        if (errno == EINTR) continue;
        return;
      }
      ScopedFd fd(raw);
      connections_.fetch_add(1);
      std::string payload;
      try {
        while (read_frame(fd.get(), payload)) {
          Request request = decode_request(payload);
          json::Value health;
          health.set("status", "ok");
          health.set("protocol", static_cast<double>(kProtocolVersion));
          std::string response =
              encode_payload_response(request.id, "health", std::move(health));
          if (flaky_responses_ > 0) {
            --flaky_responses_;
            // Two bytes of the length prefix, then FIN: the client sees
            // kTruncated mid-prefix.
            const char stub[2] = {0, 0};
            ::send(fd.get(), stub, 2, MSG_NOSIGNAL);
            break;
          }
          write_frame(fd.get(), response);
        }
      } catch (const FrameError&) {
        // client went away; accept the next connection
      }
    }
  }

  int flaky_responses_;
  ScopedFd listen_fd_;
  std::uint16_t port_;
  std::atomic<int> connections_{0};
  std::thread acceptor_;
};

TEST(ClientRetry, TruncatedResponseIsRetriedOnAFreshConnection) {
  FlakyServer server(/*flaky_responses=*/2);
  std::uint64_t retries_before = counter("net.retries");

  SolveClientOptions options;
  options.request_budget_ms = 10'000;
  options.retry.max_attempts = 4;
  options.retry.backoff_ms = 1;
  options.retry.backoff_max_ms = 20;
  options.retry.jitter_seed = 99;
  SolveClient client("127.0.0.1", server.port(), options);

  json::Value health = client.health();  // two truncations, then success
  EXPECT_EQ(health.at("status").as_string(), "ok");
  EXPECT_EQ(server.connections(), 3) << "one per attempt, fresh each time";
  EXPECT_GE(counter("net.retries"), retries_before + 2);
}

TEST(ClientRetry, RetriesExhaustedSurfacesTheTypedError) {
  FlakyServer server(/*flaky_responses=*/100);  // never heals
  SolveClientOptions options;
  options.retry.max_attempts = 2;
  options.retry.backoff_ms = 1;
  options.retry.jitter_seed = 7;
  SolveClient client("127.0.0.1", server.port(), options);
  try {
    (void)client.health();
    FAIL() << "expected FrameError";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kTruncated);
  }
  EXPECT_EQ(server.connections(), 2) << "max_attempts bounds the connections";
}

TEST(ClientRetry, ShutdownVerbIsNeverRetried) {
  FlakyServer server(/*flaky_responses=*/100);
  SolveClientOptions options;
  options.retry.max_attempts = 5;
  options.retry.backoff_ms = 1;
  SolveClient client("127.0.0.1", server.port(), options);
  EXPECT_THROW((void)client.request_shutdown(), FrameError);
  EXPECT_EQ(server.connections(), 1)
      << "a lost shutdown ack must not re-send the verb";
}

TEST(ClientRetry, RequestBudgetBoundsTheWholeRoundTrip) {
  // A stalling proxy in front of a healthy server: without the budget the
  // client would block for the full io timeout times max_attempts.
  SolveServerOptions server_options;
  server_options.service.threads = 1;
  SolveServer server(server_options);

  FaultProxyOptions proxy_options;
  proxy_options.upstream_port = server.port();
  proxy_options.seed = 5;
  proxy_options.fault_probability = 1.0;
  proxy_options.max_fault_offset = 0;  // cut before the first byte moves
  FaultProxy proxy(proxy_options);

  SolveClientOptions options;
  options.connect_timeout_ms = 1'000;
  options.io_timeout_ms = 5'000;  // far looser than the budget
  options.request_budget_ms = 600;
  options.retry.max_attempts = 10;
  options.retry.backoff_ms = 1;
  options.retry.jitter_seed = 3;

  auto started = Clock::now();
  try {
    SolveClient client("127.0.0.1", proxy.port(), options);
    (void)client.health();
    // A lucky fault draw (e.g. truncate-at-0 resolving instantly) can still
    // succeed; the bound below is what matters.
  } catch (const FrameError&) {
  } catch (const ProtocolError&) {
  } catch (const std::runtime_error&) {
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - started);
  EXPECT_LT(elapsed.count(), 3'000)
      << "budget must cap the round trip well under io_timeout * attempts";
}

// ---- the fault sweep -------------------------------------------------------

/// The deterministic seed matrix: for every seed the client either succeeds
/// (possibly after retries) or throws a TYPED error, within its budget. The
/// server must stay healthy throughout and drain cleanly afterwards -- no
/// hang, no dropped future, no stuck thread.
TEST(FaultSweep, EveryFaultResolvesTypedWithinDeadline) {
  SolveServerOptions server_options;
  server_options.service.threads = 2;
  server_options.frame_timeout_ms = 400;  // truncated requests release readers
  SolveServer server(server_options);

  int successes = 0, typed_failures = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    FaultProxyOptions proxy_options;
    proxy_options.upstream_port = server.port();
    proxy_options.seed = seed;
    proxy_options.fault_probability = 1.0;
    proxy_options.max_fault_offset = 96;
    proxy_options.delay_ms = 10;
    FaultProxy proxy(proxy_options);

    SolveClientOptions options;
    options.connect_timeout_ms = 1'000;
    options.io_timeout_ms = 300;
    options.request_budget_ms = 2'500;
    options.retry.max_attempts = 4;
    options.retry.backoff_ms = 2;
    options.retry.backoff_max_ms = 20;
    options.retry.jitter_seed = seed;

    auto started = Clock::now();
    try {
      SolveClient client("127.0.0.1", proxy.port(), options);
      SolveResult result = client.solve(small_instance());
      EXPECT_TRUE(result.ok());
      ++successes;
    } catch (const FrameError&) {
      ++typed_failures;
    } catch (const ProtocolError&) {
      ++typed_failures;
    } catch (const std::runtime_error&) {
      ++typed_failures;  // connect-path failure: typed, expected
    }
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - started);
    EXPECT_LT(elapsed.count(), 8'000) << "seed " << seed << " blocked too long";

    FaultProxyStats stats = proxy.stats();
    EXPECT_GE(stats.connections, 1u) << "seed " << seed;
    EXPECT_GE(stats.faults_injected, 1u) << "seed " << seed;
  }
  EXPECT_EQ(successes + typed_failures, 10) << "every call must resolve";

  // The daemon is still healthy after the whole sweep...
  SolveClient direct("127.0.0.1", server.port());
  EXPECT_EQ(direct.health().at("status").as_string(), "ok");
  direct.close();
  // ...and drains without hanging (the test would time out otherwise).
  server.shutdown();
}

TEST(FaultSweep, DownstreamFaultsAreHealedByRetries) {
  // Faults only on server->client responses: the server always executes the
  // request, the client sometimes loses the answer. With enough attempts and
  // the result cache absorbing duplicates, every call must succeed.
  SolveServerOptions server_options;
  server_options.service.threads = 2;
  SolveServer server(server_options);

  FaultProxyOptions proxy_options;
  proxy_options.upstream_port = server.port();
  proxy_options.seed = 20'26;
  proxy_options.fault_probability = 1.0;  // every connection drawn a fault;
                                          // truncate/reset/stall break it,
                                          // delay/short-write do not
  proxy_options.max_fault_offset = 64;
  proxy_options.faults_downstream_only = true;
  FaultProxy proxy(proxy_options);

  std::uint64_t retries_before = counter("net.retries");
  int successes = 0;
  for (int i = 0; i < 8; ++i) {
    SolveClientOptions options;
    options.connect_timeout_ms = 1'000;
    options.io_timeout_ms = 300;
    options.request_budget_ms = 5'000;
    options.retry.max_attempts = 8;
    options.retry.backoff_ms = 1;
    options.retry.backoff_max_ms = 10;
    options.retry.jitter_seed = static_cast<std::uint64_t>(i + 1);
    try {
      SolveClient client("127.0.0.1", proxy.port(), options);
      if (client.solve(small_instance()).ok()) ++successes;
    } catch (const std::exception& error) {
      ADD_FAILURE() << "request " << i << " failed past retries: "
                    << error.what();
    }
  }
  EXPECT_EQ(successes, 8);
  // Deterministic under the fixed seeds: the schedule breaks at least one
  // first attempt, so the healed requests are visible in the counter.
  EXPECT_GT(counter("net.retries"), retries_before);
  FaultProxyStats stats = proxy.stats();
  EXPECT_EQ(stats.faults_injected, stats.connections);
  EXPECT_GT(stats.connections, 8u) << "retries opened extra connections";
}

// ---------------------------------------------------------------------------
// Fuzz regressions: hostile documents that once reached an unchecked
// double -> integer cast (undefined behavior under UBSan) in the decode
// paths. Each pin asserts the typed rejection; none may crash or hang.
// ---------------------------------------------------------------------------

TEST(FuzzRegression, HugeIdIsRejectedNotCast) {
  // 1e300 passed the old `raw == floor(raw)` check, then hit an undefined
  // static_cast<uint64_t>. Must surface as kBadRequest.
  EXPECT_THROW(
      decode_request(R"({"v":1,"id":1e300,"verb":"health"})"),
      ProtocolError);
  EXPECT_THROW(
      decode_request(R"({"v":1,"id":1e309,"verb":"health"})"),
      ProtocolError);
}

TEST(FuzzRegression, HugeMachinesIsRejectedNotCast) {
  EXPECT_THROW(
      instance_from_json(R"({"mpss_instance":1,"machines":1e300,"jobs":[]})"),
      std::invalid_argument);
  // 1e309 overflows strtod to +inf; inf must fail the same bound check.
  EXPECT_THROW(
      instance_from_json(R"({"mpss_instance":1,"machines":1e309,"jobs":[]})"),
      std::invalid_argument);
}

TEST(FuzzRegression, HostileSolveFieldsAreRejectedNotCast) {
  const std::string prefix =
      R"({"v":1,"id":1,"verb":"solve","instance":)"
      R"({"mpss_instance":1,"machines":2,"jobs":[["0","4","2"]]})";
  // lp_grid, priority, deadline_ms each cast to an integer type after parse.
  EXPECT_THROW(decode_request(prefix + R"(,"options":{"lp_grid":1e300}})"),
               ProtocolError);
  EXPECT_THROW(decode_request(prefix + R"(,"priority":1e300})"),
               ProtocolError);
  EXPECT_THROW(decode_request(prefix + R"(,"priority":-1e300})"),
               ProtocolError);
  EXPECT_THROW(decode_request(prefix + R"(,"deadline_ms":1e300})"),
               ProtocolError);
  // deadline_ms once checked only `raw < 0`, which NaN-shaped inputs (and
  // anything past 2^53) slipped past. strtod has no NaN literal in JSON, but
  // huge values exercised the same cast.
  EXPECT_THROW(decode_request(prefix + R"(,"deadline_ms":9e18})"),
               ProtocolError);
}

TEST(FuzzRegression, HugeScheduleIndicesAreRejectedNotCast) {
  // A hostile *response* (malicious or corrupted server) with an unbounded
  // slice job index or machine count must be rejected, not cast.
  const std::string response =
      R"({"v":1,"id":1,"ok":true,"results":[{"status":"ok",)"
      R"("error_detail":"","energy":1.0,)"
      R"("schedule":{"type":"exact","machines":1e300,"slices":[]}}]})";
  EXPECT_THROW(decode_response(response), ProtocolError);
  const std::string bad_job =
      R"({"v":1,"id":1,"ok":true,"results":[{"status":"ok",)"
      R"("error_detail":"","energy":1.0,)"
      R"("schedule":{"type":"exact","machines":1,)"
      R"("slices":[[0,0.0,1.0,1.0,1e300]]}}]})";
  EXPECT_THROW(decode_response(bad_job), ProtocolError);
}

}  // namespace
}  // namespace mpss::net
