// Tests for the McNaughton wrap-around packer (S7) -- the construction behind
// Lemma 2 and AVR(m)'s uniform branch.

#include "mpss/core/mcnaughton.hpp"

#include <gtest/gtest.h>

#include "mpss/util/random.hpp"

namespace mpss {
namespace {

// Validates the two invariants the construction promises: machine-local
// non-overlap and no job running on two machines simultaneously.
void expect_wrap_invariants(const Schedule& schedule, std::size_t jobs) {
  for (std::size_t machine = 0; machine < schedule.machines(); ++machine) {
    auto slices = schedule.machine(machine);
    for (std::size_t i = 0; i + 1 < slices.size(); ++i) {
      EXPECT_LE(slices[i].end, slices[i + 1].start) << "machine overlap";
    }
  }
  for (std::size_t job = 0; job < jobs; ++job) {
    auto slices = schedule.slices_of(job);
    for (std::size_t i = 0; i + 1 < slices.size(); ++i) {
      EXPECT_LE(slices[i].end, slices[i + 1].start) << "job self-parallelism";
    }
  }
}

TEST(McNaughton, SingleMachineSequential) {
  Schedule schedule(1);
  std::vector<Chunk> chunks{{0, Q(1, 2)}, {1, Q(1, 4)}, {2, Q(1, 4)}};
  mcnaughton_pack(schedule, Q(10), Q(1), 0, 1, Q(3), chunks);
  auto slices = schedule.machine(0);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0].start, Q(10));
  EXPECT_EQ(slices[2].end, Q(11));
  expect_wrap_invariants(schedule, 3);
}

TEST(McNaughton, WrapsAcrossMachines) {
  Schedule schedule(2);
  // Three chunks of 2/3 in a unit interval on 2 machines: the middle one wraps.
  std::vector<Chunk> chunks{{0, Q(2, 3)}, {1, Q(2, 3)}, {2, Q(2, 3)}};
  mcnaughton_pack(schedule, Q(0), Q(1), 0, 2, Q(1), chunks);
  expect_wrap_invariants(schedule, 3);
  // Job 1 is split: [2/3, 1) on machine 0 and [0, 1/3) on machine 1.
  auto split = schedule.slices_of(1);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0].start, Q(0));
  EXPECT_EQ(split[0].end, Q(1, 3));
  EXPECT_EQ(split[1].start, Q(2, 3));
  EXPECT_EQ(split[1].end, Q(1));
  // Totals preserved.
  EXPECT_EQ(schedule.work_on(1), Q(2, 3));
}

TEST(McNaughton, FullLengthChunkMidMachine) {
  // A chunk of exactly the interval length starting mid-machine splits into two
  // complementary pieces that tile the window without overlapping.
  Schedule schedule(2);
  std::vector<Chunk> chunks{{0, Q(1, 2)}, {1, Q(1)}, {2, Q(1, 2)}};
  mcnaughton_pack(schedule, Q(0), Q(1), 0, 2, Q(1), chunks);
  expect_wrap_invariants(schedule, 3);
  EXPECT_EQ(schedule.work_on(1), Q(1));
}

TEST(McNaughton, UsesRequestedMachineRange) {
  Schedule schedule(5);
  std::vector<Chunk> chunks{{0, Q(1)}, {1, Q(1)}};
  mcnaughton_pack(schedule, Q(0), Q(1), 3, 2, Q(2), chunks);
  EXPECT_TRUE(schedule.machine(0).empty());
  EXPECT_TRUE(schedule.machine(2).empty());
  EXPECT_EQ(schedule.machine(3).size(), 1u);
  EXPECT_EQ(schedule.machine(4).size(), 1u);
}

TEST(McNaughton, SkipsZeroDurationChunks) {
  Schedule schedule(1);
  std::vector<Chunk> chunks{{0, Q(0)}, {1, Q(1, 2)}};
  mcnaughton_pack(schedule, Q(0), Q(1), 0, 1, Q(1), chunks);
  EXPECT_EQ(schedule.slice_count(), 1u);
  EXPECT_EQ(schedule.machine(0)[0].job, 1u);
}

TEST(McNaughton, RejectsOversizedChunks) {
  Schedule schedule(2);
  std::vector<Chunk> too_long{{0, Q(3, 2)}};
  EXPECT_THROW(mcnaughton_pack(schedule, Q(0), Q(1), 0, 2, Q(1), too_long),
               std::invalid_argument);
  std::vector<Chunk> too_much{{0, Q(1)}, {1, Q(1)}, {2, Q(1)}};
  EXPECT_THROW(mcnaughton_pack(schedule, Q(0), Q(1), 0, 2, Q(1), too_much),
               std::invalid_argument);
}

TEST(McNaughton, RejectsBadIntervalOrSpeed) {
  Schedule schedule(1);
  std::vector<Chunk> chunks{{0, Q(1, 2)}};
  EXPECT_THROW(mcnaughton_pack(schedule, Q(0), Q(0), 0, 1, Q(1), chunks),
               std::invalid_argument);
  EXPECT_THROW(mcnaughton_pack(schedule, Q(0), Q(1), 0, 1, Q(0), chunks),
               std::invalid_argument);
}

TEST(McNaughton, RandomizedInvariantSweep) {
  Xoshiro256 rng(31);
  for (int round = 0; round < 200; ++round) {
    std::size_t machines = 1 + rng.below(5);
    Q length(rng.uniform_int(1, 5), rng.uniform_int(1, 3));
    // Random chunks, each <= length, total <= machines * length.
    std::vector<Chunk> chunks;
    Q budget = length * Q(static_cast<std::int64_t>(machines));
    Q used;
    std::size_t job = 0;
    while (true) {
      Q chunk(rng.uniform_int(1, 12), 12);
      chunk = min(chunk * length, length);  // scale into (0, length]
      if (budget - used < chunk) break;
      chunks.push_back(Chunk{job++, chunk});
      used += chunk;
      if (chunks.size() > 20) break;
    }
    if (chunks.empty()) continue;
    Schedule schedule(machines);
    mcnaughton_pack(schedule, Q(rng.uniform_int(0, 10)), length, 0, machines, Q(1),
                    chunks);
    expect_wrap_invariants(schedule, job);
    // Work conservation per chunk.
    for (const Chunk& chunk : chunks) {
      EXPECT_EQ(schedule.work_on(chunk.job), chunk.duration);  // speed 1
    }
  }
}

}  // namespace
}  // namespace mpss
