// Differential tests: the exact-arithmetic and max-flow kernels validated against
// independent reference computations (__int128 arithmetic, long-double arithmetic,
// exhaustive min-cut enumeration). These kernels carry the correctness of the
// entire scheduler, so they get oracle treatment beyond their unit tests.

#include <gtest/gtest.h>

#include <cmath>

#include "mpss/flow/dinic.hpp"
#include "mpss/util/bigint.hpp"
#include "mpss/util/random.hpp"
#include "mpss/util/rational.hpp"

namespace mpss {
namespace {

/// Reference conversion: renders the 128-bit value in decimal and parses it, so
/// the only BigInt operation trusted here is from_string (itself unit-tested
/// against known digit strings).
BigInt from_int128(__int128 value) {
  bool negative = value < 0;
  unsigned __int128 magnitude = negative ? -static_cast<unsigned __int128>(value)
                                         : static_cast<unsigned __int128>(value);
  std::string digits;
  if (magnitude == 0) digits = "0";
  while (magnitude != 0) {
    digits.insert(digits.begin(),
                  static_cast<char>('0' + static_cast<int>(magnitude % 10)));
    magnitude /= 10;
  }
  BigInt out = BigInt::from_string(digits);
  return negative ? out.negated() : out;
}

TEST(Differential, BigIntMatchesInt128Ring) {
  Xoshiro256 rng(2024);
  for (int round = 0; round < 2000; ++round) {
    std::int64_t a = rng.uniform_int(-3'000'000'000LL, 3'000'000'000LL);
    std::int64_t b = rng.uniform_int(-3'000'000'000LL, 3'000'000'000LL);
    BigInt big_a(a), big_b(b);
    EXPECT_EQ(big_a + big_b, from_int128(static_cast<__int128>(a) + b));
    EXPECT_EQ(big_a - big_b, from_int128(static_cast<__int128>(a) - b));
    EXPECT_EQ(big_a * big_b, from_int128(static_cast<__int128>(a) * b));
    if (b != 0) {
      EXPECT_EQ(big_a / big_b, from_int128(static_cast<__int128>(a) / b));
      EXPECT_EQ(big_a % big_b, from_int128(static_cast<__int128>(a) % b));
    }
    EXPECT_EQ(big_a < big_b, a < b);
  }
}

TEST(Differential, BigIntWideProductsMatchInt128) {
  // Products spanning 3-4 limbs, against native 128-bit multiplication.
  Xoshiro256 rng(7);
  for (int round = 0; round < 1000; ++round) {
    std::int64_t a = rng.uniform_int(-(1LL << 62), 1LL << 62);
    std::int64_t b = rng.uniform_int(-(1LL << 62), 1LL << 62);
    EXPECT_EQ(BigInt(a) * BigInt(b), from_int128(static_cast<__int128>(a) * b));
  }
}

TEST(Differential, RationalTracksLongDouble) {
  Xoshiro256 rng(11);
  for (int round = 0; round < 1000; ++round) {
    std::int64_t an = rng.uniform_int(-500, 500), ad = rng.uniform_int(1, 500);
    std::int64_t bn = rng.uniform_int(-500, 500), bd = rng.uniform_int(1, 500);
    Q a(an, ad), b(bn, bd);
    long double fa = static_cast<long double>(an) / static_cast<long double>(ad);
    long double fb = static_cast<long double>(bn) / static_cast<long double>(bd);
    EXPECT_NEAR((a + b).to_double(), static_cast<double>(fa + fb), 1e-12);
    EXPECT_NEAR((a * b).to_double(), static_cast<double>(fa * fb), 1e-12);
    if (!b.is_zero()) {
      EXPECT_NEAR((a / b).to_double(), static_cast<double>(fa / fb), 1e-9);
    }
    // Ordering agrees whenever the doubles are clearly separated.
    if (std::abs(static_cast<double>(fa - fb)) > 1e-9) {
      EXPECT_EQ(a < b, fa < fb);
    }
  }
}

TEST(Differential, DinicMatchesExhaustiveMinCut) {
  // Max-flow == min-cut; on graphs with <= 7 nodes the min cut is enumerable.
  Xoshiro256 rng(33);
  for (int round = 0; round < 150; ++round) {
    std::size_t nodes = 3 + rng.below(5);  // 3..7
    struct Edge {
      std::size_t from, to;
      std::int64_t cap;
    };
    std::vector<Edge> edges;
    FlowNetwork<std::int64_t> net;
    net.add_nodes(nodes);
    std::size_t edge_count = nodes + rng.below(2 * nodes);
    for (std::size_t e = 0; e < edge_count; ++e) {
      std::size_t from = rng.below(nodes);
      std::size_t to = rng.below(nodes);
      if (from == to) continue;
      std::int64_t cap = rng.uniform_int(0, 12);
      edges.push_back(Edge{from, to, cap});
      net.add_edge(from, to, cap);
    }
    const std::size_t source = 0, sink = nodes - 1;
    std::int64_t flow = net.max_flow(source, sink);

    std::int64_t best_cut = std::numeric_limits<std::int64_t>::max();
    for (std::size_t mask = 0; mask < (std::size_t{1} << nodes); ++mask) {
      if (!(mask & (std::size_t{1} << source))) continue;
      if (mask & (std::size_t{1} << sink)) continue;
      std::int64_t cut = 0;
      for (const Edge& edge : edges) {
        bool from_in = mask & (std::size_t{1} << edge.from);
        bool to_in = mask & (std::size_t{1} << edge.to);
        if (from_in && !to_in) cut += edge.cap;
      }
      best_cut = std::min(best_cut, cut);
    }
    EXPECT_EQ(flow, best_cut) << "round " << round;
  }
}

TEST(Differential, RationalSumsAgainstFractionOracle) {
  // sum_{k=1}^{n} 1/(k(k+1)) telescopes to n/(n+1): a closed-form oracle that
  // stresses gcd normalization over many unlike denominators.
  for (int n : {1, 5, 37, 200}) {
    Q sum;
    for (int k = 1; k <= n; ++k) {
      sum += Q(1, static_cast<std::int64_t>(k) * (k + 1));
    }
    EXPECT_EQ(sum, Q(n, n + 1)) << n;
  }
}

}  // namespace
}  // namespace mpss
