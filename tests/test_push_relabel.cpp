// Tests for the push-relabel solver, including N-version cross-checks against
// Dinic on randomized networks (the max-flow kernel carries the correctness of
// the whole offline algorithm, so two independent implementations must agree).

#include "mpss/flow/push_relabel.hpp"

#include <gtest/gtest.h>

#include "mpss/flow/dinic.hpp"
#include "mpss/util/random.hpp"

namespace mpss {
namespace {

TEST(PushRelabel, SingleEdge) {
  PushRelabelNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto t = net.add_node();
  auto e = net.add_edge(s, t, 5);
  EXPECT_EQ(net.max_flow(s, t), 5);
  EXPECT_EQ(net.flow(e), 5);
}

TEST(PushRelabel, ClassicCrossNetwork) {
  PushRelabelNetwork<std::int64_t> net;
  auto v = net.add_nodes(6);
  net.add_edge(v + 0, v + 1, 16);
  net.add_edge(v + 0, v + 2, 13);
  net.add_edge(v + 1, v + 2, 10);
  net.add_edge(v + 2, v + 1, 4);
  net.add_edge(v + 1, v + 3, 12);
  net.add_edge(v + 3, v + 2, 9);
  net.add_edge(v + 2, v + 4, 14);
  net.add_edge(v + 4, v + 3, 7);
  net.add_edge(v + 3, v + 5, 20);
  net.add_edge(v + 4, v + 5, 4);
  EXPECT_EQ(net.max_flow(v + 0, v + 5), 23);
}

TEST(PushRelabel, DisconnectedAndZeroCapacity) {
  PushRelabelNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto mid = net.add_node();
  auto t = net.add_node();
  net.add_edge(s, mid, 10);
  auto zero = net.add_edge(mid, t, 0);
  EXPECT_EQ(net.max_flow(s, t), 0);
  EXPECT_EQ(net.flow(zero), 0);
}

TEST(PushRelabel, ExcessFlowsBackToSource) {
  // Source pushes 100 out, only 1 can reach the sink; the rest must return.
  PushRelabelNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto a = net.add_node();
  auto t = net.add_node();
  net.add_edge(s, a, 100);
  net.add_edge(a, t, 1);
  EXPECT_EQ(net.max_flow(s, t), 1);
}

TEST(PushRelabel, RejectsBadArguments) {
  PushRelabelNetwork<std::int64_t> net;
  auto s = net.add_node();
  auto t = net.add_node();
  EXPECT_THROW((void)net.add_edge(s, 9, 1), std::invalid_argument);
  EXPECT_THROW((void)net.add_edge(s, t, -2), std::invalid_argument);
  EXPECT_THROW((void)net.max_flow(s, s), std::invalid_argument);
  auto e = net.add_edge(s, t, 1);
  EXPECT_THROW((void)net.flow(e), InternalError);  // before max_flow
}

TEST(PushRelabel, RationalCapacities) {
  PushRelabelNetwork<Q> net;
  auto s = net.add_node();
  auto a = net.add_node();
  auto t = net.add_node();
  net.add_edge(s, a, Q(1, 3));
  net.add_edge(a, t, Q(1, 2));
  EXPECT_EQ(net.max_flow(s, t), Q(1, 3));
}

TEST(PushRelabel, AgreesWithDinicOnRandomGraphs) {
  Xoshiro256 rng(77);
  for (int round = 0; round < 60; ++round) {
    std::size_t nodes = 4 + rng.below(12);
    std::size_t edges = nodes + rng.below(3 * nodes);
    FlowNetwork<std::int64_t> dinic;
    PushRelabelNetwork<std::int64_t> push_relabel;
    dinic.add_nodes(nodes);
    push_relabel.add_nodes(nodes);
    for (std::size_t e = 0; e < edges; ++e) {
      std::size_t from = rng.below(nodes);
      std::size_t to = rng.below(nodes);
      if (from == to) continue;
      std::int64_t cap = rng.uniform_int(0, 25);
      dinic.add_edge(from, to, cap);
      push_relabel.add_edge(from, to, cap);
    }
    std::size_t source = 0;
    std::size_t sink = nodes - 1;
    EXPECT_EQ(dinic.max_flow(source, sink), push_relabel.max_flow(source, sink))
        << "round " << round;
  }
}

TEST(PushRelabel, AgreesWithDinicOnSchedulerShapedRationalGraphs) {
  // The exact shape the offline algorithm builds: source -> jobs -> intervals ->
  // sink, with rational capacities.
  Xoshiro256 rng(101);
  for (int round = 0; round < 20; ++round) {
    std::size_t jobs = 3 + rng.below(6);
    std::size_t intervals = 3 + rng.below(8);
    FlowNetwork<Q> dinic;
    PushRelabelNetwork<Q> push_relabel;
    auto build = [&](auto& net) {
      auto s = net.add_node();
      auto j0 = net.add_nodes(jobs);
      auto i0 = net.add_nodes(intervals);
      auto t = net.add_node();
      Xoshiro256 local(round * 1000 + 5);
      for (std::size_t k = 0; k < jobs; ++k) {
        net.add_edge(s, j0 + k, Q(local.uniform_int(1, 9), local.uniform_int(1, 4)));
        std::size_t first = local.below(intervals);
        std::size_t span = 1 + local.below(intervals - first);
        for (std::size_t j = first; j < first + span; ++j) {
          net.add_edge(j0 + k, i0 + j, Q(local.uniform_int(1, 5), 2));
        }
      }
      for (std::size_t j = 0; j < intervals; ++j) {
        net.add_edge(i0 + j, t, Q(local.uniform_int(1, 10), local.uniform_int(1, 3)));
      }
      return std::pair{s, t};
    };
    auto [ds, dt] = build(dinic);
    auto [ps, pt] = build(push_relabel);
    EXPECT_EQ(dinic.max_flow(ds, dt), push_relabel.max_flow(ps, pt))
        << "round " << round;
  }
}

}  // namespace
}  // namespace mpss
