// Tests for the instance analysis module.

#include "mpss/workload/analysis.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Analysis, HandComputedProfile) {
  // Two overlapping jobs: [0,4) w=4 (density 1), [2,6) w=8 (density 2).
  Instance instance({Job{Q(0), Q(4), Q(4)}, Job{Q(2), Q(6), Q(8)}}, 2);
  auto profile = analyze(instance);
  EXPECT_EQ(profile.jobs, 2u);
  EXPECT_EQ(profile.machines, 2u);
  EXPECT_EQ(profile.total_work, Q(12));
  EXPECT_EQ(profile.horizon, Q(6));
  EXPECT_EQ(profile.peak_parallelism, 2u);   // both active in [2,4)
  EXPECT_EQ(profile.peak_density, Q(3));     // 1 + 2
  // Max intensity: [2,6) holds 8 work -> 2; [0,6) holds 12 -> 2; [0,4) holds 4 -> 1.
  EXPECT_EQ(profile.max_intensity, Q(2));
  EXPECT_EQ(profile.average_load, Q(1));     // 12 / (2 machines * 6)
}

TEST(Analysis, EmptyInstance) {
  Instance instance({}, 3);
  auto profile = analyze(instance);
  EXPECT_EQ(profile.peak_parallelism, 0u);
  EXPECT_EQ(profile.peak_density, Q(0));
  EXPECT_EQ(profile.max_intensity, Q(0));
  EXPECT_EQ(profile.average_load, Q(0));
}

TEST(Analysis, ZeroWorkJobsInvisible) {
  Instance instance({Job{Q(0), Q(4), Q(0)}, Job{Q(0), Q(4), Q(4)}}, 1);
  auto profile = analyze(instance);
  EXPECT_EQ(profile.peak_parallelism, 1u);
  EXPECT_EQ(profile.peak_density, Q(1));
}

TEST(Analysis, PeakDensityMatchesAvrProfile) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance instance = generate_uniform({.jobs = 10, .machines = 2, .horizon = 15,
                                          .max_window = 7, .max_work = 5}, seed);
    auto profile = analyze(instance);
    Q avr_peak(0);
    for (const Q& density : avr_density_profile(instance)) {
      avr_peak = max(avr_peak, density);
    }
    // AVR's profile samples unit intervals; the analysis uses atomic intervals.
    // With integral times these coincide on peaks.
    EXPECT_EQ(profile.peak_density, avr_peak) << seed;
  }
}

TEST(Analysis, MaxIntensityLowerBoundsOptimalTopSpeed) {
  // The fastest phase of the optimal schedule must run at >= max_intensity / m
  // ... and at exactly max_intensity when m = 1 (YDS's first critical interval).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Instance instance = generate_uniform({.jobs = 8, .machines = 1, .horizon = 12,
                                          .max_window = 6, .max_work = 5}, seed);
    auto profile = analyze(instance);
    auto result = optimal_schedule(instance);
    ASSERT_FALSE(result.phases.empty());
    EXPECT_EQ(result.phases.front().speed, profile.max_intensity) << seed;
  }
}

TEST(Analysis, PeakParallelismBoundsScheduleConcurrency) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Instance instance = generate_bursty({.bursts = 3, .jobs_per_burst = 4,
                                         .machines = 8, .horizon = 20,
                                         .burst_window = 4, .max_work = 5}, seed);
    auto profile = analyze(instance);
    auto result = optimal_schedule(instance);
    // Sample machine usage at atomic interval midpoints.
    const auto& intervals = result.intervals;
    for (std::size_t j = 0; j < intervals.count(); ++j) {
      Q midpoint = (intervals.start(j) + intervals.end(j)) / Q(2);
      std::size_t busy = 0;
      for (const Q& speed : result.schedule.speeds_at(midpoint)) {
        if (speed.sign() > 0) ++busy;
      }
      EXPECT_LE(busy, profile.peak_parallelism) << seed;
    }
  }
}

TEST(Analysis, ToStringMentionsEverything) {
  Instance instance({Job{Q(0), Q(4), Q(4)}}, 2);
  std::string text = analyze(instance).to_string();
  for (const char* key : {"jobs=", "machines=", "W=", "peak_par=", "peak_density=",
                          "max_intensity=", "avg_load="}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace mpss
