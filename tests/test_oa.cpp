// Tests for OA(m) (Section 3.1 / Theorem 2): feasibility, optimality on
// no-surprise inputs, speed monotonicity under arrivals (Lemmas 7/8 in spirit),
// and the alpha^alpha competitive bound on random sweeps.

#include "mpss/online/oa.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(Oa, CommonReleaseEqualsOffline) {
  // With every job released at time 0 there are no surprises: OA(m)'s first plan
  // is the offline optimum and is never revised.
  Instance instance({Job{Q(0), Q(4), Q(3)}, Job{Q(0), Q(2), Q(2)},
                     Job{Q(0), Q(6), Q(1)}}, 2);
  auto run = oa_schedule(instance);
  EXPECT_EQ(run.replans, 1u);
  AlphaPower p(2.0);
  EXPECT_NEAR(run.schedule.energy(p), optimal_energy(instance, p), 1e-9);
  EXPECT_TRUE(check_schedule(instance, run.schedule).feasible);
}

TEST(Oa, AlwaysFeasible) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Instance instance = generate_uniform({.jobs = 9, .machines = 3, .horizon = 18,
                                          .max_window = 8, .max_work = 6}, seed);
    auto run = oa_schedule(instance);
    auto report = check_schedule(instance, run.schedule);
    ASSERT_TRUE(report.feasible) << "seed " << seed << ": "
                                 << report.violations.front();
  }
}

TEST(Oa, RespectsAlphaAlphaBoundOnRandomInstances) {
  // Theorem 2: E_OA <= alpha^alpha * E_OPT. Empirical ratios must sit inside the
  // bound for every instance (the bound is worst-case, so typical ratios are far
  // smaller -- we also sanity-check they are >= 1).
  for (double alpha : {1.5, 2.0, 3.0}) {
    AlphaPower p(alpha);
    double bound = oa_competitive_bound(alpha);
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      Instance instance = generate_bursty({.bursts = 3, .jobs_per_burst = 4,
                                           .machines = 3, .horizon = 24,
                                           .burst_window = 5, .max_work = 5}, seed);
      double oa = oa_energy(instance, p);
      double opt = optimal_energy(instance, p);
      ASSERT_GT(opt, 0.0);
      double ratio = oa / opt;
      EXPECT_GE(ratio, 1.0 - 1e-9) << "seed " << seed << " alpha " << alpha;
      EXPECT_LE(ratio, bound + 1e-9) << "seed " << seed << " alpha " << alpha;
    }
  }
}

TEST(Oa, SingleProcessorReproducesClassicOa) {
  // m = 1 is the Yao et al. / Bansal et al. setting; ratio must respect
  // alpha^alpha there too.
  AlphaPower p(2.0);
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Instance instance = generate_uniform({.jobs = 8, .machines = 1, .horizon = 16,
                                          .max_window = 6, .max_work = 5}, seed);
    double ratio = oa_energy(instance, p) / optimal_energy(instance, p);
    EXPECT_GE(ratio, 1.0 - 1e-9);
    EXPECT_LE(ratio, 4.0 + 1e-9);
  }
}

TEST(Oa, SurpriseArrivalCostsEnergy) {
  // The classic OA penalty: a late urgent job forces high speed at the end.
  // OPT (clairvoyant) pre-spreads the early job; OA must beat neither.
  Instance instance({Job{Q(0), Q(2), Q(2)}, Job{Q(1), Q(2), Q(2)}}, 1);
  AlphaPower p(2.0);
  double oa = oa_energy(instance, p);
  double opt = optimal_energy(instance, p);
  // OA: [0,1) at speed 1 (job 0 spread over [0,2)), then [1,2) must do 1+2 work
  // at speed 3 -> energy 1 + 9 = 10. OPT: job 0 at speed 2 in [0,1), job 1 at
  // speed 2 in [1,2) -> 8. (Any optimal schedule costs 8: total work 4 in 2 units.)
  EXPECT_NEAR(oa, 10.0, 1e-9);
  EXPECT_NEAR(opt, 8.0, 1e-9);
  EXPECT_GT(oa / opt, 1.0);
  EXPECT_LE(oa / opt, oa_competitive_bound(2.0));
}

TEST(Oa, JobSpeedsOnlyIncreaseOnArrival) {
  // Lemma 7 (observable corollary): re-planning on an arrival never slows down a
  // job that is still unfinished. We check the executed schedule: the speeds at
  // which any single job runs are non-decreasing over time.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Instance instance = generate_uniform({.jobs = 8, .machines = 2, .horizon = 14,
                                          .max_window = 7, .max_work = 5}, seed);
    auto run = oa_schedule(instance);
    for (std::size_t k = 0; k < instance.size(); ++k) {
      auto slices = run.schedule.slices_of(k);
      for (std::size_t i = 1; i < slices.size(); ++i) {
        EXPECT_LE(slices[i - 1].speed, slices[i].speed)
            << "seed " << seed << " job " << k << " slowed down";
      }
    }
  }
}

TEST(Oa, MoreMachinesNeverHurt) {
  AlphaPower p(2.5);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Instance base = generate_bursty({.bursts = 2, .jobs_per_burst = 5, .machines = 1,
                                     .horizon = 20, .burst_window = 4, .max_work = 5},
                                    seed);
    double previous = std::numeric_limits<double>::infinity();
    for (std::size_t m : {1u, 2u, 4u}) {
      double energy = oa_energy(base.with_machines(m), p);
      EXPECT_LE(energy, previous * (1 + 1e-9)) << "seed " << seed << " m " << m;
      previous = energy;
    }
  }
}

}  // namespace
}  // namespace mpss
