// Cross-module integration tests: the full pipeline (generator -> algorithms ->
// feasibility -> energy) plus the relations the paper's analysis hinges on, checked
// jointly across algorithms on shared instances.

#include <gtest/gtest.h>

#include <cmath>

#include "mpss/core/optimal.hpp"
#include "mpss/core/yds.hpp"
#include "mpss/lp/lp_baseline.hpp"
#include "mpss/nomig/nonmigratory.hpp"
#include "mpss/online/avr.hpp"
#include "mpss/online/bounds.hpp"
#include "mpss/online/oa.hpp"
#include "mpss/util/thread_pool.hpp"
#include "mpss/workload/generators.hpp"
#include "mpss/workload/traces.hpp"

namespace mpss {
namespace {

TEST(Integration, OptimumLowerBoundsEveryAlgorithm) {
  // OPT must not exceed OA(m), AVR(m), or any non-migratory strategy -- on the
  // same instance, same power function. This wires five modules together.
  AlphaPower p(2.5);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance instance = generate_uniform({.jobs = 9, .machines = 3, .horizon = 15,
                                          .max_window = 7, .max_work = 5}, seed);
    double opt = optimal_energy(instance, p);
    EXPECT_LE(opt, oa_energy(instance, p) + 1e-9) << seed;
    EXPECT_LE(opt, avr_energy(instance, p) + 1e-9) << seed;
    EXPECT_LE(opt, nonmigratory_greedy(instance, p).energy + 1e-9) << seed;
    EXPECT_LE(opt, nonmigratory_round_robin(instance, p).energy + 1e-9) << seed;
  }
}

TEST(Integration, AggregationInequality10) {
  // Inequality (10) in Theorem 3's proof: m^(1-a) * E^1_OPT <= E_OPT(m), where
  // E^1_OPT is the optimal single-processor energy for the same jobs.
  AlphaPower p(2.0);
  const double alpha = 2.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (std::size_t m : {2u, 4u}) {
      Instance instance = generate_uniform({.jobs = 8, .machines = m, .horizon = 14,
                                            .max_window = 7, .max_work = 5}, seed);
      double multi = optimal_energy(instance, p);
      double single = yds_schedule(instance.with_machines(1)).schedule.energy(p);
      EXPECT_LE(std::pow(static_cast<double>(m), 1.0 - alpha) * single,
                multi + 1e-9)
          << "seed " << seed << " m " << m;
    }
  }
}

TEST(Integration, AvrAdversaryPushesRatioUp) {
  // Experiment E6's mechanism: on the expiring-stack instance, AVR(1)'s ratio
  // grows with n (toward the (2 alpha)^alpha / 2 regime), while staying inside the
  // Theorem 3 bound.
  AlphaPower p(2.0);
  double previous_ratio = 0.0;
  for (std::size_t n : {4u, 8u, 16u}) {
    Instance instance = generate_avr_adversary(n, 1);
    double ratio = avr_energy(instance, p) / optimal_energy(instance, p);
    EXPECT_GT(ratio, previous_ratio) << n;  // strictly growing on this family
    EXPECT_LE(ratio, avr_multi_competitive_bound(2.0));
    previous_ratio = ratio;
  }
  EXPECT_GT(previous_ratio, 1.5);  // far from trivial by n = 16
}

TEST(Integration, TraceRoundTripPreservesAllEnergies) {
  // Serializing an instance and reloading it must not change any algorithm's
  // behaviour (exact rational round-trip).
  Instance original = generate_bursty({.bursts = 3, .jobs_per_burst = 4,
                                       .machines = 2, .horizon = 18,
                                       .burst_window = 4, .max_work = 5}, 31);
  Instance reloaded = instance_from_csv(instance_to_csv(original));
  AlphaPower p(3.0);
  EXPECT_DOUBLE_EQ(optimal_energy(original, p), optimal_energy(reloaded, p));
  EXPECT_DOUBLE_EQ(oa_energy(original, p), oa_energy(reloaded, p));
  EXPECT_DOUBLE_EQ(avr_energy(original, p), avr_energy(reloaded, p));
}

TEST(Integration, GeneralConvexPowerFunctionsShareTheOptimalSchedule) {
  // Section 2's claim: the algorithm is optimal for EVERY convex non-decreasing P
  // simultaneously. Probe: the computed schedule's energy under three different
  // power functions is within the LP baseline bracket for each of them.
  Instance instance = generate_uniform({.jobs = 5, .machines = 2, .horizon = 10,
                                        .max_window = 6, .max_work = 4}, 8);
  auto result = optimal_schedule(instance);
  AlphaPower square(2.0);
  AlphaPower cube(3.0);
  PiecewiseLinearPower piecewise({{0, 0}, {1, 1}, {2, 4}, {4, 16}, {8, 64}});
  for (const PowerFunction* p :
       std::initializer_list<const PowerFunction*>{&square, &cube, &piecewise}) {
    double energy = result.schedule.energy(*p);
    auto lp = lp_baseline(instance, *p, 24);
    ASSERT_EQ(lp.status, LpSolution::Status::kOptimal) << p->name();
    EXPECT_LE(energy, lp.energy + 1e-6) << p->name();
    EXPECT_GE(lp.energy, energy * 0.98) << p->name();  // fine grid is close
  }
}

TEST(Integration, ParallelSweepMatchesSequential) {
  // The experiment harness runs (seed) cells in a thread pool; results must be
  // identical to a sequential run (exact arithmetic, no shared state).
  AlphaPower p(2.0);
  constexpr std::size_t kCells = 12;
  std::vector<double> sequential(kCells), parallel(kCells);
  auto cell = [&p](std::uint64_t seed) {
    Instance instance = generate_uniform({.jobs = 7, .machines = 2, .horizon = 12,
                                          .max_window = 6, .max_work = 4}, seed);
    return oa_energy(instance, p) / optimal_energy(instance, p);
  };
  for (std::size_t i = 0; i < kCells; ++i) sequential[i] = cell(i + 1);
  parallel_for(kCells, [&](std::size_t i) { parallel[i] = cell(i + 1); }, 4);
  for (std::size_t i = 0; i < kCells; ++i) {
    EXPECT_DOUBLE_EQ(sequential[i], parallel[i]) << i;
  }
}

TEST(Integration, HeavierLoadRaisesOptimalEnergySuperlinearly) {
  // Convexity sanity across the stack: doubling all works multiplies optimal
  // energy by 2^alpha exactly (speeds scale linearly).
  AlphaPower p(3.0);
  Instance base = generate_uniform({.jobs = 8, .machines = 2, .horizon = 12,
                                    .max_window = 6, .max_work = 4}, 12);
  std::vector<Job> doubled_jobs = base.jobs();
  for (Job& job : doubled_jobs) job.work *= Q(2);
  Instance doubled(doubled_jobs, base.machines());
  EXPECT_NEAR(optimal_energy(doubled, p), 8.0 * optimal_energy(base, p),
              1e-6 * optimal_energy(doubled, p));
}

TEST(Integration, EndToEndKitchenSink) {
  // One instance through everything the library offers, asserting mutual
  // consistency of all the feasible schedules produced.
  Instance instance = generate_periodic({.tasks = 4, .machines = 3,
                                         .hyperperiods = 1, .max_work = 4}, 77);
  AlphaPower p(2.0);

  auto opt = optimal_schedule(instance);
  auto oa = oa_schedule(instance);
  auto avr = avr_schedule(instance);
  auto greedy = nonmigratory_greedy(instance, p);

  for (const Schedule* schedule :
       {&opt.schedule, &oa.schedule, &avr.schedule, &greedy.schedule}) {
    auto report = check_schedule(instance, *schedule);
    ASSERT_TRUE(report.feasible) << report.violations.front();
  }

  double e_opt = opt.schedule.energy(p);
  EXPECT_LE(e_opt, oa.schedule.energy(p) + 1e-9);
  EXPECT_LE(e_opt, avr.schedule.energy(p) + 1e-9);
  EXPECT_LE(e_opt, greedy.energy + 1e-9);
  EXPECT_LE(oa.schedule.energy(p) / e_opt, oa_competitive_bound(2.0) + 1e-9);
  EXPECT_LE(avr.schedule.energy(p) / e_opt, avr_multi_competitive_bound(2.0) + 1e-9);
}

}  // namespace
}  // namespace mpss
