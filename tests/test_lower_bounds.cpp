// Tests for the closed-form energy lower bounds: every bound must sit at or
// below the optimal energy, and be tight on its characteristic instances.

#include "mpss/core/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

TEST(LowerBounds, DensityBoundTightForIsolatedJobs) {
  // Non-overlapping jobs on enough machines: OPT runs each at its density, so the
  // density bound is exact.
  Instance instance({Job{Q(0), Q(2), Q(4)}, Job{Q(3), Q(5), Q(2)}}, 2);
  AlphaPower p(2.0);
  double opt = optimal_energy(instance, p);
  EXPECT_NEAR(density_lower_bound(instance, p), opt, 1e-9);
}

TEST(LowerBounds, AggregationBoundTightForParallelBatch) {
  // m identical unit jobs in one slot: single-machine OPT runs at m * w, so
  // m^(1-a) * E^1 = m^(1-a) * (m w)^a = m * w^a = E_OPT(m) exactly.
  Instance instance = generate_parallel_batch(1, 4, 3);
  double opt = optimal_energy(instance, AlphaPower(2.0));
  EXPECT_NEAR(aggregation_lower_bound(instance, 2.0), opt, 1e-9);
}

TEST(LowerBounds, IntervalLoadBoundTightOnSaturatedWindow) {
  // More jobs than machines in one window: OPT spreads at W/(m * span).
  Instance instance({Job{Q(0), Q(2), Q(3)}, Job{Q(0), Q(2), Q(3)},
                     Job{Q(0), Q(2), Q(3)}}, 2);
  AlphaPower p(3.0);
  double opt = optimal_energy(instance, p);
  EXPECT_NEAR(interval_load_lower_bound(instance, p), opt, 1e-9);
}

TEST(LowerBounds, AllBoundsBelowOptimalOnRandomInstances) {
  for (double alpha : {1.5, 2.0, 3.0}) {
    AlphaPower p(alpha);
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
      Instance instance = generate_uniform({.jobs = 10, .machines = 3, .horizon = 16,
                                            .max_window = 8, .max_work = 6}, seed);
      double opt = optimal_energy(instance, p);
      EXPECT_LE(density_lower_bound(instance, p), opt + 1e-9)
          << "density, seed " << seed;
      EXPECT_LE(aggregation_lower_bound(instance, alpha), opt + 1e-9)
          << "aggregation, seed " << seed;
      EXPECT_LE(interval_load_lower_bound(instance, p), opt + 1e-9)
          << "interval, seed " << seed;
      double best = best_lower_bound(instance, p, alpha);
      EXPECT_LE(best, opt + 1e-9) << "best, seed " << seed;
      EXPECT_GT(best, 0.0) << seed;
    }
  }
}

TEST(LowerBounds, BestTakesTheMaximum) {
  Instance instance = generate_bursty({.bursts = 2, .jobs_per_burst = 4,
                                       .machines = 2, .horizon = 12,
                                       .burst_window = 3, .max_work = 5}, 3);
  AlphaPower p(2.5);
  double best = best_lower_bound(instance, p, 2.5);
  EXPECT_GE(best, density_lower_bound(instance, p) - 1e-12);
  EXPECT_GE(best, aggregation_lower_bound(instance, 2.5) - 1e-12);
  EXPECT_GE(best, interval_load_lower_bound(instance, p) - 1e-12);
  // Skipping the aggregation bound (alpha <= 1) still yields a valid bound.
  double without = best_lower_bound(instance, p, 0.0);
  EXPECT_LE(without, best + 1e-12);
  EXPECT_GT(without, 0.0);
}

TEST(LowerBounds, EmptyAndZeroWorkInstances) {
  Instance empty({}, 2);
  AlphaPower p(2.0);
  EXPECT_DOUBLE_EQ(density_lower_bound(empty, p), 0.0);
  EXPECT_DOUBLE_EQ(aggregation_lower_bound(empty, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(interval_load_lower_bound(empty, p), 0.0);
  Instance zero({Job{Q(0), Q(3), Q(0)}}, 1);
  EXPECT_DOUBLE_EQ(best_lower_bound(zero, p, 2.0), 0.0);
}

TEST(LowerBounds, BoundsSandwichOptimalWithHeuristics) {
  // The certificate pattern the module exists for: lower bound <= OPT <= heuristic
  // on the same instance verifies optimality without a second optimal solver.
  AlphaPower p(2.0);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Instance instance = generate_laminar({.jobs = 8, .machines = 2, .depth = 3,
                                          .max_work = 5}, seed);
    double lower = best_lower_bound(instance, p, 2.0);
    double opt = optimal_energy(instance, p);
    EXPECT_LE(lower, opt + 1e-9) << seed;
    // The gap must be modest on these instances (bound quality check).
    EXPECT_GE(lower, 0.25 * opt) << seed;
  }
}

}  // namespace
}  // namespace mpss
