// Property suite (experiment E4): the structural lemmas of Section 2, checked on
// every schedule the offline algorithm produces.
//
//   Lemma 1: each job runs at one constant speed.
//   Lemma 2: within an atomic interval, each processor uses one constant speed.
//   Lemma 3: m_ij = min(n_ij, m - sum_{l<i} m_lj), and reserved processors are
//            busy for the whole interval.
//   Lemma 6: for common-release instances, per-processor speeds are
//            non-increasing over time.

#include <gtest/gtest.h>

#include <map>

#include "mpss/core/optimal.hpp"
#include "mpss/util/random.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

struct Labelled {
  std::string name;
  Instance instance;
};

std::vector<Labelled> structure_corpus() {
  std::vector<Labelled> out;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    out.push_back({"uniform/" + std::to_string(seed),
                   generate_uniform({.jobs = 10, .machines = 3, .horizon = 18,
                                     .max_window = 9, .max_work = 7}, seed)});
    out.push_back({"laminar/" + std::to_string(seed),
                   generate_laminar({.jobs = 10, .machines = 2, .depth = 3,
                                     .max_work = 6}, seed)});
    out.push_back({"bursty/" + std::to_string(seed),
                   generate_bursty({.bursts = 3, .jobs_per_burst = 4, .machines = 4,
                                    .horizon = 24, .burst_window = 4, .max_work = 5},
                                   seed)});
  }
  return out;
}

TEST(OptimalStructure, Lemma1ConstantSpeedPerJob) {
  for (const auto& [name, instance] : structure_corpus()) {
    auto result = optimal_schedule(instance);
    for (std::size_t k = 0; k < instance.size(); ++k) {
      Q speed = result.speed_of_job(k);
      for (const Slice& slice : result.schedule.slices_of(k)) {
        EXPECT_EQ(slice.speed, speed) << name << " job " << k;
      }
      // And the full work is done at that speed.
      if (instance.job(k).work.sign() > 0) {
        EXPECT_EQ(result.schedule.work_on(k), instance.job(k).work) << name;
      }
    }
  }
}

TEST(OptimalStructure, Lemma2ConstantSpeedPerProcessorPerInterval) {
  for (const auto& [name, instance] : structure_corpus()) {
    auto result = optimal_schedule(instance);
    const auto& intervals = result.intervals;
    for (std::size_t machine = 0; machine < result.schedule.machines(); ++machine) {
      for (std::size_t j = 0; j < intervals.count(); ++j) {
        Q seen_speed(0);
        bool any = false;
        for (const Slice& slice : result.schedule.machine(machine)) {
          Q lo = max(slice.start, intervals.start(j));
          Q hi = min(slice.end, intervals.end(j));
          if (!(lo < hi)) continue;
          // Slices never straddle atomic interval boundaries.
          EXPECT_LE(intervals.start(j), slice.start) << name;
          EXPECT_LE(slice.end, intervals.end(j)) << name;
          if (any) {
            EXPECT_EQ(slice.speed, seen_speed)
                << name << " machine " << machine << " interval " << j;
          }
          seen_speed = slice.speed;
          any = true;
        }
      }
    }
  }
}

TEST(OptimalStructure, Lemma3ProcessorCounts) {
  for (const auto& [name, instance] : structure_corpus()) {
    auto result = optimal_schedule(instance);
    const auto& intervals = result.intervals;
    const std::size_t m = instance.machines();
    std::vector<std::size_t> used(intervals.count(), 0);
    for (const PhaseInfo& phase : result.phases) {
      for (std::size_t j = 0; j < intervals.count(); ++j) {
        std::size_t active = 0;
        for (std::size_t k : phase.jobs) {
          if (intervals.active(instance.job(k), j)) ++active;
        }
        std::size_t expected = std::min(active, m - used[j]);
        EXPECT_EQ(phase.machines_per_interval[j], expected)
            << name << " phase speed " << phase.speed << " interval " << j;
        used[j] += phase.machines_per_interval[j];
        EXPECT_LE(used[j], m) << name;
      }
    }
  }
}

TEST(OptimalStructure, ReservedProcessorsAreBusyThroughout) {
  // The choice s_i = W_i / P_i means the reserved processors never idle inside
  // their intervals: busy time in I_j must be exactly (sum_i m_ij) * |I_j|.
  for (const auto& [name, instance] : structure_corpus()) {
    auto result = optimal_schedule(instance);
    const auto& intervals = result.intervals;
    for (std::size_t j = 0; j < intervals.count(); ++j) {
      std::size_t reserved = 0;
      for (const PhaseInfo& phase : result.phases) {
        reserved += phase.machines_per_interval[j];
      }
      Q busy;
      for (std::size_t machine = 0; machine < result.schedule.machines(); ++machine) {
        for (const Slice& slice : result.schedule.machine(machine)) {
          Q lo = max(slice.start, intervals.start(j));
          Q hi = min(slice.end, intervals.end(j));
          if (lo < hi) busy += hi - lo;
        }
      }
      EXPECT_EQ(busy, intervals.length(j) * Q(static_cast<std::int64_t>(reserved)))
          << name << " interval " << j;
    }
  }
}

TEST(OptimalStructure, FasterPhasesOccupyLowerMachineIndices) {
  // The implementation assigns phase i the lowest-numbered free processors; within
  // any interval, machine speeds are non-increasing in the machine index.
  for (const auto& [name, instance] : structure_corpus()) {
    auto result = optimal_schedule(instance);
    const auto& intervals = result.intervals;
    for (std::size_t j = 0; j < intervals.count(); ++j) {
      Q midpoint = (intervals.start(j) + intervals.end(j)) / Q(2);
      auto speeds = result.schedule.speeds_at(midpoint);
      for (std::size_t l = 1; l < speeds.size(); ++l) {
        EXPECT_LE(speeds[l], speeds[l - 1]) << name << " interval " << j;
      }
    }
  }
}

TEST(OptimalStructure, Lemma6CommonReleaseMonotoneSpeeds) {
  // OA(m)-style instances: all jobs released together, only deadlines differ.
  // Then each processor's speed is non-increasing over time (Lemma 6).
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Xoshiro256 rng(seed);
    std::vector<Job> jobs;
    for (int i = 0; i < 10; ++i) {
      jobs.push_back(Job{Q(0), Q(rng.uniform_int(1, 12)), Q(rng.uniform_int(1, 9))});
    }
    Instance instance(jobs, 3);
    auto result = optimal_schedule(instance);
    ASSERT_TRUE(check_schedule(instance, result.schedule).feasible) << seed;
    const auto& intervals = result.intervals;
    for (std::size_t machine = 0; machine < 3; ++machine) {
      Q previous(-1);
      for (std::size_t j = 0; j < intervals.count(); ++j) {
        Q midpoint = (intervals.start(j) + intervals.end(j)) / Q(2);
        Q speed = result.schedule.speeds_at(midpoint)[machine];
        if (previous.sign() >= 0) {
          EXPECT_LE(speed, previous) << "seed " << seed << " machine " << machine
                                     << " interval " << j;
        }
        previous = speed;
      }
    }
  }
}

TEST(OptimalStructure, PhasesPartitionThePositiveWorkJobs) {
  for (const auto& [name, instance] : structure_corpus()) {
    auto result = optimal_schedule(instance);
    std::map<std::size_t, int> seen;
    for (const PhaseInfo& phase : result.phases) {
      EXPECT_FALSE(phase.jobs.empty()) << name;
      EXPECT_GE(phase.rounds, 1u) << name;
      for (std::size_t k : phase.jobs) ++seen[k];
    }
    for (std::size_t k = 0; k < instance.size(); ++k) {
      int expected = instance.job(k).work.sign() > 0 ? 1 : 0;
      EXPECT_EQ(seen.count(k) ? seen[k] : 0, expected) << name << " job " << k;
    }
  }
}

}  // namespace
}  // namespace mpss
