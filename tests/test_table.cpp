// Tests for the console table renderer shared by all experiment binaries.

#include "mpss/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mpss/util/rational.hpp"

namespace mpss {
namespace {

std::string render(const Table& table) {
  std::ostringstream os;
  table.print(os);
  return os.str();
}

TEST(Table, AlignsColumnsToWidestCell) {
  Table table({"name", "v"});
  table.row(std::string("a"), 1);
  table.row(std::string("long-name"), 22);
  std::string out = render(table);
  EXPECT_NE(out.find("| name      | v  |"), std::string::npos);
  EXPECT_NE(out.find("| a         | 1  |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22 |"), std::string::npos);
}

TEST(Table, HeaderSeparatorPresent) {
  Table table({"x"});
  table.row(1);
  std::string out = render(table);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, FormatsDoublesWithFixedPrecision) {
  Table table({"ratio"});
  table.row(1.23456789);
  EXPECT_NE(render(table).find("1.2346"), std::string::npos);
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, AcceptsRationalsViaToString) {
  Table table({"speed"});
  table.row(Q(7, 3));
  EXPECT_NE(render(table).find("7/3"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"only"});
  std::string out = render(table);
  EXPECT_NE(out.find("| only |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(Table, CsvOutputRoundTrips) {
  Table table({"name", "value"});
  table.row(std::string("with,comma"), 1.5);
  table.row(std::string("plain"), 2);
  std::ostringstream os;
  table.print_csv(os);
  const std::string& text = os.str();
  EXPECT_EQ(text.substr(0, 11), "name,value\n");
  EXPECT_NE(text.find("\"with,comma\",1.5"), std::string::npos);
  EXPECT_NE(text.find("plain,2"), std::string::npos);
}

TEST(Table, EmptyTableRendersHeaderOnly) {
  Table table({"h1", "h2"});
  std::string out = render(table);
  EXPECT_NE(out.find("h1"), std::string::npos);
  EXPECT_EQ(table.row_count(), 0u);
}

}  // namespace
}  // namespace mpss
