// Tests for the event-driven online replanning harness (S10).

#include "mpss/online/simulator.hpp"

#include <gtest/gtest.h>

#include "mpss/core/optimal.hpp"
#include "mpss/util/error.hpp"
#include "mpss/workload/generators.hpp"

namespace mpss {
namespace {

Planner optimal_planner() {
  return [](const Instance& available) { return optimal_schedule(available).schedule; };
}

TEST(Simulator, SingleJobExecutesPlanVerbatim) {
  Instance instance({Job{Q(0), Q(4), Q(8)}}, 1);
  auto run = run_replanning_online(instance, optimal_planner());
  EXPECT_EQ(run.replans, 1u);
  EXPECT_TRUE(check_schedule(instance, run.schedule).feasible);
  EXPECT_EQ(run.schedule.work_on(0), Q(8));
}

TEST(Simulator, ReplansOncePerDistinctReleaseTime) {
  Instance instance({Job{Q(0), Q(9), Q(1)}, Job{Q(0), Q(9), Q(1)},
                     Job{Q(3), Q(9), Q(1)}, Job{Q(5), Q(9), Q(1)}}, 2);
  auto run = run_replanning_online(instance, optimal_planner());
  EXPECT_EQ(run.replans, 3u);  // releases at 0, 3, 5
  EXPECT_TRUE(check_schedule(instance, run.schedule).feasible);
}

TEST(Simulator, LateArrivalForcesReplan) {
  // Job 1 arrives mid-flight; the harness must carry job 0's remaining work into
  // the second plan, and the final schedule must still finish both exactly.
  Instance instance({Job{Q(0), Q(4), Q(4)}, Job{Q(2), Q(4), Q(4)}}, 1);
  auto run = run_replanning_online(instance, optimal_planner());
  EXPECT_EQ(run.replans, 2u);
  auto report = check_schedule(instance, run.schedule);
  EXPECT_TRUE(report.feasible) << report.violations.front();
}

TEST(Simulator, ZeroWorkJobsDoNotTriggerReplans) {
  Instance instance({Job{Q(0), Q(4), Q(2)}, Job{Q(1), Q(4), Q(0)}}, 1);
  auto run = run_replanning_online(instance, optimal_planner());
  EXPECT_EQ(run.replans, 1u);  // only the release at 0 carries work
  EXPECT_TRUE(check_schedule(instance, run.schedule).feasible);
}

TEST(Simulator, EmptyInstance) {
  Instance instance({}, 2);
  auto run = run_replanning_online(instance, optimal_planner());
  EXPECT_EQ(run.replans, 0u);
  EXPECT_EQ(run.schedule.slice_count(), 0u);
}

TEST(Simulator, PlannerSeesOnlyAvailableUnfinishedWork) {
  // Capture the sub-instances handed to the planner and verify their invariants.
  Instance instance({Job{Q(0), Q(10), Q(6)}, Job{Q(2), Q(6), Q(2)},
                     Job{Q(4), Q(9), Q(3)}}, 2);
  std::vector<Instance> seen;
  Planner spy = [&seen](const Instance& available) {
    seen.push_back(available);
    return optimal_schedule(available).schedule;
  };
  auto run = run_replanning_online(instance, spy);
  ASSERT_EQ(seen.size(), 3u);
  // First plan: only job 0.
  EXPECT_EQ(seen[0].size(), 1u);
  EXPECT_EQ(seen[0].job(0).work, Q(6));
  // Second plan at t=2: job 0 has 6 - (speed in [0,2)) work left, plus job 1;
  // releases are reset to the replan time.
  EXPECT_EQ(seen[1].size(), 2u);
  for (const Job& job : seen[1].jobs()) EXPECT_EQ(job.release, Q(2));
  // Third plan at t=4 includes job 2.
  EXPECT_EQ(seen[2].size(), 3u);
  for (const Job& job : seen[2].jobs()) EXPECT_EQ(job.release, Q(4));
  EXPECT_TRUE(check_schedule(instance, run.schedule).feasible);
}

TEST(Simulator, MachineCountMismatchIsInternalError) {
  Instance instance({Job{Q(0), Q(4), Q(2)}}, 2);
  Planner broken = [](const Instance&) { return Schedule(1); };
  EXPECT_THROW((void)run_replanning_online(instance, broken), InternalError);
}

TEST(Simulator, UnderdeliveringPlannerIsCaught) {
  // A planner that never schedules anything leaves unfinished work -> error.
  Instance instance({Job{Q(0), Q(4), Q(2)}}, 1);
  Planner lazy = [](const Instance& available) {
    return Schedule(available.machines());
  };
  EXPECT_THROW((void)run_replanning_online(instance, lazy), InternalError);
}

TEST(Simulator, RandomizedFeasibilitySweep) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Instance instance = generate_uniform({.jobs = 10, .machines = 3, .horizon = 20,
                                          .max_window = 8, .max_work = 6}, seed);
    auto run = run_replanning_online(instance, optimal_planner());
    auto report = check_schedule(instance, run.schedule);
    ASSERT_TRUE(report.feasible) << "seed " << seed << ": "
                                 << report.violations.front();
  }
}

}  // namespace
}  // namespace mpss
